// Gated recurrent units: a single GRU cell and the bidirectional GRU encoder
// used as the context encoder of the CNN-BiGRU-CRF backbone (paper Fig. 3).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fewner::nn {

/// Single-direction GRU cell with PyTorch gate conventions (r, z, n):
///   r = σ(x W_ir + h W_hr + b_r)
///   z = σ(x W_iz + h W_hz + b_z)
///   n = tanh(x W_in + r ⊙ (h W_hn) + b_n)
///   h' = (1 - z) ⊙ n + z ⊙ h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  /// Projects a whole sequence's inputs at once: [L, input] -> [L, 3H].
  /// Hoisting this matmul out of the recurrence is the standard optimization.
  tensor::Tensor ProjectInput(const tensor::Tensor& x) const;

  /// One step given pre-projected input rows [B, 3H] and states [B, H] (B=1
  /// for the sentence-at-a-time path).  Every op inside is per-row, so lane b
  /// of a batched step is bitwise-equal to a B=1 step on that lane alone.
  tensor::Tensor Step(const tensor::Tensor& projected_row,
                      const tensor::Tensor& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t input_dim() const { return input_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  tensor::Tensor w_ih_;  ///< [input, 3H], gate order r|z|n
  tensor::Tensor w_hh_;  ///< [H, 3H]
  tensor::Tensor b_ih_;  ///< [3H]
  tensor::Tensor b_hh_;  ///< [3H]
};

/// Bidirectional GRU over a sentence: concatenates forward and backward hidden
/// states per token, [L, input] -> [L, 2H].
class BiGru : public Module {
 public:
  BiGru(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Batched time loop over padded lanes: [B, L, input] -> [B, L, 2H], one
  /// GEMM per timestep per direction over all B lanes.  Lane b is active at
  /// step t iff t < lengths[b]; finished (or, in reverse, not-yet-started)
  /// lanes carry their state through unchanged via an exact Where select, so
  /// lane b's real positions are bitwise-equal to Forward on that sentence.
  tensor::Tensor ForwardBatch(const tensor::Tensor& x,
                              const std::vector<int64_t>& lengths) const;

  int64_t output_dim() const { return 2 * hidden_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  /// Runs one direction; `reverse` processes the sequence back to front.
  tensor::Tensor RunDirection(const GruCell& cell, const tensor::Tensor& x,
                              bool reverse) const;

  tensor::Tensor RunDirectionBatch(const GruCell& cell, const tensor::Tensor& x,
                                   const std::vector<tensor::Tensor>& step_masks,
                                   const std::vector<bool>& step_full,
                                   bool reverse) const;

  int64_t hidden_dim_;
  std::unique_ptr<GruCell> forward_cell_;
  std::unique_ptr<GruCell> backward_cell_;
};

/// Per-step lane activity masks for a padded batch: element t is a [B, 1]
/// tensor with 1.0 where t < lengths[b], plus a parallel all-lanes-active
/// flag so full steps can skip the Where select entirely.  Shared by BiGru
/// and BiLstm.
void BuildStepMasks(const std::vector<int64_t>& lengths, int64_t max_len,
                    std::vector<tensor::Tensor>* masks,
                    std::vector<bool>* full);

}  // namespace fewner::nn
