// Gated recurrent units: a single GRU cell and the bidirectional GRU encoder
// used as the context encoder of the CNN-BiGRU-CRF backbone (paper Fig. 3).

#pragma once

#include <cstdint>
#include <memory>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fewner::nn {

/// Single-direction GRU cell with PyTorch gate conventions (r, z, n):
///   r = σ(x W_ir + h W_hr + b_r)
///   z = σ(x W_iz + h W_hz + b_z)
///   n = tanh(x W_in + r ⊙ (h W_hn) + b_n)
///   h' = (1 - z) ⊙ n + z ⊙ h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  /// Projects a whole sequence's inputs at once: [L, input] -> [L, 3H].
  /// Hoisting this matmul out of the recurrence is the standard optimization.
  tensor::Tensor ProjectInput(const tensor::Tensor& x) const;

  /// One step given a pre-projected input row [1, 3H] and state [1, H].
  tensor::Tensor Step(const tensor::Tensor& projected_row,
                      const tensor::Tensor& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t input_dim() const { return input_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  tensor::Tensor w_ih_;  ///< [input, 3H], gate order r|z|n
  tensor::Tensor w_hh_;  ///< [H, 3H]
  tensor::Tensor b_ih_;  ///< [3H]
  tensor::Tensor b_hh_;  ///< [3H]
};

/// Bidirectional GRU over a sentence: concatenates forward and backward hidden
/// states per token, [L, input] -> [L, 2H].
class BiGru : public Module {
 public:
  BiGru(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t output_dim() const { return 2 * hidden_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  /// Runs one direction; `reverse` processes the sequence back to front.
  tensor::Tensor RunDirection(const GruCell& cell, const tensor::Tensor& x,
                              bool reverse) const;

  int64_t hidden_dim_;
  std::unique_ptr<GruCell> forward_cell_;
  std::unique_ptr<GruCell> backward_cell_;
};

}  // namespace fewner::nn
