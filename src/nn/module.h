// Module: base class for neural network components.
//
// A module owns leaf parameter tensors and registers them (and submodules) by
// name.  Parameters are exposed as *slots* (Tensor*), which enables the
// functional parameter patching MAML-style inner loops need: a ParameterPatch
// temporarily replaces the tensor in a slot with an updated graph node, runs
// the forward pass, and restores the leaf afterwards.  Gradients then flow
// from the query loss through the patched values back to the original leaves.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace fewner::nn {

/// Base class for layers and models.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameter slots, including those of registered submodules.
  std::vector<tensor::Tensor*> Parameters();

  /// (hierarchical name, slot) pairs for all parameters.
  std::vector<std::pair<std::string, tensor::Tensor*>> NamedParameters();

  /// Total number of scalar parameters.
  int64_t ParameterCount();

  /// Training-mode flag (controls dropout); propagates to submodules.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Copies parameter values from another module with an identical layout.
  void CopyParametersFrom(Module* other);

 protected:
  /// Registers a directly owned parameter.  The pointed-to tensor must outlive
  /// the module (i.e. be a member).
  void RegisterParameter(const std::string& name, tensor::Tensor* param);

  /// Registers a submodule whose parameters become part of this module's set.
  void RegisterModule(const std::string& name, Module* module);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, tensor::Tensor*>>* out);

  std::vector<std::pair<std::string, tensor::Tensor*>> own_params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

/// Snapshot of a module's parameters as tensor handles, in slot order —
/// the form autodiff::Grad consumes.
std::vector<tensor::Tensor> ParameterTensors(Module* module);

/// Deep copy of parameter values (for save/adapt/restore at evaluation time).
std::vector<std::vector<float>> SnapshotParameterValues(Module* module);

/// Restores values captured by SnapshotParameterValues.
void RestoreParameterValues(Module* module,
                            const std::vector<std::vector<float>>& values);

/// RAII guard that replaces parameter slots with new tensors (e.g. inner-loop
/// adapted values) and restores the originals on destruction.
class ParameterPatch {
 public:
  /// `slots[i]` is replaced by `values[i]`; sizes must match.
  ParameterPatch(std::vector<tensor::Tensor*> slots,
                 const std::vector<tensor::Tensor>& values);
  ~ParameterPatch();

  ParameterPatch(const ParameterPatch&) = delete;
  ParameterPatch& operator=(const ParameterPatch&) = delete;

 private:
  std::vector<tensor::Tensor*> slots_;
  std::vector<tensor::Tensor> saved_;
};

}  // namespace fewner::nn
