#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

SelfAttention::SelfAttention(int64_t model_dim, AttentionMask mask, util::Rng* rng)
    : model_dim_(model_dim), mask_(mask) {
  query_ = std::make_unique<Linear>(model_dim, model_dim, rng, /*with_bias=*/false);
  key_ = std::make_unique<Linear>(model_dim, model_dim, rng, /*with_bias=*/false);
  value_ = std::make_unique<Linear>(model_dim, model_dim, rng, /*with_bias=*/false);
  output_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  RegisterModule("query", query_.get());
  RegisterModule("key", key_.get());
  RegisterModule("value", value_.get());
  RegisterModule("output", output_.get());
}

Tensor SelfAttention::Forward(const Tensor& x) const {
  const int64_t length = x.shape().dim(0);
  Tensor q = query_->Forward(x);
  Tensor k = key_->Forward(x);
  Tensor v = value_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(model_dim_));
  Tensor scores =
      tensor::MulScalar(tensor::MatMulNT(q, k), scale);  // [L, L], q·kᵀ
  if (mask_ == AttentionMask::kCausal) {
    // Additive mask: large negative above the diagonal.  A constant tensor —
    // masking carries no gradient of its own.
    std::vector<float> mask_values(static_cast<size_t>(length * length), 0.0f);
    for (int64_t i = 0; i < length; ++i) {
      for (int64_t j = i + 1; j < length; ++j) {
        mask_values[static_cast<size_t>(i * length + j)] = -1e9f;
      }
    }
    scores = tensor::Add(
        scores, Tensor::FromData(Shape{length, length}, std::move(mask_values)));
  }
  Tensor weights = tensor::SoftmaxLastDim(scores);
  return output_->Forward(tensor::MatMul(weights, v));
}

TransformerBlock::TransformerBlock(int64_t model_dim, int64_t ffn_dim,
                                   AttentionMask mask, util::Rng* rng) {
  norm1_ = std::make_unique<LayerNorm>(model_dim);
  attention_ = std::make_unique<SelfAttention>(model_dim, mask, rng);
  norm2_ = std::make_unique<LayerNorm>(model_dim);
  ffn_in_ = std::make_unique<Linear>(model_dim, ffn_dim, rng);
  ffn_out_ = std::make_unique<Linear>(ffn_dim, model_dim, rng);
  RegisterModule("norm1", norm1_.get());
  RegisterModule("attention", attention_.get());
  RegisterModule("norm2", norm2_.get());
  RegisterModule("ffn_in", ffn_in_.get());
  RegisterModule("ffn_out", ffn_out_.get());
}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  Tensor attended = tensor::Add(x, attention_->Forward(norm1_->Forward(x)));
  Tensor ffn =
      ffn_out_->Forward(tensor::Relu(ffn_in_->Forward(norm2_->Forward(attended))));
  return tensor::Add(attended, ffn);
}

DilatedCausalConv::DilatedCausalConv(int64_t input_dim, int64_t filters,
                                     int64_t dilation, util::Rng* rng)
    : input_dim_(input_dim), filters_(filters), dilation_(dilation) {
  gate_ = std::make_unique<Linear>(2 * input_dim, filters, rng);
  signal_ = std::make_unique<Linear>(2 * input_dim, filters, rng);
  RegisterModule("gate", gate_.get());
  RegisterModule("signal", signal_.get());
}

Tensor DilatedCausalConv::Forward(const Tensor& x) const {
  FEWNER_CHECK(x.rank() == 2 && x.shape().dim(1) == input_dim_,
               "DilatedCausalConv expects [L, " << input_dim_ << "], got "
                                                << x.shape().ToString());
  const int64_t length = x.shape().dim(0);
  // Pair each position t with position t - dilation (zeros before the start):
  // pad `dilation` zero rows in front, take the first L rows, concat features.
  Tensor padded = tensor::Concat(
      {Tensor::Zeros(Shape{dilation_, input_dim_}), x}, 0);         // [L+d, D]
  Tensor shifted = tensor::Slice(padded, 0, 0, length);             // [L, D]
  Tensor pair = tensor::Concat({x, shifted}, 1);                    // [L, 2D]
  Tensor activation = tensor::Mul(tensor::Tanh(signal_->Forward(pair)),
                                  tensor::Sigmoid(gate_->Forward(pair)));
  return tensor::Concat({x, activation}, 1);  // dense growth: [L, D + F]
}

}  // namespace fewner::nn
