// Optimizers for the outer (meta) loop and for conventionally trained
// baselines.  Optimizers operate on parameter *slots* (Tensor*) and consume
// detached gradient tensors from autodiff::Grad.

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fewner::nn {

/// Rescales gradients in place so their global L2 norm is at most `max_norm`
/// (paper: clip 5.0).  Returns the pre-clip norm.
float ClipGradNorm(std::vector<tensor::Tensor>* grads, float max_norm);

/// Plain SGD with optional L2 weight decay, matching the paper's inner loop.
class Sgd {
 public:
  Sgd(std::vector<tensor::Tensor*> params, float lr, float weight_decay = 0.0f);

  /// params[i] <- params[i] - lr * (grads[i] + weight_decay * params[i]).
  void Step(const std::vector<tensor::Tensor>& grads);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<tensor::Tensor*> params_;
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with optional L2 weight decay and step-decay schedule
/// (the paper decays by 0.9 every 5000 tasks).
class Adam {
 public:
  Adam(std::vector<tensor::Tensor*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step(const std::vector<tensor::Tensor>& grads);

  /// Multiplies the learning rate by `factor` (e.g. 0.9 on a decay boundary).
  void DecayLr(float factor) { lr_ *= factor; }

  float lr() const { return lr_; }
  int64_t step_count() const { return step_; }

 private:
  std::vector<tensor::Tensor*> params_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;  ///< first moments, one per param
  std::vector<std::vector<float>> v_;  ///< second moments
};

}  // namespace fewner::nn
