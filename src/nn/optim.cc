#include "nn/optim.h"

#include <cmath>

#include "util/status.h"

namespace fewner::nn {

using tensor::Tensor;

float ClipGradNorm(std::vector<Tensor>* grads, float max_norm) {
  FEWNER_CHECK(max_norm > 0.0f, "ClipGradNorm requires max_norm > 0");
  double total_sq = 0.0;
  for (const Tensor& g : *grads) {
    for (float v : g.data()) total_sq += static_cast<double>(v) * v;
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (Tensor& g : *grads) {
      // Gradients from Grad(..., create_graph=false) are detached leaves.
      for (float& v : *g.mutable_data()) v *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor*> params, float lr, float weight_decay)
    : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void Sgd::Step(const std::vector<Tensor>& grads) {
  FEWNER_CHECK(grads.size() == params_.size(),
               "Sgd::Step: " << grads.size() << " grads for " << params_.size()
                             << " params");
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<float>* values = params_[i]->mutable_data();
    const auto& g = grads[i].data();
    FEWNER_CHECK(g.size() == values->size(), "Sgd::Step: size mismatch at " << i);
    for (size_t j = 0; j < values->size(); ++j) {
      (*values)[j] -= lr_ * (g[j] + weight_decay_ * (*values)[j]);
    }
  }
}

Adam::Adam(std::vector<Tensor*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i]->data().size(), 0.0f);
    v_[i].assign(params_[i]->data().size(), 0.0f);
  }
}

void Adam::Step(const std::vector<Tensor>& grads) {
  FEWNER_CHECK(grads.size() == params_.size(),
               "Adam::Step: " << grads.size() << " grads for " << params_.size()
                              << " params");
  ++step_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    std::vector<float>* values = params_[i]->mutable_data();
    const auto& g = grads[i].data();
    FEWNER_CHECK(g.size() == values->size(), "Adam::Step: size mismatch at " << i);
    for (size_t j = 0; j < values->size(); ++j) {
      const float grad = g[j] + weight_decay_ * (*values)[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * grad;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m_[i][j] / bias1;
      const float v_hat = v_[i][j] / bias2;
      (*values)[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace fewner::nn
