// Binary save/load of module parameters, so a meta-trained θ can be stored
// and shipped (Algorithm 1 returns θ_Meta; this is how you keep it).
//
// Format (little-endian):
//   magic "FEWN" | uint32 version | uint64 param_count |
//   per parameter: uint64 name_len | name bytes | uint64 rank | int64 dims[] |
//                  float32 values[]
// Loading verifies names, shapes and count against the target module.

#pragma once

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace fewner::nn {

/// Writes all (named) parameters of `module` to `path`.
util::Status SaveParameters(Module* module, const std::string& path);

/// Reads parameters saved by SaveParameters into `module`.  Fails with
/// InvalidArgument on any name/shape mismatch (the module must be constructed
/// with the same configuration that produced the file).
util::Status LoadParameters(Module* module, const std::string& path);

}  // namespace fewner::nn
