// Basic layers: Linear, Embedding, LayerNorm, and the FiLM generator used to
// condition the backbone on FEWNER's task context parameters.

#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace fewner::nn {

/// Affine map y = x W + b for x of shape [n, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
         bool with_bias = true);

  /// [n, in] -> [n, out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool with_bias_;
  tensor::Tensor weight_;  ///< [in, out]
  tensor::Tensor bias_;    ///< [out]
};

/// Lookup table mapping token ids to dense rows.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, util::Rng* rng, float stddev = 0.1f);

  /// ids -> [ids.size(), dim].
  tensor::Tensor Forward(const std::vector<int64_t>& ids) const;

  /// Overwrites initial values (e.g. with pre-computed hash embeddings); the
  /// table stays trainable, matching the paper's fine-tuned GloVe usage.
  void LoadPretrained(const std::vector<std::vector<float>>& rows);

  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t vocab_size_;
  int64_t dim_;
  tensor::Tensor table_;  ///< [vocab, dim]
};

/// Per-row layer normalization with learned gain/bias, for the LM baselines.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  /// [n, dim] -> [n, dim].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  int64_t dim_;
  float eps_;
  tensor::Tensor gain_;  ///< [dim]
  tensor::Tensor bias_;  ///< [dim]
};

/// FiLM generator (paper Eq. 8–9): maps the context vector φ to a per-feature
/// affine transform (γ, η) applied to hidden states h: FiLM(h) = γ ⊙ h + η.
///
/// The generator bias initializes γ to 1 and η to 0, so that φ = 0 (the reset
/// value at the start of every inner loop) leaves the backbone untouched.
class FilmGenerator : public Module {
 public:
  /// `context_dim` is |φ|; `feature_dim` is the size of the modulated features.
  FilmGenerator(int64_t context_dim, int64_t feature_dim, util::Rng* rng);

  /// Applies FiLM conditioning: h [n, feature_dim], phi [context_dim].
  tensor::Tensor Forward(const tensor::Tensor& h, const tensor::Tensor& phi) const;

  int64_t context_dim() const { return context_dim_; }

 private:
  int64_t context_dim_;
  int64_t feature_dim_;
  tensor::Tensor weight_;  ///< [context_dim, 2*feature_dim]
  tensor::Tensor bias_;    ///< [2*feature_dim], γ-part initialized to 1
};

}  // namespace fewner::nn
