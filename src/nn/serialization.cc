#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace fewner::nn {

namespace {
constexpr char kMagic[4] = {'F', 'E', 'W', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(T));
  return in->good();
}
}  // namespace

util::Status SaveParameters(Module* module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::InvalidArgument("cannot open '" + path + "'");
  out.write(kMagic, sizeof(kMagic));
  WritePod(&out, kVersion);
  auto named = module->NamedParameters();
  WritePod(&out, static_cast<uint64_t>(named.size()));
  for (auto& [name, param] : named) {
    WritePod(&out, static_cast<uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& dims = param->shape().dims();
    WritePod(&out, static_cast<uint64_t>(dims.size()));
    for (int64_t d : dims) WritePod(&out, d);
    const auto& values = param->data();
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(float)));
  }
  if (!out) return util::Status::Internal("write failed for '" + path + "'");
  return util::Status::OK();
}

util::Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("'" + path + "' is not a FEWNER checkpoint");
  }
  uint32_t version = 0;
  if (!ReadPod(&in, &version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported checkpoint version");
  }
  auto named = module->NamedParameters();
  uint64_t count = 0;
  if (!ReadPod(&in, &count) || count != named.size()) {
    return util::Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(named.size()));
  }
  for (auto& [name, param] : named) {
    uint64_t name_len = 0;
    if (!ReadPod(&in, &name_len) || name_len > 4096) {
      return util::Status::InvalidArgument("corrupt checkpoint (name length)");
    }
    std::string stored_name(name_len, '\0');
    in.read(stored_name.data(), static_cast<std::streamsize>(name_len));
    if (stored_name != name) {
      return util::Status::InvalidArgument("parameter order mismatch: expected '" +
                                           name + "', found '" + stored_name + "'");
    }
    uint64_t rank = 0;
    if (!ReadPod(&in, &rank) || rank > 8) {
      return util::Status::InvalidArgument("corrupt checkpoint (rank)");
    }
    std::vector<int64_t> dims(rank);
    for (auto& d : dims) {
      if (!ReadPod(&in, &d)) {
        return util::Status::InvalidArgument("corrupt checkpoint (dims)");
      }
    }
    if (tensor::Shape(dims) != param->shape()) {
      return util::Status::InvalidArgument("shape mismatch for '" + name + "'");
    }
    std::vector<float>* values = param->mutable_data();
    in.read(reinterpret_cast<char*>(values->data()),
            static_cast<std::streamsize>(values->size() * sizeof(float)));
    if (!in) return util::Status::InvalidArgument("corrupt checkpoint (values)");
  }
  return util::Status::OK();
}

}  // namespace fewner::nn
