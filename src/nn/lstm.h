// LSTM cell and bidirectional LSTM encoder — the classic BiLSTM-CRF context
// encoder (Ma & Hovy 2016, cited in the paper's survey §2.1), offered as an
// alternative to the BiGRU.  The paper's backbone choice is ablated in
// bench/ablation_encoder.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fewner::nn {

/// LSTM cell with standard gate conventions (i, f, g, o):
///   i = σ(x W_i + h U_i + b_i)       f = σ(x W_f + h U_f + b_f)
///   g = tanh(x W_g + h U_g + b_g)    o = σ(x W_o + h U_o + b_o)
///   c' = f ⊙ c + i ⊙ g               h' = o ⊙ tanh(c')
/// The forget-gate bias initializes to 1 (standard trick).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  /// Projects a sequence's inputs once: [L, input] -> [L, 4H] (gate order i|f|g|o).
  tensor::Tensor ProjectInput(const tensor::Tensor& x) const;

  /// One step; returns (h', c') through output parameters.
  void Step(const tensor::Tensor& projected_row, const tensor::Tensor& h,
            const tensor::Tensor& c, tensor::Tensor* h_next,
            tensor::Tensor* c_next) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t input_dim() const { return input_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  tensor::Tensor w_ih_;  ///< [input, 4H]
  tensor::Tensor w_hh_;  ///< [H, 4H]
  tensor::Tensor bias_;  ///< [4H], forget slice initialized to 1
};

/// Bidirectional LSTM: [L, input] -> [L, 2H].
class BiLstm : public Module {
 public:
  BiLstm(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Batched time loop over padded lanes: [B, L, input] -> [B, L, 2H].  Same
  /// masking contract as BiGru::ForwardBatch — inactive lanes carry (h, c)
  /// through unchanged via exact Where selects.
  tensor::Tensor ForwardBatch(const tensor::Tensor& x,
                              const std::vector<int64_t>& lengths) const;

  int64_t output_dim() const { return 2 * hidden_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  tensor::Tensor RunDirection(const LstmCell& cell, const tensor::Tensor& x,
                              bool reverse) const;

  tensor::Tensor RunDirectionBatch(const LstmCell& cell, const tensor::Tensor& x,
                                   const std::vector<tensor::Tensor>& step_masks,
                                   const std::vector<bool>& step_full,
                                   bool reverse) const;

  int64_t hidden_dim_;
  std::unique_ptr<LstmCell> forward_cell_;
  std::unique_ptr<LstmCell> backward_cell_;
};

}  // namespace fewner::nn
