// Character-level CNN (paper §3.2.2, Fig. 3): per-word character embeddings
// are convolved with several filter widths and max-pooled over time, yielding
// a morphology-aware word representation.  Table 5 shows this component is the
// single most important one for few-shot NER (OOTV handling).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace fewner::nn {

/// Configuration for the character CNN.
struct CharCnnConfig {
  int64_t char_vocab_size = 0;
  int64_t char_dim = 16;                       ///< character embedding size
  std::vector<int64_t> filter_widths = {2, 3, 4};
  int64_t filters_per_width = 10;              ///< paper: 50 each (150 total)
};

/// Multi-width character convolution with max-over-time pooling.
class CharCnn : public Module {
 public:
  CharCnn(const CharCnnConfig& config, util::Rng* rng);

  /// chars: per-word character id sequences for one sentence.
  /// Returns [num_words, output_dim()].
  tensor::Tensor Forward(const std::vector<std::vector<int64_t>>& chars) const;

  /// Convolves all tokens of a padded batch in one shot: one embedding gather,
  /// one GEMM per filter width over every window of every token.  `chars`
  /// holds the character ids of all B*Lmax tokens in lane-major order (padding
  /// tokens may be empty).  Returns [chars.size(), output_dim()], row i
  /// bitwise-equal to the per-word path on chars[i]: windows that exist only
  /// because of cross-token padding are pushed below zero with an additive
  /// -1e30 before max-over-time, which never wins against a ReLU output.
  tensor::Tensor ForwardBatch(const std::vector<std::vector<int64_t>>& chars) const;

  /// Total feature size: filter_widths.size() * filters_per_width.
  int64_t output_dim() const;

 private:
  /// One word's [T, char_dim] -> [output_dim].
  tensor::Tensor EncodeWord(const std::vector<int64_t>& chars) const;

  CharCnnConfig config_;
  int64_t max_width_ = 0;  ///< widest filter; minimum padded word length
  std::unique_ptr<Embedding> char_embedding_;
  std::vector<std::unique_ptr<Linear>> filters_;  ///< one [w*char_dim -> F] per width
};

}  // namespace fewner::nn
