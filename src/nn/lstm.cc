#include "nn/lstm.h"

#include <vector>

#include "nn/gru.h"  // BuildStepMasks
#include "nn/init.h"
#include "tensor/ops.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_ih_ = XavierNormal(input_dim, 4 * hidden_dim, rng);
  w_hh_ = XavierNormal(hidden_dim, 4 * hidden_dim, rng);
  // Forget-gate bias of 1 so early training does not wash out the cell state.
  std::vector<float> bias(static_cast<size_t>(4 * hidden_dim), 0.0f);
  for (int64_t i = hidden_dim; i < 2 * hidden_dim; ++i) {
    bias[static_cast<size_t>(i)] = 1.0f;
  }
  bias_ = Tensor::FromData(Shape{4 * hidden_dim}, std::move(bias),
                           /*requires_grad=*/true);
  RegisterParameter("w_ih", &w_ih_);
  RegisterParameter("w_hh", &w_hh_);
  RegisterParameter("bias", &bias_);
}

Tensor LstmCell::ProjectInput(const Tensor& x) const {
  FEWNER_CHECK(x.rank() == 2 && x.shape().dim(1) == input_dim_,
               "LstmCell expects [L, " << input_dim_ << "], got "
                                       << x.shape().ToString());
  return tensor::Add(tensor::MatMul(x, w_ih_), bias_);  // [L, 4H]
}

void LstmCell::Step(const Tensor& projected_row, const Tensor& h, const Tensor& c,
                    Tensor* h_next, Tensor* c_next) const {
  const int64_t hd = hidden_dim_;
  // Per-timestep GEMM: its NT/TN backward reads w_hh_ and h in place, so BPTT
  // carries no per-step w_hh_ᵀ / hᵀ transpose copies (tensor/ops.cc).
  Tensor gates =
      tensor::Add(projected_row, tensor::MatMul(h, w_hh_));  // [1, 4H]
  Tensor i = tensor::Sigmoid(tensor::Slice(gates, 1, 0, hd));
  Tensor f = tensor::Sigmoid(tensor::Slice(gates, 1, hd, hd));
  Tensor g = tensor::Tanh(tensor::Slice(gates, 1, 2 * hd, hd));
  Tensor o = tensor::Sigmoid(tensor::Slice(gates, 1, 3 * hd, hd));
  *c_next = tensor::Add(tensor::Mul(f, c), tensor::Mul(i, g));
  *h_next = tensor::Mul(o, tensor::Tanh(*c_next));
}

BiLstm::BiLstm(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : hidden_dim_(hidden_dim) {
  forward_cell_ = std::make_unique<LstmCell>(input_dim, hidden_dim, rng);
  backward_cell_ = std::make_unique<LstmCell>(input_dim, hidden_dim, rng);
  RegisterModule("forward", forward_cell_.get());
  RegisterModule("backward", backward_cell_.get());
}

Tensor BiLstm::RunDirection(const LstmCell& cell, const Tensor& x,
                            bool reverse) const {
  const int64_t length = x.shape().dim(0);
  Tensor projected = cell.ProjectInput(x);
  Tensor h = Tensor::Zeros(Shape{1, hidden_dim_});
  Tensor c = Tensor::Zeros(Shape{1, hidden_dim_});
  std::vector<Tensor> states(static_cast<size_t>(length));
  for (int64_t step = 0; step < length; ++step) {
    const int64_t t = reverse ? length - 1 - step : step;
    Tensor h_next, c_next;
    cell.Step(tensor::Slice(projected, 0, t, 1), h, c, &h_next, &c_next);
    h = h_next;
    c = c_next;
    states[static_cast<size_t>(t)] = h;
  }
  return tensor::Concat(states, 0);
}

Tensor BiLstm::Forward(const Tensor& x) const {
  Tensor fwd = RunDirection(*forward_cell_, x, /*reverse=*/false);
  Tensor bwd = RunDirection(*backward_cell_, x, /*reverse=*/true);
  return tensor::Concat({fwd, bwd}, 1);
}

Tensor BiLstm::RunDirectionBatch(const LstmCell& cell, const Tensor& x,
                                 const std::vector<Tensor>& step_masks,
                                 const std::vector<bool>& step_full,
                                 bool reverse) const {
  const int64_t lanes = x.shape().dim(0);
  const int64_t length = x.shape().dim(1);
  const int64_t input = x.shape().dim(2);
  Tensor projected = cell.ProjectInput(
      tensor::Reshape(x, Shape{lanes * length, input}));  // [B*L, 4H]
  Tensor projected3 =
      tensor::Reshape(projected, Shape{lanes, length, 4 * hidden_dim_});
  Tensor h = Tensor::Zeros(Shape{lanes, hidden_dim_});
  Tensor c = Tensor::Zeros(Shape{lanes, hidden_dim_});
  std::vector<Tensor> states(static_cast<size_t>(length));
  for (int64_t step = 0; step < length; ++step) {
    const int64_t t = reverse ? length - 1 - step : step;
    Tensor rows = tensor::Reshape(tensor::Slice(projected3, 1, t, 1),
                                  Shape{lanes, 4 * hidden_dim_});
    Tensor h_next, c_next;
    cell.Step(rows, h, c, &h_next, &c_next);
    if (step_full[static_cast<size_t>(t)]) {
      h = h_next;
      c = c_next;
    } else {
      const Tensor& mask = step_masks[static_cast<size_t>(t)];
      h = tensor::Where(mask, h_next, h);
      c = tensor::Where(mask, c_next, c);
    }
    states[static_cast<size_t>(t)] =
        tensor::Reshape(h, Shape{lanes, 1, hidden_dim_});
  }
  return tensor::Concat(states, 1);  // [B, L, H]
}

Tensor BiLstm::ForwardBatch(const Tensor& x,
                            const std::vector<int64_t>& lengths) const {
  FEWNER_CHECK(x.rank() == 3, "BiLstm::ForwardBatch expects [B, L, input], got "
                                  << x.shape().ToString());
  FEWNER_CHECK(static_cast<int64_t>(lengths.size()) == x.shape().dim(0),
               "BiLstm::ForwardBatch lengths/batch mismatch");
  std::vector<Tensor> masks;
  std::vector<bool> full;
  BuildStepMasks(lengths, x.shape().dim(1), &masks, &full);
  Tensor fwd = RunDirectionBatch(*forward_cell_, x, masks, full, /*reverse=*/false);
  Tensor bwd = RunDirectionBatch(*backward_cell_, x, masks, full, /*reverse=*/true);
  return tensor::Concat({fwd, bwd}, 2);  // [B, L, 2H]
}

}  // namespace fewner::nn
