#include "nn/layers.h"

#include "nn/init.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features), with_bias_(with_bias) {
  weight_ = XavierNormal(in_features, out_features, rng);
  RegisterParameter("weight", &weight_);
  if (with_bias_) {
    bias_ = ZeroInit(Shape{out_features});
    RegisterParameter("bias", &bias_);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  FEWNER_CHECK(x.rank() == 2 && x.shape().dim(1) == in_features_,
               "Linear expects [n, " << in_features_ << "], got "
                                     << x.shape().ToString());
  // x is often the full [B·L, in] activation block; MatMul's TN backward
  // computes dW = xᵀ·grad in place of materializing that block transposed,
  // which is the big per-step copy the old tape carried (tensor/ops.cc).
  Tensor out = tensor::MatMul(x, weight_);
  if (with_bias_) out = tensor::Add(out, bias_);
  return out;
}

Embedding::Embedding(int64_t vocab_size, int64_t dim, util::Rng* rng, float stddev)
    : vocab_size_(vocab_size), dim_(dim) {
  table_ = GaussianInit(Shape{vocab_size, dim}, stddev, rng);
  RegisterParameter("table", &table_);
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids) const {
  return tensor::IndexSelectRows(table_, ids);
}

void Embedding::LoadPretrained(const std::vector<std::vector<float>>& rows) {
  FEWNER_CHECK(static_cast<int64_t>(rows.size()) == vocab_size_,
               "LoadPretrained: " << rows.size() << " rows for vocab " << vocab_size_);
  std::vector<float>* data = table_.mutable_data();
  for (int64_t i = 0; i < vocab_size_; ++i) {
    FEWNER_CHECK(static_cast<int64_t>(rows[static_cast<size_t>(i)].size()) == dim_,
                 "LoadPretrained: row " << i << " has wrong dimension");
    for (int64_t j = 0; j < dim_; ++j) {
      (*data)[static_cast<size_t>(i * dim_ + j)] =
          rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
}

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gain_ = ConstantInit(Shape{dim}, 1.0f);
  bias_ = ZeroInit(Shape{dim});
  RegisterParameter("gain", &gain_);
  RegisterParameter("bias", &bias_);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  FEWNER_CHECK(x.rank() == 2 && x.shape().dim(1) == dim_,
               "LayerNorm expects [n, " << dim_ << "], got " << x.shape().ToString());
  const float inv_d = 1.0f / static_cast<float>(dim_);
  Tensor mean = tensor::MulScalar(tensor::SumAxis(x, 1, /*keepdim=*/true), inv_d);
  Tensor centered = tensor::Sub(x, mean);
  Tensor var = tensor::MulScalar(
      tensor::SumAxis(tensor::Square(centered), 1, /*keepdim=*/true), inv_d);
  Tensor normalized =
      tensor::Div(centered, tensor::Sqrt(tensor::AddScalar(var, eps_)));
  return tensor::Add(tensor::Mul(normalized, gain_), bias_);
}

FilmGenerator::FilmGenerator(int64_t context_dim, int64_t feature_dim, util::Rng* rng)
    : context_dim_(context_dim), feature_dim_(feature_dim) {
  weight_ = XavierNormal(context_dim, 2 * feature_dim, rng);
  // γ entries start at 1 (identity scaling), η at 0, so a zero context vector
  // leaves the hidden states unchanged.
  std::vector<float> bias_values(static_cast<size_t>(2 * feature_dim), 0.0f);
  for (int64_t i = 0; i < feature_dim; ++i) bias_values[static_cast<size_t>(i)] = 1.0f;
  bias_ = Tensor::FromData(Shape{2 * feature_dim}, std::move(bias_values),
                           /*requires_grad=*/true);
  RegisterParameter("weight", &weight_);
  RegisterParameter("bias", &bias_);
}

Tensor FilmGenerator::Forward(const Tensor& h, const Tensor& phi) const {
  FEWNER_CHECK(h.rank() == 2 && h.shape().dim(1) == feature_dim_,
               "FiLM expects h of [n, " << feature_dim_ << "], got "
                                        << h.shape().ToString());
  FEWNER_CHECK(phi.numel() == context_dim_,
               "FiLM expects phi of size " << context_dim_ << ", got " << phi.numel());
  Tensor phi_row = tensor::Reshape(phi, Shape{1, context_dim_});
  Tensor gamma_eta =
      tensor::Add(tensor::MatMul(phi_row, weight_), bias_);  // [1, 2F]
  Tensor gamma = tensor::Slice(gamma_eta, 1, 0, feature_dim_);
  Tensor eta = tensor::Slice(gamma_eta, 1, feature_dim_, feature_dim_);
  // γ, η broadcast over the n rows of h.
  return tensor::Add(tensor::Mul(h, gamma), eta);
}

}  // namespace fewner::nn
