#include "nn/gru.h"

#include <vector>

#include "nn/init.h"
#include "tensor/ops.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_ih_ = XavierNormal(input_dim, 3 * hidden_dim, rng);
  w_hh_ = XavierNormal(hidden_dim, 3 * hidden_dim, rng);
  b_ih_ = ZeroInit(Shape{3 * hidden_dim});
  b_hh_ = ZeroInit(Shape{3 * hidden_dim});
  RegisterParameter("w_ih", &w_ih_);
  RegisterParameter("w_hh", &w_hh_);
  RegisterParameter("b_ih", &b_ih_);
  RegisterParameter("b_hh", &b_hh_);
}

Tensor GruCell::ProjectInput(const Tensor& x) const {
  FEWNER_CHECK(x.rank() == 2 && x.shape().dim(1) == input_dim_,
               "GruCell expects [L, " << input_dim_ << "], got "
                                      << x.shape().ToString());
  return tensor::Add(tensor::MatMul(x, w_ih_), b_ih_);  // [L, 3H]
}

Tensor GruCell::Step(const Tensor& projected_row, const Tensor& h) const {
  const int64_t hd = hidden_dim_;
  // This GEMM runs once per timestep, so its backward dominates BPTT cost:
  // MatMul's NT/TN backward reads w_hh_ and h in place — no per-step
  // w_hh_ᵀ / hᵀ transpose copies on the tape (tensor/ops.cc).
  Tensor hidden_proj = tensor::Add(tensor::MatMul(h, w_hh_), b_hh_);  // [1, 3H]

  Tensor xr = tensor::Slice(projected_row, 1, 0, hd);
  Tensor xz = tensor::Slice(projected_row, 1, hd, hd);
  Tensor xn = tensor::Slice(projected_row, 1, 2 * hd, hd);
  Tensor hr = tensor::Slice(hidden_proj, 1, 0, hd);
  Tensor hz = tensor::Slice(hidden_proj, 1, hd, hd);
  Tensor hn = tensor::Slice(hidden_proj, 1, 2 * hd, hd);

  Tensor r = tensor::Sigmoid(tensor::Add(xr, hr));
  Tensor z = tensor::Sigmoid(tensor::Add(xz, hz));
  Tensor n = tensor::Tanh(tensor::Add(xn, tensor::Mul(r, hn)));
  // h' = (1 - z) ⊙ n + z ⊙ h
  Tensor one_minus_z = tensor::AddScalar(tensor::Neg(z), 1.0f);
  return tensor::Add(tensor::Mul(one_minus_z, n), tensor::Mul(z, h));
}

BiGru::BiGru(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : hidden_dim_(hidden_dim) {
  forward_cell_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  backward_cell_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  RegisterModule("forward", forward_cell_.get());
  RegisterModule("backward", backward_cell_.get());
}

Tensor BiGru::RunDirection(const GruCell& cell, const Tensor& x, bool reverse) const {
  const int64_t length = x.shape().dim(0);
  Tensor projected = cell.ProjectInput(x);  // [L, 3H]
  Tensor h = Tensor::Zeros(Shape{1, hidden_dim_});
  std::vector<Tensor> states(static_cast<size_t>(length));
  for (int64_t step = 0; step < length; ++step) {
    const int64_t t = reverse ? length - 1 - step : step;
    Tensor row = tensor::Slice(projected, 0, t, 1);  // [1, 3H]
    h = cell.Step(row, h);
    states[static_cast<size_t>(t)] = h;
  }
  return tensor::Concat(states, 0);  // [L, H]
}

Tensor BiGru::Forward(const Tensor& x) const {
  Tensor fwd = RunDirection(*forward_cell_, x, /*reverse=*/false);
  Tensor bwd = RunDirection(*backward_cell_, x, /*reverse=*/true);
  return tensor::Concat({fwd, bwd}, 1);  // [L, 2H]
}

void BuildStepMasks(const std::vector<int64_t>& lengths, int64_t max_len,
                    std::vector<Tensor>* masks, std::vector<bool>* full) {
  const int64_t lanes = static_cast<int64_t>(lengths.size());
  masks->resize(static_cast<size_t>(max_len));
  full->assign(static_cast<size_t>(max_len), false);
  for (int64_t t = 0; t < max_len; ++t) {
    std::vector<float> m(static_cast<size_t>(lanes), 0.0f);
    bool all = true;
    for (int64_t b = 0; b < lanes; ++b) {
      if (t < lengths[static_cast<size_t>(b)]) {
        m[static_cast<size_t>(b)] = 1.0f;
      } else {
        all = false;
      }
    }
    (*full)[static_cast<size_t>(t)] = all;
    if (!all) {
      (*masks)[static_cast<size_t>(t)] =
          Tensor::FromData(Shape{lanes, 1}, std::move(m));
    }
  }
}

Tensor BiGru::RunDirectionBatch(const GruCell& cell, const Tensor& x,
                                const std::vector<Tensor>& step_masks,
                                const std::vector<bool>& step_full,
                                bool reverse) const {
  const int64_t lanes = x.shape().dim(0);
  const int64_t length = x.shape().dim(1);
  const int64_t input = x.shape().dim(2);
  // One hoisted GEMM for the whole batch; rows are bitwise-independent under
  // the ascending-k kernel contract, so row (b, t) matches the per-sentence
  // projection of sentence b's row t exactly.
  Tensor projected = cell.ProjectInput(
      tensor::Reshape(x, Shape{lanes * length, input}));  // [B*L, 3H]
  Tensor projected3 =
      tensor::Reshape(projected, Shape{lanes, length, 3 * hidden_dim_});
  Tensor h = Tensor::Zeros(Shape{lanes, hidden_dim_});
  std::vector<Tensor> states(static_cast<size_t>(length));
  for (int64_t step = 0; step < length; ++step) {
    const int64_t t = reverse ? length - 1 - step : step;
    Tensor rows = tensor::Reshape(tensor::Slice(projected3, 1, t, 1),
                                  Shape{lanes, 3 * hidden_dim_});
    Tensor h_new = cell.Step(rows, h);
    // Inactive lanes (padding tail; in reverse, lanes whose sentence has not
    // started yet) carry their state through unchanged.  Where copies the
    // selected operand, so the carry is exact — active lanes see precisely
    // the per-sentence recurrence.
    h = step_full[static_cast<size_t>(t)]
            ? h_new
            : tensor::Where(step_masks[static_cast<size_t>(t)], h_new, h);
    states[static_cast<size_t>(t)] =
        tensor::Reshape(h, Shape{lanes, 1, hidden_dim_});
  }
  return tensor::Concat(states, 1);  // [B, L, H]
}

Tensor BiGru::ForwardBatch(const Tensor& x,
                           const std::vector<int64_t>& lengths) const {
  FEWNER_CHECK(x.rank() == 3, "BiGru::ForwardBatch expects [B, L, input], got "
                                  << x.shape().ToString());
  FEWNER_CHECK(static_cast<int64_t>(lengths.size()) == x.shape().dim(0),
               "BiGru::ForwardBatch lengths/batch mismatch");
  std::vector<Tensor> masks;
  std::vector<bool> full;
  BuildStepMasks(lengths, x.shape().dim(1), &masks, &full);
  Tensor fwd = RunDirectionBatch(*forward_cell_, x, masks, full, /*reverse=*/false);
  Tensor bwd = RunDirectionBatch(*backward_cell_, x, masks, full, /*reverse=*/true);
  return tensor::Concat({fwd, bwd}, 2);  // [B, L, 2H]
}

}  // namespace fewner::nn
