#include "nn/gru.h"

#include <vector>

#include "nn/init.h"
#include "tensor/ops.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_ih_ = XavierNormal(input_dim, 3 * hidden_dim, rng);
  w_hh_ = XavierNormal(hidden_dim, 3 * hidden_dim, rng);
  b_ih_ = ZeroInit(Shape{3 * hidden_dim});
  b_hh_ = ZeroInit(Shape{3 * hidden_dim});
  RegisterParameter("w_ih", &w_ih_);
  RegisterParameter("w_hh", &w_hh_);
  RegisterParameter("b_ih", &b_ih_);
  RegisterParameter("b_hh", &b_hh_);
}

Tensor GruCell::ProjectInput(const Tensor& x) const {
  FEWNER_CHECK(x.rank() == 2 && x.shape().dim(1) == input_dim_,
               "GruCell expects [L, " << input_dim_ << "], got "
                                      << x.shape().ToString());
  return tensor::Add(tensor::MatMul(x, w_ih_), b_ih_);  // [L, 3H]
}

Tensor GruCell::Step(const Tensor& projected_row, const Tensor& h) const {
  const int64_t hd = hidden_dim_;
  Tensor hidden_proj = tensor::Add(tensor::MatMul(h, w_hh_), b_hh_);  // [1, 3H]

  Tensor xr = tensor::Slice(projected_row, 1, 0, hd);
  Tensor xz = tensor::Slice(projected_row, 1, hd, hd);
  Tensor xn = tensor::Slice(projected_row, 1, 2 * hd, hd);
  Tensor hr = tensor::Slice(hidden_proj, 1, 0, hd);
  Tensor hz = tensor::Slice(hidden_proj, 1, hd, hd);
  Tensor hn = tensor::Slice(hidden_proj, 1, 2 * hd, hd);

  Tensor r = tensor::Sigmoid(tensor::Add(xr, hr));
  Tensor z = tensor::Sigmoid(tensor::Add(xz, hz));
  Tensor n = tensor::Tanh(tensor::Add(xn, tensor::Mul(r, hn)));
  // h' = (1 - z) ⊙ n + z ⊙ h
  Tensor one_minus_z = tensor::AddScalar(tensor::Neg(z), 1.0f);
  return tensor::Add(tensor::Mul(one_minus_z, n), tensor::Mul(z, h));
}

BiGru::BiGru(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : hidden_dim_(hidden_dim) {
  forward_cell_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  backward_cell_ = std::make_unique<GruCell>(input_dim, hidden_dim, rng);
  RegisterModule("forward", forward_cell_.get());
  RegisterModule("backward", backward_cell_.get());
}

Tensor BiGru::RunDirection(const GruCell& cell, const Tensor& x, bool reverse) const {
  const int64_t length = x.shape().dim(0);
  Tensor projected = cell.ProjectInput(x);  // [L, 3H]
  Tensor h = Tensor::Zeros(Shape{1, hidden_dim_});
  std::vector<Tensor> states(static_cast<size_t>(length));
  for (int64_t step = 0; step < length; ++step) {
    const int64_t t = reverse ? length - 1 - step : step;
    Tensor row = tensor::Slice(projected, 0, t, 1);  // [1, 3H]
    h = cell.Step(row, h);
    states[static_cast<size_t>(t)] = h;
  }
  return tensor::Concat(states, 0);  // [L, H]
}

Tensor BiGru::Forward(const Tensor& x) const {
  Tensor fwd = RunDirection(*forward_cell_, x, /*reverse=*/false);
  Tensor bwd = RunDirection(*backward_cell_, x, /*reverse=*/true);
  return tensor::Concat({fwd, bwd}, 1);  // [L, 2H]
}

}  // namespace fewner::nn
