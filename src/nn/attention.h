// Self-attention blocks used by the pre-trained-LM baselines (GPT2/BERT-like)
// and by the causal-attention component of SNAIL.

#pragma once

#include <cstdint>
#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace fewner::nn {

/// Masking mode for self-attention.
enum class AttentionMask {
  kNone,    ///< full bidirectional attention (BERT-style)
  kCausal,  ///< position i attends to j <= i (GPT/SNAIL-style)
};

/// Single-head scaled dot-product self-attention with output projection.
class SelfAttention : public Module {
 public:
  SelfAttention(int64_t model_dim, AttentionMask mask, util::Rng* rng);

  /// [L, D] -> [L, D].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  int64_t model_dim_;
  AttentionMask mask_;
  std::unique_ptr<Linear> query_;
  std::unique_ptr<Linear> key_;
  std::unique_ptr<Linear> value_;
  std::unique_ptr<Linear> output_;
};

/// Pre-norm transformer block: x + Attn(LN(x)), then x + FFN(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t model_dim, int64_t ffn_dim, AttentionMask mask,
                   util::Rng* rng);

  /// [L, D] -> [L, D].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<SelfAttention> attention_;
  std::unique_ptr<LayerNorm> norm2_;
  std::unique_ptr<Linear> ffn_in_;
  std::unique_ptr<Linear> ffn_out_;
};

/// Dilated causal convolution layer — the "temporal convolution" building
/// block of SNAIL's TC blocks.  Concatenates a gated conv feature of the
/// receptive field to the input (dense / skip-style growth).
class DilatedCausalConv : public Module {
 public:
  DilatedCausalConv(int64_t input_dim, int64_t filters, int64_t dilation,
                    util::Rng* rng);

  /// [L, input_dim] -> [L, input_dim + filters].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t output_dim() const { return input_dim_ + filters_; }

 private:
  int64_t input_dim_;
  int64_t filters_;
  int64_t dilation_;
  std::unique_ptr<Linear> gate_;    ///< [2*input_dim -> filters]
  std::unique_ptr<Linear> signal_;  ///< [2*input_dim -> filters]
};

}  // namespace fewner::nn
