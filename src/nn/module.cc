#include "nn/module.h"

#include "util/status.h"

namespace fewner::nn {

void Module::RegisterParameter(const std::string& name, tensor::Tensor* param) {
  FEWNER_CHECK(param != nullptr && param->defined(),
               "RegisterParameter(" << name << ") on undefined tensor");
  own_params_.emplace_back(name, param);
}

void Module::RegisterModule(const std::string& name, Module* module) {
  FEWNER_CHECK(module != nullptr, "RegisterModule(" << name << ") on null module");
  submodules_.emplace_back(name, module);
}

void Module::CollectNamed(const std::string& prefix,
                          std::vector<std::pair<std::string, tensor::Tensor*>>* out) {
  for (auto& [name, param] : own_params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, param);
  }
  for (auto& [name, sub] : submodules_) {
    sub->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<tensor::Tensor*> Module::Parameters() {
  std::vector<std::pair<std::string, tensor::Tensor*>> named;
  CollectNamed("", &named);
  std::vector<tensor::Tensor*> out;
  out.reserve(named.size());
  for (auto& [name, param] : named) out.push_back(param);
  return out;
}

std::vector<std::pair<std::string, tensor::Tensor*>> Module::NamedParameters() {
  std::vector<std::pair<std::string, tensor::Tensor*>> named;
  CollectNamed("", &named);
  return named;
}

int64_t Module::ParameterCount() {
  int64_t total = 0;
  for (tensor::Tensor* p : Parameters()) total += p->numel();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, sub] : submodules_) sub->SetTraining(training);
}

void Module::CopyParametersFrom(Module* other) {
  auto mine = Parameters();
  auto theirs = other->Parameters();
  FEWNER_CHECK(mine.size() == theirs.size(),
               "CopyParametersFrom: layout mismatch (" << mine.size() << " vs "
                                                       << theirs.size() << " slots)");
  for (size_t i = 0; i < mine.size(); ++i) {
    FEWNER_CHECK(mine[i]->shape() == theirs[i]->shape(),
                 "CopyParametersFrom: shape mismatch at slot " << i);
    // In-place value copy, not slot replacement: tensor handles snapshotted
    // from this module (ParameterTensors) stay valid across syncs — which is
    // what lets ParallelMetaBatch build them once per replica — and the
    // mutable_data() version bump marks any CachedPrefix built on the old
    // values as stale.
    *mine[i]->mutable_data() = theirs[i]->data();
  }
}

std::vector<tensor::Tensor> ParameterTensors(Module* module) {
  std::vector<tensor::Tensor> out;
  for (tensor::Tensor* slot : module->Parameters()) out.push_back(*slot);
  return out;
}

std::vector<std::vector<float>> SnapshotParameterValues(Module* module) {
  std::vector<std::vector<float>> out;
  for (tensor::Tensor* slot : module->Parameters()) out.push_back(slot->data());
  return out;
}

void RestoreParameterValues(Module* module,
                            const std::vector<std::vector<float>>& values) {
  auto slots = module->Parameters();
  FEWNER_CHECK(slots.size() == values.size(), "RestoreParameterValues layout mismatch");
  for (size_t i = 0; i < slots.size(); ++i) {
    FEWNER_CHECK(slots[i]->data().size() == values[i].size(),
                 "RestoreParameterValues size mismatch at slot " << i);
    *slots[i]->mutable_data() = values[i];
  }
}

ParameterPatch::ParameterPatch(std::vector<tensor::Tensor*> slots,
                               const std::vector<tensor::Tensor>& values)
    : slots_(std::move(slots)) {
  FEWNER_CHECK(slots_.size() == values.size(),
               "ParameterPatch: " << slots_.size() << " slots for " << values.size()
                                  << " values");
  saved_.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    FEWNER_CHECK(slots_[i]->shape() == values[i].shape(),
                 "ParameterPatch shape mismatch at slot " << i);
    saved_.push_back(*slots_[i]);
    *slots_[i] = values[i];
  }
}

ParameterPatch::~ParameterPatch() {
  for (size_t i = 0; i < slots_.size(); ++i) *slots_[i] = saved_[i];
}

}  // namespace fewner::nn
