// Parameter initialization helpers.

#pragma once

#include <cmath>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fewner::nn {

/// Xavier/Glorot-normal init for a [fan_in, fan_out] weight matrix.
inline tensor::Tensor XavierNormal(int64_t fan_in, int64_t fan_out, util::Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Randn(tensor::Shape{fan_in, fan_out}, rng, stddev,
                               /*requires_grad=*/true);
}

/// Gaussian init with explicit stddev (used for embeddings).
inline tensor::Tensor GaussianInit(tensor::Shape shape, float stddev, util::Rng* rng) {
  return tensor::Tensor::Randn(std::move(shape), rng, stddev, /*requires_grad=*/true);
}

/// Zero-initialized trainable tensor (biases).
inline tensor::Tensor ZeroInit(tensor::Shape shape) {
  return tensor::Tensor::Zeros(std::move(shape), /*requires_grad=*/true);
}

/// Constant-initialized trainable tensor.
inline tensor::Tensor ConstantInit(tensor::Shape shape, float value) {
  return tensor::Tensor::Full(std::move(shape), value, /*requires_grad=*/true);
}

}  // namespace fewner::nn
