#include "nn/char_cnn.h"

#include <string>

#include "tensor/ops.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

CharCnn::CharCnn(const CharCnnConfig& config, util::Rng* rng) : config_(config) {
  FEWNER_CHECK(config.char_vocab_size > 0, "CharCnn requires a character vocabulary");
  FEWNER_CHECK(!config.filter_widths.empty(), "CharCnn requires filter widths");
  char_embedding_ =
      std::make_unique<Embedding>(config.char_vocab_size, config.char_dim, rng);
  RegisterModule("char_embedding", char_embedding_.get());
  for (size_t i = 0; i < config.filter_widths.size(); ++i) {
    const int64_t width = config.filter_widths[i];
    filters_.push_back(std::make_unique<Linear>(width * config.char_dim,
                                                config.filters_per_width, rng));
    RegisterModule("filter_w" + std::to_string(width), filters_[i].get());
  }
}

int64_t CharCnn::output_dim() const {
  return static_cast<int64_t>(config_.filter_widths.size()) *
         config_.filters_per_width;
}

Tensor CharCnn::EncodeWord(const std::vector<int64_t>& chars) const {
  int64_t max_width = 0;
  for (int64_t w : config_.filter_widths) max_width = std::max(max_width, w);

  // Pad short words with the reserved pad id 0 so every filter width fits.
  std::vector<int64_t> padded = chars;
  while (static_cast<int64_t>(padded.size()) < max_width) padded.push_back(0);

  Tensor embedded = char_embedding_->Forward(padded);  // [T, char_dim]
  std::vector<Tensor> pooled;
  pooled.reserve(filters_.size());
  for (size_t i = 0; i < filters_.size(); ++i) {
    const int64_t width = config_.filter_widths[i];
    Tensor windows = tensor::Unfold1d(embedded, width);     // [T-w+1, w*char_dim]
    Tensor conv = tensor::Relu(filters_[i]->Forward(windows));  // [T-w+1, F]
    pooled.push_back(tensor::MaxAxis(conv, 0, /*keepdim=*/false));  // [F]
  }
  return tensor::Concat(pooled, 0);  // rank-1 [output_dim]
}

Tensor CharCnn::Forward(const std::vector<std::vector<int64_t>>& chars) const {
  FEWNER_CHECK(!chars.empty(), "CharCnn::Forward on empty sentence");
  std::vector<Tensor> rows;
  rows.reserve(chars.size());
  for (const auto& word : chars) rows.push_back(EncodeWord(word));
  return tensor::StackRows(rows);  // [num_words, output_dim]
}

}  // namespace fewner::nn
