#include "nn/char_cnn.h"

#include <algorithm>
#include <string>

#include "tensor/ops.h"

namespace fewner::nn {

using tensor::Shape;
using tensor::Tensor;

CharCnn::CharCnn(const CharCnnConfig& config, util::Rng* rng) : config_(config) {
  FEWNER_CHECK(config.char_vocab_size > 0, "CharCnn requires a character vocabulary");
  FEWNER_CHECK(!config.filter_widths.empty(), "CharCnn requires filter widths");
  for (int64_t w : config.filter_widths) max_width_ = std::max(max_width_, w);
  char_embedding_ =
      std::make_unique<Embedding>(config.char_vocab_size, config.char_dim, rng);
  RegisterModule("char_embedding", char_embedding_.get());
  for (size_t i = 0; i < config.filter_widths.size(); ++i) {
    const int64_t width = config.filter_widths[i];
    filters_.push_back(std::make_unique<Linear>(width * config.char_dim,
                                                config.filters_per_width, rng));
    RegisterModule("filter_w" + std::to_string(width), filters_[i].get());
  }
}

int64_t CharCnn::output_dim() const {
  return static_cast<int64_t>(config_.filter_widths.size()) *
         config_.filters_per_width;
}

Tensor CharCnn::EncodeWord(const std::vector<int64_t>& chars) const {
  // Pad short words with the reserved pad id 0 so every filter width fits;
  // words already long enough are used as-is, no copy.
  const std::vector<int64_t>* ids = &chars;
  std::vector<int64_t> padded;
  if (static_cast<int64_t>(chars.size()) < max_width_) {
    padded.reserve(static_cast<size_t>(max_width_));
    padded = chars;
    padded.resize(static_cast<size_t>(max_width_), 0);
    ids = &padded;
  }

  Tensor embedded = char_embedding_->Forward(*ids);  // [T, char_dim]
  std::vector<Tensor> pooled;
  pooled.reserve(filters_.size());
  for (size_t i = 0; i < filters_.size(); ++i) {
    const int64_t width = config_.filter_widths[i];
    Tensor windows = tensor::Unfold1d(embedded, width);     // [T-w+1, w*char_dim]
    Tensor conv = tensor::Relu(filters_[i]->Forward(windows));  // [T-w+1, F]
    pooled.push_back(tensor::MaxAxis(conv, 0, /*keepdim=*/false));  // [F]
  }
  return tensor::Concat(pooled, 0);  // rank-1 [output_dim]
}

Tensor CharCnn::Forward(const std::vector<std::vector<int64_t>>& chars) const {
  FEWNER_CHECK(!chars.empty(), "CharCnn::Forward on empty sentence");
  std::vector<Tensor> rows;
  rows.reserve(chars.size());
  for (const auto& word : chars) rows.push_back(EncodeWord(word));
  return tensor::StackRows(rows);  // [num_words, output_dim]
}

Tensor CharCnn::ForwardBatch(const std::vector<std::vector<int64_t>>& chars) const {
  FEWNER_CHECK(!chars.empty(), "CharCnn::ForwardBatch on empty batch");
  const int64_t n = static_cast<int64_t>(chars.size());
  // Common padded char length: every token gets the same T so one [N, T, D]
  // tensor covers the batch.  Each token's own padded length (what the
  // per-word path uses) is max(|word|, max_width_); T is the max over tokens.
  int64_t t_max = max_width_;
  for (const auto& word : chars) {
    t_max = std::max(t_max, static_cast<int64_t>(word.size()));
  }
  std::vector<int64_t> flat_ids(static_cast<size_t>(n * t_max), 0);
  for (int64_t i = 0; i < n; ++i) {
    const auto& word = chars[static_cast<size_t>(i)];
    std::copy(word.begin(), word.end(),
              flat_ids.begin() + static_cast<size_t>(i * t_max));
  }

  Tensor embedded = char_embedding_->Forward(flat_ids);  // [N*T, char_dim]
  Tensor embedded3 =
      tensor::Reshape(embedded, Shape{n, t_max, config_.char_dim});

  std::vector<Tensor> pooled;
  pooled.reserve(filters_.size());
  for (size_t i = 0; i < filters_.size(); ++i) {
    const int64_t width = config_.filter_widths[i];
    const int64_t m = t_max - width + 1;  // windows per token at common T
    Tensor windows = tensor::UnfoldTimeBatch(embedded3, width);  // [N, M, w*D]
    Tensor conv = tensor::Relu(filters_[i]->Forward(
        tensor::Reshape(windows, Shape{n * m, width * config_.char_dim})));
    Tensor conv3 =
        tensor::Reshape(conv, Shape{n, m, config_.filters_per_width});
    // Windows past a token's own padded length exist only because other
    // tokens are longer; sink them far below any ReLU output so the ascending
    // max-over-time scan resolves to the same argmax as the per-word path.
    // Valid windows get an exact +0.0f (bitwise identity on ReLU outputs).
    std::vector<float> mask(static_cast<size_t>(n * m), 0.0f);
    bool any_invalid = false;
    for (int64_t tok = 0; tok < n; ++tok) {
      const int64_t own_t = std::max(
          static_cast<int64_t>(chars[static_cast<size_t>(tok)].size()),
          max_width_);
      for (int64_t w = own_t - width + 1; w < m; ++w) {
        mask[static_cast<size_t>(tok * m + w)] = -1e30f;
        any_invalid = true;
      }
    }
    Tensor masked = conv3;
    if (any_invalid) {
      masked = tensor::Add(
          conv3, Tensor::FromData(Shape{n, m, 1}, std::move(mask)));
    }
    pooled.push_back(tensor::MaxAxis(masked, 1, /*keepdim=*/false));  // [N, F]
  }
  return tensor::Concat(pooled, 1);  // [N, output_dim]
}

}  // namespace fewner::nn
