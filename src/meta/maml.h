// MAML baseline (Finn et al. 2017, paper §2.2): model-agnostic meta-learning
// over the full CNN-BiGRU-CRF backbone.  Unlike FEWNER there is no
// task-specific/ task-independent split — the inner loop updates the ENTIRE
// network, and the outer loop therefore needs second-order gradients with
// respect to every parameter (which is what makes MAML slower and more prone
// to few-shot overfitting; see the paper's Fig. 1 discussion).

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "util/rng.h"

namespace fewner::meta {

/// Full-network optimization-based meta-learner.
class Maml : public FewShotMethod {
 public:
  /// `config.conditioning` is forced to kNone (MAML has no context params).
  Maml(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "MAML"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  /// Inner loop over all parameters; returns θ' (Eq. 1).  With `create_graph`
  /// the adapted parameters remain differentiable w.r.t. the originals.
  std::vector<tensor::Tensor> InnerAdapt(
      const std::vector<models::EncodedSentence>& support,
      const std::vector<bool>& valid_tags, int64_t steps, float inner_lr,
      bool create_graph) const;

  /// Same inner loop against an explicit backbone — the form the
  /// episode-parallel trainer runs on per-worker replicas (the ParameterPatch
  /// slot swaps stay confined to that replica).
  static std::vector<tensor::Tensor> InnerAdaptOn(
      models::Backbone* net, const std::vector<models::EncodedSentence>& support,
      const std::vector<bool>& valid_tags, int64_t steps, float inner_lr,
      bool create_graph);

  models::Backbone* backbone() { return backbone_.get(); }

 private:
  std::unique_ptr<models::Backbone> backbone_;
  int64_t test_inner_steps_ = TrainConfig{}.inner_steps_test;
  float inner_lr_ = TrainConfig{}.inner_lr;
};

}  // namespace fewner::meta
