#include "meta/fewner.h"

#include <cmath>
#include <functional>
#include <utility>

#include "meta/adapted_tagger.h"
#include "meta/grad_accumulator.h"
#include "meta/parallel.h"

#include "tensor/autodiff.h"
#include "tensor/eval_mode.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

namespace {

/// The φ-descent loop (Eq. 5) shared by the cached and uncached paths; only
/// the support-loss forward differs between them.
Tensor DescendPhi(Tensor phi, int64_t steps, float inner_lr, bool create_graph,
                  const std::function<Tensor(const Tensor&)>& support_loss) {
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss = support_loss(phi);
    // Eq. 5: gradient w.r.t. the previous φ only — θ stays fixed here, but
    // with create_graph the inner gradient keeps its dependence on θ, which
    // is what the outer update differentiates through.
    Tensor grad = tensor::autodiff::Grad(loss, {phi}, create_graph)[0];
    // Detached global-norm cap (paper's clip of 5.0) keeps the summed task
    // loss from producing destabilizing inner steps.
    double norm_sq = 0.0;
    for (float v : grad.data()) norm_sq += static_cast<double>(v) * v;
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    const float clip_scale = norm > 5.0f ? 5.0f / norm : 1.0f;
    phi = tensor::Sub(phi, tensor::MulScalar(grad, inner_lr * clip_scale));
    if (!create_graph) {
      // Cheap test-time path: re-leaf φ so graphs do not accumulate.
      Tensor leaf = phi.Detach();
      leaf.set_requires_grad(true);
      phi = leaf;
    }
  }
  return phi;
}

}  // namespace

Fewner::Fewner(const models::BackboneConfig& config, util::Rng* rng)
    : rng_(rng->Fork(0xFE47ull)) {
  FEWNER_CHECK(config.conditioning != models::Conditioning::kNone,
               "FEWNER requires context-parameter conditioning");
  FEWNER_CHECK(config.context_dim > 0, "FEWNER requires context_dim > 0");
  util::Rng init_rng = rng->Fork(0x1417ull);
  backbone_ = std::make_unique<models::Backbone>(config, &init_rng);
}

Tensor Fewner::AdaptContext(const std::vector<models::EncodedSentence>& support,
                            const std::vector<bool>& valid_tags, int64_t steps,
                            float inner_lr, bool create_graph) const {
  return AdaptContextOn(*backbone_, support, valid_tags, steps, inner_lr,
                        create_graph);
}

Tensor Fewner::AdaptOnPrefix(const models::Backbone& net,
                             const models::CachedPrefix& prefix,
                             const std::vector<bool>& valid_tags, int64_t steps,
                             float inner_lr, bool create_graph, Tensor phi) {
  if (!phi.defined()) phi = net.ZeroContext();
  return DescendPhi(std::move(phi), steps, inner_lr, create_graph,
                    [&](const Tensor& p) {
                      return net.BatchLossFromPrefix(prefix, p, valid_tags);
                    });
}

Tensor Fewner::AdaptContextOn(const models::Backbone& net,
                              const std::vector<models::EncodedSentence>& support,
                              const std::vector<bool>& valid_tags, int64_t steps,
                              float inner_lr, bool create_graph) {
  // φ starts at zero for every task (paper §3.2.4), and the support set is
  // packed once for all steps.
  const models::EncodedBatch packed = models::PackBatch(support);
  Tensor phi = net.ZeroContext();
  if (steps <= 0) return phi;
  if (net.CanCachePrefix()) {
    // θ is constant within a task, so the dropout-free θ-head runs once and
    // every inner step pays only the φ-suffix.
    models::CachedPrefix prefix;
    if (create_graph) {
      // Meta-training: the prefix is one shared autodiff subgraph every
      // inner-step loss (and, through the φ chain, the query loss) hangs off;
      // Grad's deterministic fan-in sums their contributions at the shared
      // nodes, and the φ-gradients themselves never traverse it (needed-set
      // pruning stops where φ stops being reachable).
      prefix = net.EncodePrefix(packed);
    } else {
      // Test time: build the prefix graph-free on the workspace arena; the
      // escaped feature tensors pin their nodes for as long as the prefix
      // lives, so the graph-mode suffix may consume them as constants.
      tensor::EvalMode eval;
      prefix = net.EncodePrefix(packed);
    }
    return AdaptOnPrefix(net, prefix, valid_tags, steps, inner_lr, create_graph,
                         std::move(phi));
  }
  // Training-mode dropout: masks are keyed per (episode, call, lane) and
  // legitimately differ between steps, so each step re-runs the full forward.
  return DescendPhi(std::move(phi), steps, inner_lr, create_graph,
                    [&](const Tensor& p) {
                      return net.BatchLoss(packed, p, valid_tags);
                    });
}

void Fewner::Train(const data::EpisodeSampler& sampler,
                   const models::EpisodeEncoder& encoder, const TrainConfig& config) {
  test_inner_steps_ = config.inner_steps_test;
  inner_lr_ = config.inner_lr;
  backbone_->SetTraining(true);

  std::vector<tensor::Tensor*> slots = backbone_->Parameters();
  nn::Adam optimizer(slots, config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  int64_t tasks_seen = 0;

  ParallelMetaBatch batch = BackboneMetaBatch(config.num_threads, backbone_.get());
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          const uint64_t episode_id = base + static_cast<uint64_t>(t);
          models::EncodedEpisode enc =
              PrepareTrainingTask(sampler, encoder, config, episode_id, net);
          Tensor phi = AdaptContextOn(*net, enc.support, enc.valid_tags,
                                      config.inner_steps_train, config.inner_lr,
                                      /*create_graph=*/!config.first_order);
          // Eq. 6: meta-gradient through the inner updates (second order).
          // Each task backpropagates separately; summed gradients equal the
          // gradient of the summed loss, at a fraction of the peak memory.
          Tensor query_loss =
              net->BatchLoss(models::PackBatch(enc.query), phi, enc.valid_tags);
          *grads = tensor::autodiff::Grad(query_loss, replica_params);
          return query_loss.item();
        },
        &accumulator);
    tasks_seen += config.meta_batch;
    std::vector<Tensor> grads =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    if (tasks_seen / config.lr_decay_every !=
        (tasks_seen - config.meta_batch) / config.lr_decay_every) {
      optimizer.DecayLr(config.lr_decay);
    }
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " query loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> Fewner::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  // θ_Meta stays fixed; only φ adapts (Algorithm 1, adapting procedure).
  // The snapshot adapts in graph mode once, then decodes every query sentence
  // on the graph-free eval path.
  AdaptedTagger tagger(this, episode);
  return tagger.TagAll(episode.query);
}

}  // namespace fewner::meta
