// Episode-parallel meta-batch execution with a deterministic reduction.
//
// The outer loop of every meta-learning method here backpropagates each task
// of a meta-batch independently and sums the per-task gradients, so the batch
// is embarrassingly parallel.  ParallelMetaBatch runs each task's full
// pipeline (sample -> encode -> inner-loop adaptation -> outer backward) on a
// worker thread against a *replica* of the method's model, then reduces the
// per-task gradients into a GradAccumulator in ascending task order on the
// calling thread.
//
// Determinism contract: results are bit-identical for ANY thread count
// (including the inline 1-thread path) because
//   1. every task is a pure function of its episode id — the sampler is
//      stateless, and the replica's dropout stream is re-forked per task from
//      a base copied off the master (never from draw history);
//   2. replicas are value-synced from the master before every task, so which
//      worker runs a task cannot matter;
//   3. gradients accumulate into double buffers in fixed task order on one
//      thread (see GradAccumulator).
//
// Thread isolation: each worker owns its replica, so autodiff graphs — node
// allocation, ParameterPatch slot swaps, inner-loop create_graph chains —
// never share mutable state across threads.  The master's parameter values
// are read concurrently but only written by the caller after Run() returns.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/episode_sampler.h"
#include "meta/grad_accumulator.h"
#include "meta/method.h"
#include "models/backbone.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fewner::meta {

/// Runs meta-batch tasks on model replicas and reduces deterministically.
class ParallelMetaBatch {
 public:
  /// Builds one replica of the method's model (parameter values are
  /// overwritten by `sync` before use, so the factory's init values are moot).
  using ReplicaFactory = std::function<std::unique_ptr<nn::Module>()>;

  /// Makes `replica` equivalent to the master: parameter values, training
  /// mode, and any non-parameter state a task depends on (dropout base).
  /// Must update parameters IN PLACE (value copy into the existing leaves,
  /// as Module::CopyParametersFrom does), never replace slot tensors — the
  /// per-replica parameter snapshot handed to TaskFn is built once and must
  /// stay aliased to the replica's live parameters across syncs.
  using ReplicaSync = std::function<void(nn::Module* replica)>;

  /// Runs task `task` of the batch on `model` (the replica, already synced):
  /// fills `grads` with the task's detached gradient tensors in accumulator
  /// layout and returns the task's loss.  `params` is the replica's parameter
  /// snapshot (nn::ParameterTensors order), materialized once per replica so
  /// per-task lambdas need not rebuild it.
  using TaskFn = std::function<double(int64_t task, nn::Module* model,
                                      const std::vector<tensor::Tensor>& params,
                                      std::vector<tensor::Tensor>* grads)>;

  /// `num_threads` <= 0 resolves through ResolveThreadCount().
  ParallelMetaBatch(int64_t num_threads, ReplicaFactory factory, ReplicaSync sync);
  ~ParallelMetaBatch();

  ParallelMetaBatch(ParallelMetaBatch&&) = default;
  ParallelMetaBatch& operator=(ParallelMetaBatch&&) = delete;

  /// Executes tasks 0..num_tasks-1 and adds each task's gradients to
  /// `accumulator` in ascending task order.  Returns the sum of task losses
  /// (also reduced in task order).  `accumulator` may be null when the caller
  /// only needs the losses.
  double Run(int64_t num_tasks, const TaskFn& fn, GradAccumulator* accumulator);

  int64_t num_threads() const { return num_threads_; }

  /// `requested` > 0 is used as-is; otherwise the FEWNER_THREADS environment
  /// variable decides (see util::ThreadPool::DefaultThreadCount).
  static int64_t ResolveThreadCount(int64_t requested);

 private:
  nn::Module* Replica(int64_t i);

  int64_t num_threads_;
  ReplicaFactory factory_;
  ReplicaSync sync_;
  std::vector<std::unique_ptr<nn::Module>> replicas_;  ///< lazily built, one per worker
  /// replica_params_[i] snapshots replicas_[i]'s parameters once, at build
  /// time; valid forever because syncs copy values in place.
  std::vector<std::vector<tensor::Tensor>> replica_params_;
  std::unique_ptr<util::ThreadPool> pool_;             ///< null when single-threaded
};

/// ParallelMetaBatch over plain Backbone replicas of `master` — the common
/// case for fewner/maml/protonet/matching_net/reptile/finetune.
ParallelMetaBatch BackboneMetaBatch(int64_t num_threads, models::Backbone* master);

/// Per-task preamble shared by every method: samples episode `episode_id`,
/// applies the training bounds, encodes it, and re-forks `net`'s dropout
/// stream for the task (`net` may be null for dropout-free models).  Checks
/// the episode is non-degenerate.
models::EncodedEpisode PrepareTrainingTask(const data::EpisodeSampler& sampler,
                                           const models::EpisodeEncoder& encoder,
                                           const TrainConfig& config,
                                           uint64_t episode_id,
                                           models::Backbone* net);

}  // namespace fewner::meta
