// SNAIL baseline (Mishra et al. 2018, paper §4.1.2): a meta-learner combining
// temporal convolutions (to aggregate experience) with attention (to pinpoint
// specific pieces of it).
//
// Adaptation to sequence labeling (documented simplification, see DESIGN.md):
// token features from the shared CNN-BiGRU encoder are enriched with a stack
// of dilated causal convolutions (the TC blocks); each query token then
// attends over ALL support tokens, whose values are their BIO label one-hots.
// The attention read-out is a label distribution; training maximizes the gold
// label's log-probability.  Like ProtoNet there is no gradient-based
// adaptation at test time — the "fast weights" are the attention reads.

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "nn/attention.h"
#include "util/rng.h"

namespace fewner::meta {

/// TC-plus-attention meta-learner.
class Snail : public FewShotMethod {
 public:
  Snail(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "SNAIL"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  /// Encoder backbone + TC blocks + attention projections, as one module so
  /// the optimizer sees every parameter.
  class Model : public nn::Module {
   public:
    Model(const models::BackboneConfig& config, util::Rng* rng);

    std::unique_ptr<models::Backbone> backbone;
    std::unique_ptr<nn::DilatedCausalConv> tc1;
    std::unique_ptr<nn::DilatedCausalConv> tc2;
    std::unique_ptr<nn::Linear> key_proj;
    std::unique_ptr<nn::Linear> query_proj;
    /// Final classifier over [token features ; attention label read-out] — the
    /// SNAIL output layer that can re-weight the read against class priors.
    std::unique_ptr<nn::Linear> classifier;
    int64_t tc_dim = 0;
    int64_t attn_dim = 0;
  };

  Model* model() { return model_.get(); }

 private:
  // The forward helpers take the model explicitly so the episode-parallel
  // trainer can run them against per-worker replicas.

  /// Encoder features + TC enrichment for one sentence: [L, tc_dim].
  static tensor::Tensor Enrich(const Model& m,
                               const models::EncodedSentence& sentence);

  /// Per-token log label distribution [L, max_tags] for a query sentence given
  /// stacked support keys and their label one-hots.
  static tensor::Tensor QueryLogProbs(const Model& m,
                                      const models::EncodedSentence& sentence,
                                      const tensor::Tensor& support_keys,
                                      const tensor::Tensor& support_labels,
                                      const std::vector<bool>& valid_tags);

  /// Builds (keys [T, attn_dim], labels [T, max_tags]) from the support set.
  static void BuildSupport(const Model& m,
                           const std::vector<models::EncodedSentence>& support,
                           tensor::Tensor* keys, tensor::Tensor* labels);

  static tensor::Tensor EpisodeLoss(const Model& m,
                                    const models::EncodedEpisode& episode);

  std::unique_ptr<Model> model_;
};

}  // namespace fewner::meta
