#include "meta/parallel.h"

#include <atomic>

#include "tensor/intraop.h"
#include "util/rng.h"
#include "util/status.h"

namespace fewner::meta {

ParallelMetaBatch::ParallelMetaBatch(int64_t num_threads, ReplicaFactory factory,
                                     ReplicaSync sync)
    : num_threads_(ResolveThreadCount(num_threads)),
      factory_(std::move(factory)),
      sync_(std::move(sync)) {
  FEWNER_CHECK(factory_ != nullptr && sync_ != nullptr,
               "ParallelMetaBatch needs a replica factory and sync");
  if (num_threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(num_threads_);
  }
}

ParallelMetaBatch::~ParallelMetaBatch() = default;

int64_t ParallelMetaBatch::ResolveThreadCount(int64_t requested) {
  if (requested > 0) return requested;
  return util::ThreadPool::DefaultThreadCount();
}

nn::Module* ParallelMetaBatch::Replica(int64_t i) {
  while (static_cast<int64_t>(replicas_.size()) <= i) {
    replicas_.push_back(factory_());
    FEWNER_CHECK(replicas_.back() != nullptr, "replica factory returned null");
    // Snapshot the parameter handles once per replica.  The sync contract
    // (value copies into existing leaves) keeps these aliased to the live
    // parameters, so tasks never pay the per-episode tree walk again.
    replica_params_.push_back(nn::ParameterTensors(replicas_.back().get()));
  }
  return replicas_[static_cast<size_t>(i)].get();
}

double ParallelMetaBatch::Run(int64_t num_tasks, const TaskFn& fn,
                              GradAccumulator* accumulator) {
  FEWNER_CHECK(num_tasks > 0, "ParallelMetaBatch::Run with no tasks");
  struct TaskResult {
    std::vector<tensor::Tensor> grads;
    double loss = 0.0;
  };
  std::vector<TaskResult> results(static_cast<size_t>(num_tasks));

  const int64_t workers = std::min(num_threads_, num_tasks);
  if (workers <= 1 || pool_ == nullptr) {
    nn::Module* replica = Replica(0);
    const std::vector<tensor::Tensor>& params = replica_params_[0];
    for (int64_t t = 0; t < num_tasks; ++t) {
      sync_(replica);
      results[static_cast<size_t>(t)].loss =
          fn(t, replica, params, &results[static_cast<size_t>(t)].grads);
    }
  } else {
    // Replicas are created on the calling thread; workers claim task indices
    // from a shared counter so an uneven task-cost mix still load-balances.
    for (int64_t w = 0; w < workers; ++w) Replica(w);
    std::atomic<int64_t> next{0};
    for (int64_t w = 0; w < workers; ++w) {
      nn::Module* replica = Replica(w);
      const std::vector<tensor::Tensor>* params = &replica_params_[static_cast<size_t>(w)];
      pool_->Submit([&, replica, params] {
        // Episode workers own the cores at the coarse grain; letting each one
        // also shard its GEMMs would oversubscribe.  Pin intra-op to serial
        // for this worker's tasks (bitwise-neutral either way — see
        // tensor/intraop.h).  The serial fallback path above leaves the
        // ambient budget alone, so single-worker runs still shard inside ops.
        const tensor::ParallelismBudget serial_gemms(1);
        for (;;) {
          const int64_t t = next.fetch_add(1, std::memory_order_relaxed);
          if (t >= num_tasks) return;
          // Re-sync before every task: a replica's parameters may have been
          // mutated by the previous task it ran (e.g. Reptile's inner SGD).
          sync_(replica);
          results[static_cast<size_t>(t)].loss =
              fn(t, replica, *params, &results[static_cast<size_t>(t)].grads);
        }
      });
    }
    pool_->Wait();
  }

  // Deterministic reduction: ascending task order, single thread.
  double loss_sum = 0.0;
  for (int64_t t = 0; t < num_tasks; ++t) {
    TaskResult& result = results[static_cast<size_t>(t)];
    if (accumulator != nullptr) accumulator->Add(result.grads);
    loss_sum += result.loss;
  }
  return loss_sum;
}

ParallelMetaBatch BackboneMetaBatch(int64_t num_threads, models::Backbone* master) {
  FEWNER_CHECK(master != nullptr, "BackboneMetaBatch needs a master backbone");
  auto factory = [master]() -> std::unique_ptr<nn::Module> {
    // The init draws are discarded by the first sync; any seed works.
    util::Rng init_rng(0x5EED5EED5EED5EEDull);
    return std::make_unique<models::Backbone>(master->config(), &init_rng);
  };
  auto sync = [master](nn::Module* replica) {
    auto* net = static_cast<models::Backbone*>(replica);
    net->CopyParametersFrom(master);
    net->SetTraining(master->training());
    net->set_dropout_base(master->dropout_base());
  };
  return ParallelMetaBatch(num_threads, std::move(factory), std::move(sync));
}

models::EncodedEpisode PrepareTrainingTask(const data::EpisodeSampler& sampler,
                                           const models::EpisodeEncoder& encoder,
                                           const TrainConfig& config,
                                           uint64_t episode_id,
                                           models::Backbone* net) {
  data::Episode episode = sampler.Sample(episode_id);
  BoundTrainingEpisode(config, &episode);
  FEWNER_CHECK(!episode.support.empty() && !episode.query.empty(),
               "degenerate training episode " << episode_id);
  models::EncodedEpisode enc = encoder.Encode(episode);
  if (net != nullptr) net->ReseedDropout(episode_id);
  return enc;
}

}  // namespace fewner::meta
