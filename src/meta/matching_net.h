// Matching Network baseline (Vinyals et al. 2016, the paper's reference [50]
// that defined the N-way K-shot setting): metric-based few-shot classification
// at the token level.  A query token's label distribution is the
// cosine-similarity-weighted vote over ALL support tokens' labels — unlike
// ProtoNet there is no class averaging, and unlike SNAIL no temporal
// convolution or learned read-out.  An extension beyond the paper's baseline
// set (see bench/extension_methods).

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "util/rng.h"

namespace fewner::meta {

/// Token-level matching network.
class MatchingNet : public FewShotMethod {
 public:
  MatchingNet(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "MatchingNet"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  models::Backbone* backbone() { return backbone_.get(); }

 private:
  // The forward helpers take the backbone explicitly so the episode-parallel
  // trainer can run them against per-worker replicas.

  /// L2-normalized encoder features for one sentence, [L, D].
  static tensor::Tensor NormalizedFeatures(const models::Backbone& net,
                                           const models::EncodedSentence& sentence);

  /// Log label distribution [L, max_tags] for a query sentence.
  tensor::Tensor QueryLogProbs(const models::Backbone& net,
                               const models::EncodedSentence& sentence,
                               const tensor::Tensor& support_features,
                               const tensor::Tensor& support_labels) const;

  tensor::Tensor EpisodeLoss(const models::Backbone& net,
                             const models::EncodedEpisode& episode) const;

  std::unique_ptr<models::Backbone> backbone_;
  float temperature_ = 10.0f;  ///< sharpness of the cosine attention
};

}  // namespace fewner::meta
