#include "meta/lm_tagger.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

LmCrfTagger::Head::Head(int64_t feature_dim, int64_t max_tags, util::Rng* rng) {
  emission = std::make_unique<nn::Linear>(feature_dim, max_tags, rng);
  crf = std::make_unique<crf::LinearChainCrf>(max_tags);
  RegisterModule("emission", emission.get());
  RegisterModule("crf", crf.get());
}

LmCrfTagger::LmCrfTagger(std::shared_ptr<models::PretrainedLmEncoder> encoder,
                         int64_t max_tags, util::Rng* rng)
    : encoder_(std::move(encoder)),
      head_(encoder_->feature_dim(), max_tags, rng) {}

Tensor LmCrfTagger::Features(const models::EncodedSentence& sentence) {
  FEWNER_CHECK(sentence.source != nullptr, "LM features need the source sentence");
  auto it = feature_cache_.find(sentence.source);
  if (it != feature_cache_.end()) return it->second;
  // Detach(): the LM stays frozen; only the head sees gradients.
  Tensor features = encoder_->Encode(sentence).Detach();
  feature_cache_.emplace(sentence.source, features);
  return features;
}

Tensor LmCrfTagger::BatchLoss(const std::vector<models::EncodedSentence>& sentences,
                              const std::vector<bool>& valid_tags) {
  Tensor total;
  for (const auto& sentence : sentences) {
    Tensor emissions = head_.emission->Forward(Features(sentence));
    Tensor loss = head_.crf->NegLogLikelihood(emissions, sentence.tags, &valid_tags);
    total = total.defined() ? tensor::Add(total, loss) : loss;
  }
  return tensor::MulScalar(total, 1.0f / static_cast<float>(sentences.size()));
}

void LmCrfTagger::Train(const data::EpisodeSampler& sampler,
                        const models::EpisodeEncoder& encoder,
                        const TrainConfig& config) {
  test_steps_ = config.inner_steps_test;
  finetune_lr_ = config.inner_lr;
  nn::Adam optimizer(head_.Parameters(), config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  uint64_t episode_id = 0;
  const int64_t updates = config.iterations * config.meta_batch;
  for (int64_t step = 0; step < updates; ++step) {
    data::Episode episode = sampler.Sample(episode_id++);
    BoundTrainingEpisode(config, &episode);
    models::EncodedEpisode enc = encoder.Encode(episode);
    Tensor loss = BatchLoss(enc.support, enc.valid_tags);
    std::vector<Tensor> grads =
        tensor::autodiff::Grad(loss, nn::ParameterTensors(&head_));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    if (config.verbose && step % 50 == 0) {
      FEWNER_LOG(INFO) << name() << " step " << step << " loss " << loss.item();
    }
  }
}

std::vector<std::vector<int64_t>> LmCrfTagger::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  // Fine-tune only the CRF stack on the support set; restore afterwards.
  std::vector<std::vector<float>> snapshot = nn::SnapshotParameterValues(&head_);
  nn::Sgd sgd(head_.Parameters(), finetune_lr_);
  for (int64_t step = 0; step < test_steps_; ++step) {
    Tensor loss = BatchLoss(episode.support, episode.valid_tags);
    std::vector<Tensor> grads =
        tensor::autodiff::Grad(loss, nn::ParameterTensors(&head_));
    nn::ClipGradNorm(&grads, 5.0f);
    sgd.Step(grads);
  }
  std::vector<std::vector<int64_t>> predictions;
  predictions.reserve(episode.query.size());
  for (const auto& sentence : episode.query) {
    Tensor emissions = head_.emission->Forward(Features(sentence)).Detach();
    predictions.push_back(head_.crf->Viterbi(emissions, &episode.valid_tags));
  }
  nn::RestoreParameterValues(&head_, snapshot);
  return predictions;
}

}  // namespace fewner::meta
