#include "meta/protonet.h"

#include "meta/grad_accumulator.h"
#include "meta/parallel.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Shape;
using tensor::Tensor;

ProtoNet::ProtoNet(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  util::Rng init_rng = rng->Fork(0x9207ull);
  backbone_ = std::make_unique<models::Backbone>(plain, &init_rng);
}

Tensor ProtoNet::BuildPrototypes(const models::Backbone& net,
                                 const std::vector<models::EncodedSentence>& support,
                                 std::vector<bool>* class_present) {
  const int64_t num_classes = net.config().max_tags;
  std::vector<Tensor> features;
  std::vector<int64_t> tags;
  for (const auto& sentence : support) {
    features.push_back(net.Encode(sentence, Tensor()));
    tags.insert(tags.end(), sentence.tags.begin(), sentence.tags.end());
  }
  Tensor all = tensor::Concat(features, 0);  // [T, D]
  const int64_t total = all.shape().dim(0);

  std::vector<int64_t> counts(static_cast<size_t>(num_classes), 0);
  for (int64_t tag : tags) ++counts[static_cast<size_t>(tag)];
  class_present->assign(static_cast<size_t>(num_classes), false);

  // Averaging matrix M [C, T]: row c has 1/count_c at the positions of class c
  // — a constant, so prototypes stay differentiable w.r.t. the encoder.
  std::vector<float> m(static_cast<size_t>(num_classes * total), 0.0f);
  for (int64_t t = 0; t < total; ++t) {
    const int64_t c = tags[static_cast<size_t>(t)];
    (*class_present)[static_cast<size_t>(c)] = true;
    m[static_cast<size_t>(c * total + t)] =
        1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
  }
  return tensor::MatMul(Tensor::FromData(Shape{num_classes, total}, std::move(m)),
                        all);  // [C, D]
}

Tensor ProtoNet::TokenLogits(const models::Backbone& net,
                             const models::EncodedSentence& sentence,
                             const Tensor& prototypes,
                             const std::vector<bool>& class_present) {
  const int64_t num_classes = net.config().max_tags;
  Tensor q = net.Encode(sentence, Tensor());  // [L, D]
  // -||q - p||^2 = -(||q||^2 - 2 q·p + ||p||^2)
  Tensor q_sq = tensor::SumAxis(tensor::Square(q), 1, /*keepdim=*/true);  // [L, 1]
  Tensor p_sq = tensor::Reshape(
      tensor::SumAxis(tensor::Square(prototypes), 1, /*keepdim=*/false),
      Shape{1, num_classes});                                             // [1, C]
  Tensor cross = tensor::MatMulNT(q, prototypes);                         // [L, C]
  Tensor logits = tensor::Neg(
      tensor::Add(tensor::Sub(q_sq, tensor::MulScalar(cross, 2.0f)), p_sq));
  // Classes absent from the support set cannot be predicted.
  std::vector<float> mask(static_cast<size_t>(num_classes), 0.0f);
  for (int64_t c = 0; c < num_classes; ++c) {
    if (!class_present[static_cast<size_t>(c)]) mask[static_cast<size_t>(c)] = -1e7f;
  }
  return tensor::Add(logits, Tensor::FromData(Shape{num_classes}, std::move(mask)));
}

Tensor ProtoNet::EpisodeLoss(const models::Backbone& net,
                             const models::EncodedEpisode& episode) {
  std::vector<bool> class_present;
  Tensor prototypes = BuildPrototypes(net, episode.support, &class_present);
  const int64_t num_classes = net.config().max_tags;

  Tensor total;
  int64_t tokens = 0;
  for (const auto& sentence : episode.query) {
    Tensor logp = tensor::LogSoftmaxLastDim(
        TokenLogits(net, sentence, prototypes, class_present));
    // Select gold log-probs; skip tokens whose gold class has no prototype.
    const int64_t length = sentence.length();
    std::vector<float> select(static_cast<size_t>(length * num_classes), 0.0f);
    int64_t used = 0;
    for (int64_t t = 0; t < length; ++t) {
      const int64_t gold = sentence.tags[static_cast<size_t>(t)];
      if (!class_present[static_cast<size_t>(gold)]) continue;
      select[static_cast<size_t>(t * num_classes + gold)] = 1.0f;
      ++used;
    }
    if (used == 0) continue;
    Tensor gold_sum = tensor::SumAll(tensor::Mul(
        logp, Tensor::FromData(Shape{length, num_classes}, std::move(select))));
    Tensor loss = tensor::MulScalar(tensor::Neg(gold_sum), 1.0f);
    total = total.defined() ? tensor::Add(total, loss) : loss;
    tokens += used;
  }
  FEWNER_CHECK(total.defined(), "episode with no usable query tokens");
  return tensor::MulScalar(total, 1.0f / static_cast<float>(tokens));
}

void ProtoNet::Train(const data::EpisodeSampler& sampler,
                     const models::EpisodeEncoder& encoder,
                     const TrainConfig& config) {
  backbone_->SetTraining(true);
  nn::Adam optimizer(backbone_->Parameters(), config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  ParallelMetaBatch batch = BackboneMetaBatch(config.num_threads, backbone_.get());
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          models::EncodedEpisode enc = PrepareTrainingTask(
              sampler, encoder, config, base + static_cast<uint64_t>(t), net);
          Tensor loss = EpisodeLoss(*net, enc);
          *grads = tensor::autodiff::Grad(loss, replica_params);
          return loss.item();
        },
        &accumulator);
    std::vector<Tensor> grads =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> ProtoNet::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  std::vector<bool> class_present;
  Tensor prototypes = BuildPrototypes(*backbone_, episode.support, &class_present);
  std::vector<std::vector<int64_t>> predictions;
  predictions.reserve(episode.query.size());
  for (const auto& sentence : episode.query) {
    Tensor logits = TokenLogits(*backbone_, sentence, prototypes, class_present);
    const int64_t length = sentence.length();
    const int64_t num_classes = backbone_->config().max_tags;
    std::vector<int64_t> tags(static_cast<size_t>(length));
    const auto& values = logits.data();
    for (int64_t t = 0; t < length; ++t) {
      int64_t best = 0;
      float best_v = values[static_cast<size_t>(t * num_classes)];
      for (int64_t c = 1; c < num_classes; ++c) {
        const float v = values[static_cast<size_t>(t * num_classes + c)];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      tags[static_cast<size_t>(t)] = best;
    }
    predictions.push_back(std::move(tags));
  }
  return predictions;
}

}  // namespace fewner::meta
