// FineTune baseline (paper §4.1.2): the CNN-BiGRU-CRF backbone trained
// conventionally on the support sets of training tasks, with no adaptation
// strategy beyond plain fine-tuning on a test task's support set.  This is the
// floor every meta-learning method is compared against.

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "util/rng.h"

namespace fewner::meta {

/// Conventional train-then-fine-tune baseline.
class FineTune : public FewShotMethod {
 public:
  FineTune(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "FineTune"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  models::Backbone* backbone() { return backbone_.get(); }

 private:
  std::unique_ptr<models::Backbone> backbone_;
  int64_t test_steps_ = TrainConfig{}.inner_steps_test;
  float finetune_lr_ = TrainConfig{}.inner_lr;
};

}  // namespace fewner::meta
