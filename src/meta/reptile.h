// Reptile (Nichol et al. 2018): a first-order optimization-based meta-learner
// from the same family as MAML (paper §2.2's optimization-based category).
// Instead of differentiating through the inner loop, Reptile runs a few SGD
// steps on a task and moves the initialization toward the adapted weights.
// This implementation uses the batched variant from the same paper:
//   θ ← θ + ε · mean_task(θ'_task − θ),
// which makes the per-task work independent (episode-parallelizable) and the
// update a deterministic reduction over task deltas.
// Implemented as an extension beyond the paper's baseline set (see
// bench/extension_methods) — it brackets MAML from the cheap side the way
// FEWNER brackets it from the structured side.

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "util/rng.h"

namespace fewner::meta {

/// First-order initialization-learning baseline.
class Reptile : public FewShotMethod {
 public:
  Reptile(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "Reptile"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  models::Backbone* backbone() { return backbone_.get(); }

 private:
  /// Runs `steps` SGD steps on the support loss against `net`'s parameters in
  /// place (caller snapshots/restores as needed); returns the last step's loss.
  static double SgdOnSupport(models::Backbone* net,
                             const std::vector<models::EncodedSentence>& support,
                             const std::vector<bool>& valid_tags, int64_t steps,
                             float lr);

  std::unique_ptr<models::Backbone> backbone_;
  int64_t test_steps_ = TrainConfig{}.inner_steps_test;
  float inner_lr_ = TrainConfig{}.inner_lr;
};

}  // namespace fewner::meta
