#include "meta/matching_net.h"

#include "meta/grad_accumulator.h"
#include "meta/parallel.h"
#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Shape;
using tensor::Tensor;

MatchingNet::MatchingNet(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  util::Rng init_rng = rng->Fork(0x3A7Cull);
  backbone_ = std::make_unique<models::Backbone>(plain, &init_rng);
}

Tensor MatchingNet::NormalizedFeatures(const models::Backbone& net,
                                       const models::EncodedSentence& sentence) {
  Tensor features = net.Encode(sentence, Tensor());  // [L, D]
  Tensor norm = tensor::Sqrt(tensor::AddScalar(
      tensor::SumAxis(tensor::Square(features), 1, /*keepdim=*/true), 1e-8f));
  return tensor::Div(features, norm);
}

Tensor MatchingNet::QueryLogProbs(const models::Backbone& net,
                                  const models::EncodedSentence& sentence,
                                  const Tensor& support_features,
                                  const Tensor& support_labels) const {
  Tensor queries = NormalizedFeatures(net, sentence);  // [L, D]
  Tensor cosine = tensor::MatMulNT(queries, support_features);  // [L, S·L]
  Tensor attention = tensor::SoftmaxLastDim(tensor::MulScalar(cosine, temperature_));
  Tensor votes = tensor::MatMul(attention, support_labels);  // rows sum to 1
  return tensor::Log(tensor::AddScalar(votes, 1e-6f));
}

Tensor MatchingNet::EpisodeLoss(const models::Backbone& net,
                                const models::EncodedEpisode& episode) const {
  const int64_t num_classes = net.config().max_tags;
  std::vector<Tensor> feature_blocks;
  std::vector<int64_t> tags;
  for (const auto& sentence : episode.support) {
    feature_blocks.push_back(NormalizedFeatures(net, sentence));
    tags.insert(tags.end(), sentence.tags.begin(), sentence.tags.end());
  }
  Tensor support_features = tensor::Concat(feature_blocks, 0);
  const int64_t total = support_features.shape().dim(0);
  std::vector<float> onehot(static_cast<size_t>(total * num_classes), 0.0f);
  for (int64_t t = 0; t < total; ++t) {
    onehot[static_cast<size_t>(t * num_classes + tags[static_cast<size_t>(t)])] =
        1.0f;
  }
  Tensor support_labels =
      Tensor::FromData(Shape{total, num_classes}, std::move(onehot));

  Tensor loss_total;
  int64_t tokens = 0;
  for (const auto& sentence : episode.query) {
    Tensor logp = QueryLogProbs(net, sentence, support_features, support_labels);
    const int64_t length = sentence.length();
    std::vector<float> select(static_cast<size_t>(length * num_classes), 0.0f);
    for (int64_t t = 0; t < length; ++t) {
      select[static_cast<size_t>(t * num_classes +
                                 sentence.tags[static_cast<size_t>(t)])] = 1.0f;
    }
    Tensor gold = tensor::SumAll(tensor::Mul(
        logp, Tensor::FromData(Shape{length, num_classes}, std::move(select))));
    Tensor loss = tensor::Neg(gold);
    loss_total = loss_total.defined() ? tensor::Add(loss_total, loss) : loss;
    tokens += length;
  }
  FEWNER_CHECK(loss_total.defined(), "MatchingNet episode without query tokens");
  return tensor::MulScalar(loss_total, 1.0f / static_cast<float>(tokens));
}

void MatchingNet::Train(const data::EpisodeSampler& sampler,
                        const models::EpisodeEncoder& encoder,
                        const TrainConfig& config) {
  backbone_->SetTraining(true);
  nn::Adam optimizer(backbone_->Parameters(), config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  ParallelMetaBatch batch = BackboneMetaBatch(config.num_threads, backbone_.get());
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          models::EncodedEpisode enc = PrepareTrainingTask(
              sampler, encoder, config, base + static_cast<uint64_t>(t), net);
          Tensor loss = EpisodeLoss(*net, enc);
          *grads = tensor::autodiff::Grad(loss, replica_params);
          return loss.item();
        },
        &accumulator);
    std::vector<Tensor> grads =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> MatchingNet::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  const int64_t num_classes = backbone_->config().max_tags;
  std::vector<Tensor> feature_blocks;
  std::vector<int64_t> tags;
  for (const auto& sentence : episode.support) {
    feature_blocks.push_back(NormalizedFeatures(*backbone_, sentence));
    tags.insert(tags.end(), sentence.tags.begin(), sentence.tags.end());
  }
  Tensor support_features = tensor::Concat(feature_blocks, 0);
  const int64_t total = support_features.shape().dim(0);
  std::vector<float> onehot(static_cast<size_t>(total * num_classes), 0.0f);
  for (int64_t t = 0; t < total; ++t) {
    onehot[static_cast<size_t>(t * num_classes + tags[static_cast<size_t>(t)])] =
        1.0f;
  }
  Tensor support_labels =
      Tensor::FromData(Shape{total, num_classes}, std::move(onehot));

  std::vector<std::vector<int64_t>> predictions;
  predictions.reserve(episode.query.size());
  for (const auto& sentence : episode.query) {
    Tensor logp =
        QueryLogProbs(*backbone_, sentence, support_features, support_labels);
    const auto& values = logp.data();
    const int64_t length = sentence.length();
    std::vector<int64_t> best_tags(static_cast<size_t>(length));
    for (int64_t t = 0; t < length; ++t) {
      int64_t best = 0;
      float best_v = values[static_cast<size_t>(t * num_classes)];
      for (int64_t c = 1; c < num_classes; ++c) {
        const float v = values[static_cast<size_t>(t * num_classes + c)];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      best_tags[static_cast<size_t>(t)] = best;
    }
    predictions.push_back(std::move(best_tags));
  }
  return predictions;
}

}  // namespace fewner::meta
