#include "meta/reptile.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

Reptile::Reptile(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  util::Rng init_rng = rng->Fork(0x4E97ull);
  backbone_ = std::make_unique<models::Backbone>(plain, &init_rng);
}

void Reptile::SgdOnSupport(const std::vector<models::EncodedSentence>& support,
                           const std::vector<bool>& valid_tags, int64_t steps,
                           float lr) {
  nn::Sgd sgd(backbone_->Parameters(), lr);
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss = backbone_->BatchLoss(support, Tensor(), valid_tags);
    std::vector<Tensor> grads =
        tensor::autodiff::Grad(loss, nn::ParameterTensors(backbone_.get()));
    nn::ClipGradNorm(&grads, 5.0f);
    sgd.Step(grads);
  }
}

void Reptile::Train(const data::EpisodeSampler& sampler,
                    const models::EpisodeEncoder& encoder,
                    const TrainConfig& config) {
  test_steps_ = config.inner_steps_test;
  inner_lr_ = config.inner_lr;
  backbone_->SetTraining(true);
  // ε: the meta step toward adapted weights.  Reuses meta_lr scaled up since
  // Reptile's update is a convex interpolation, not an Adam-preconditioned one.
  const float epsilon = config.meta_lr * 25.0f;
  uint64_t episode_id = 0;
  const int64_t tasks = config.iterations * config.meta_batch;
  for (int64_t task = 0; task < tasks; ++task) {
    data::Episode episode = sampler.Sample(episode_id++);
    BoundTrainingEpisode(config, &episode);
    models::EncodedEpisode enc = encoder.Encode(episode);

    std::vector<std::vector<float>> before =
        nn::SnapshotParameterValues(backbone_.get());
    SgdOnSupport(enc.support, enc.valid_tags, config.inner_steps_train,
                 config.inner_lr);
    // θ ← θ + ε (θ' − θ)
    auto slots = backbone_->Parameters();
    for (size_t i = 0; i < slots.size(); ++i) {
      std::vector<float>* values = slots[i]->mutable_data();
      for (size_t j = 0; j < values->size(); ++j) {
        const float adapted = (*values)[j];
        (*values)[j] = before[i][j] + epsilon * (adapted - before[i][j]);
      }
    }
    if (config.verbose && task % 50 == 0) {
      FEWNER_LOG(INFO) << name() << " task " << task;
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> Reptile::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  std::vector<std::vector<float>> snapshot =
      nn::SnapshotParameterValues(backbone_.get());
  SgdOnSupport(episode.support, episode.valid_tags, test_steps_, inner_lr_);
  std::vector<std::vector<int64_t>> predictions;
  predictions.reserve(episode.query.size());
  for (const auto& sentence : episode.query) {
    predictions.push_back(backbone_->Decode(sentence, Tensor(), episode.valid_tags));
  }
  nn::RestoreParameterValues(backbone_.get(), snapshot);
  return predictions;
}

}  // namespace fewner::meta
