#include "meta/reptile.h"

#include "meta/grad_accumulator.h"
#include "meta/parallel.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

Reptile::Reptile(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  util::Rng init_rng = rng->Fork(0x4E97ull);
  backbone_ = std::make_unique<models::Backbone>(plain, &init_rng);
}

double Reptile::SgdOnSupport(models::Backbone* net,
                             const std::vector<models::EncodedSentence>& support,
                             const std::vector<bool>& valid_tags, int64_t steps,
                             float lr) {
  nn::Sgd sgd(net->Parameters(), lr);
  double last_loss = 0.0;
  // Packed once; every SGD step runs the batch-first forward.  The parameter
  // snapshot is likewise loop-invariant: Sgd::Step writes values in place, so
  // the handles keep aliasing the live leaves across steps.
  const models::EncodedBatch packed = models::PackBatch(support);
  const std::vector<Tensor> net_params = nn::ParameterTensors(net);
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss = net->BatchLoss(packed, Tensor(), valid_tags);
    std::vector<Tensor> grads = tensor::autodiff::Grad(loss, net_params);
    nn::ClipGradNorm(&grads, 5.0f);
    sgd.Step(grads);
    last_loss = loss.item();
  }
  return last_loss;
}

void Reptile::Train(const data::EpisodeSampler& sampler,
                    const models::EpisodeEncoder& encoder,
                    const TrainConfig& config) {
  test_steps_ = config.inner_steps_test;
  inner_lr_ = config.inner_lr;
  backbone_->SetTraining(true);
  // ε: the meta step toward adapted weights.  Reuses meta_lr scaled up since
  // Reptile's update is a convex interpolation, not an Adam-preconditioned one.
  const float epsilon = config.meta_lr * 25.0f;
  ParallelMetaBatch batch = BackboneMetaBatch(config.num_threads, backbone_.get());
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          models::EncodedEpisode enc = PrepareTrainingTask(
              sampler, encoder, config, base + static_cast<uint64_t>(t), net);
          const double loss = SgdOnSupport(net, enc.support, enc.valid_tags,
                                           config.inner_steps_train,
                                           config.inner_lr);
          // The task's contribution is its parameter delta θ'_task − θ,
          // reduced like a (pseudo-)gradient.  The inner SGD mutated the
          // replica's leaves in place, so `replica_params` now reads the
          // adapted values while `params` still holds the master's θ.
          const std::vector<Tensor>& adapted = replica_params;
          grads->reserve(adapted.size());
          for (size_t i = 0; i < adapted.size(); ++i) {
            const auto& a = adapted[i].data();
            const auto& b = params[i].data();
            std::vector<float> delta(a.size());
            for (size_t j = 0; j < a.size(); ++j) delta[j] = a[j] - b[j];
            grads->push_back(
                Tensor::FromData(adapted[i].shape(), std::move(delta)));
          }
          return loss;
        },
        &accumulator);
    // Batched Reptile step: θ ← θ + ε · mean_task(θ'_task − θ).
    std::vector<Tensor> deltas =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    std::vector<Tensor*> slots = backbone_->Parameters();
    for (size_t i = 0; i < slots.size(); ++i) {
      std::vector<float>* values = slots[i]->mutable_data();
      const auto& d = deltas[i].data();
      for (size_t j = 0; j < values->size(); ++j) {
        (*values)[j] += epsilon * d[j];
      }
    }
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " support loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> Reptile::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  std::vector<std::vector<float>> snapshot =
      nn::SnapshotParameterValues(backbone_.get());
  SgdOnSupport(backbone_.get(), episode.support, episode.valid_tags, test_steps_,
               inner_lr_);
  std::vector<std::vector<int64_t>> predictions;
  if (!episode.query.empty()) {
    predictions = backbone_->DecodeBatch(models::PackBatch(episode.query),
                                         Tensor(), episode.valid_tags);
  }
  nn::RestoreParameterValues(backbone_.get(), snapshot);
  return predictions;
}

}  // namespace fewner::meta
