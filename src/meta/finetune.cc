#include "meta/finetune.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

FineTune::FineTune(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  util::Rng init_rng = rng->Fork(0xF17Eull);
  backbone_ = std::make_unique<models::Backbone>(plain, &init_rng);
}

void FineTune::Train(const data::EpisodeSampler& sampler,
                     const models::EpisodeEncoder& encoder,
                     const TrainConfig& config) {
  test_steps_ = config.inner_steps_test;
  finetune_lr_ = config.inner_lr;
  backbone_->SetTraining(true);
  nn::Adam optimizer(backbone_->Parameters(), config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  uint64_t episode_id = 0;
  // Conventional supervised training: each training task's support set is one
  // mini-batch; no inner/outer split, no query usage.
  const int64_t updates = config.iterations * config.meta_batch;
  for (int64_t step = 0; step < updates; ++step) {
    data::Episode episode = sampler.Sample(episode_id++);
    BoundTrainingEpisode(config, &episode);
    models::EncodedEpisode enc = encoder.Encode(episode);
    Tensor loss = backbone_->BatchLoss(enc.support, Tensor(), enc.valid_tags);
    std::vector<Tensor> grads =
        tensor::autodiff::Grad(loss, nn::ParameterTensors(backbone_.get()));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    if (config.verbose && step % 50 == 0) {
      FEWNER_LOG(INFO) << name() << " step " << step << " loss " << loss.item();
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> FineTune::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  // Fine-tune the whole network on the support set, then restore afterwards so
  // evaluation episodes stay independent.
  std::vector<std::vector<float>> snapshot =
      nn::SnapshotParameterValues(backbone_.get());
  nn::Sgd sgd(backbone_->Parameters(), finetune_lr_);
  for (int64_t step = 0; step < test_steps_; ++step) {
    Tensor loss = backbone_->BatchLoss(episode.support, Tensor(), episode.valid_tags);
    std::vector<Tensor> grads =
        tensor::autodiff::Grad(loss, nn::ParameterTensors(backbone_.get()));
    nn::ClipGradNorm(&grads, 5.0f);
    sgd.Step(grads);
  }
  std::vector<std::vector<int64_t>> predictions;
  predictions.reserve(episode.query.size());
  for (const auto& sentence : episode.query) {
    predictions.push_back(backbone_->Decode(sentence, Tensor(), episode.valid_tags));
  }
  nn::RestoreParameterValues(backbone_.get(), snapshot);
  return predictions;
}

}  // namespace fewner::meta
