#include "meta/finetune.h"

#include "meta/grad_accumulator.h"
#include "meta/parallel.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

FineTune::FineTune(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  util::Rng init_rng = rng->Fork(0xF17Eull);
  backbone_ = std::make_unique<models::Backbone>(plain, &init_rng);
}

void FineTune::Train(const data::EpisodeSampler& sampler,
                     const models::EpisodeEncoder& encoder,
                     const TrainConfig& config) {
  test_steps_ = config.inner_steps_test;
  finetune_lr_ = config.inner_lr;
  backbone_->SetTraining(true);
  nn::Adam optimizer(backbone_->Parameters(), config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  // Conventional supervised training: each training task's support set is one
  // mini-batch element; a meta-batch of support losses is averaged into one
  // update (no inner/outer split, no query usage).
  ParallelMetaBatch batch = BackboneMetaBatch(config.num_threads, backbone_.get());
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          models::EncodedEpisode enc = PrepareTrainingTask(
              sampler, encoder, config, base + static_cast<uint64_t>(t), net);
          Tensor loss = net->BatchLoss(models::PackBatch(enc.support), Tensor(),
                                       enc.valid_tags);
          *grads = tensor::autodiff::Grad(loss, replica_params);
          return loss.item();
        },
        &accumulator);
    std::vector<Tensor> grads =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> FineTune::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  // Fine-tune the whole network on the support set, then restore afterwards so
  // evaluation episodes stay independent.
  std::vector<std::vector<float>> snapshot =
      nn::SnapshotParameterValues(backbone_.get());
  nn::Sgd sgd(backbone_->Parameters(), finetune_lr_);
  const models::EncodedBatch packed = models::PackBatch(episode.support);
  // Loop-invariant: Sgd::Step writes values in place, so these handles keep
  // aliasing the live leaves across steps.
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t step = 0; step < test_steps_; ++step) {
    Tensor loss = backbone_->BatchLoss(packed, Tensor(), episode.valid_tags);
    std::vector<Tensor> grads = tensor::autodiff::Grad(loss, params);
    nn::ClipGradNorm(&grads, 5.0f);
    sgd.Step(grads);
  }
  std::vector<std::vector<int64_t>> predictions;
  if (!episode.query.empty()) {
    predictions = backbone_->DecodeBatch(models::PackBatch(episode.query),
                                         Tensor(), episode.valid_tags);
  }
  nn::RestoreParameterValues(backbone_.get(), snapshot);
  return predictions;
}

}  // namespace fewner::meta
