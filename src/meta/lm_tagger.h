// Frozen-LM + CRF baselines (paper §4.1.2, "dynamic token representation"):
// a pre-trained language-model encoder produces contextual features which stay
// FROZEN; a linear emission layer + CRF is stacked on top.  The stack is
// trained on the support sets of training tasks, and at test time only the
// CRF stack is fine-tuned on the new task's support set (the paper's Flair
// framework does not allow fine-tuning the LM itself).

#pragma once

#include <memory>
#include <unordered_map>

#include "crf/linear_chain_crf.h"
#include "meta/method.h"
#include "models/lm_encoder.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace fewner::meta {

/// CRF tagger over frozen LM features.
class LmCrfTagger : public FewShotMethod {
 public:
  /// Takes a PRE-TRAINED encoder (ownership shared with the experiment, which
  /// pre-trains each LM once on the unlabeled corpus).
  LmCrfTagger(std::shared_ptr<models::PretrainedLmEncoder> encoder,
              int64_t max_tags, util::Rng* rng);

  std::string name() const override { return models::LmKindName(encoder_->kind()); }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

 private:
  /// Frozen features for a sentence, cached by source pointer (the LM never
  /// changes after pre-training, so features are reusable across episodes).
  tensor::Tensor Features(const models::EncodedSentence& sentence);

  tensor::Tensor BatchLoss(const std::vector<models::EncodedSentence>& sentences,
                           const std::vector<bool>& valid_tags);

  /// The trainable CRF stack (emission projection + CRF).
  class Head : public nn::Module {
   public:
    Head(int64_t feature_dim, int64_t max_tags, util::Rng* rng);
    std::unique_ptr<nn::Linear> emission;
    std::unique_ptr<crf::LinearChainCrf> crf;
  };

  std::shared_ptr<models::PretrainedLmEncoder> encoder_;
  Head head_;
  std::unordered_map<const data::Sentence*, tensor::Tensor> feature_cache_;
  int64_t test_steps_ = TrainConfig{}.inner_steps_test;
  float finetune_lr_ = TrainConfig{}.inner_lr;
};

}  // namespace fewner::meta
