// Common interface for all few-shot NER methods (FEWNER and the nine
// baselines).  A method is trained on episodes drawn from a source sampler,
// then evaluated by adapting to each held-out episode's support set and
// predicting its query set.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/episode_sampler.h"
#include "models/encoding.h"

namespace fewner::meta {

/// Shared training hyper-parameters (paper §4.1.3 defaults, CPU-scaled
/// iteration count).
struct TrainConfig {
  int64_t iterations = 60;        ///< outer-loop iterations (paper: to convergence)
  int64_t meta_batch = 8;         ///< tasks per outer update (paper: 8)
  int64_t inner_steps_train = 2;  ///< paper: 2
  int64_t inner_steps_test = 8;   ///< paper: 8
  float inner_lr = 0.1f;          ///< α (paper: 0.1)
  float meta_lr = 8e-4f;          ///< β (paper: 0.0008)
  float grad_clip = 5.0f;         ///< paper: 5.0
  float weight_decay = 1e-7f;     ///< paper: fixed L2 of 1e-7
  float lr_decay = 0.9f;          ///< paper: 0.9 ...
  int64_t lr_decay_every = 5000;  ///< ... every 5000 tasks
  int64_t train_query_size = 3;   ///< query sentences used per training task
  /// Cap on support sentences consumed per TRAINING task (0 = unlimited).
  /// 5-shot supports reach ~25 sentences; capping bounds the per-iteration
  /// cost of the second-order inner loop on CPU.  Test-time adaptation always
  /// uses the full support set, matching the paper's protocol.
  int64_t train_support_cap = 10;
  /// First-order approximation: detach the inner gradients during training
  /// (FOMAML-style).  The paper's methods use exact second-order gradients;
  /// this switch exists for the design-choice ablation bench.
  bool first_order = false;
  /// Worker threads for episode-parallel meta-batch training.  Each task of a
  /// meta-batch runs on its own model replica with a thread-isolated autodiff
  /// graph; gradients reduce in fixed task order into double buffers, so the
  /// result is bit-identical for any thread count (see meta/parallel.h).
  /// 0 = resolve from the FEWNER_THREADS environment variable (default 1).
  int64_t num_threads = 0;
  bool verbose = false;           ///< log outer-loop losses

  /// Optional hook invoked after every `callback_every` outer iterations (and
  /// after the last one).  Used for validation-based model selection (see
  /// eval::BestSnapshotTracker) and for live monitoring.  Never invoked when
  /// callback_every == 0.
  int64_t callback_every = 0;
  std::function<void(int64_t iteration)> iteration_callback;
};

/// Invokes the configured callback when the iteration index calls for it.
inline void MaybeInvokeCallback(const TrainConfig& config, int64_t iteration) {
  if (config.callback_every <= 0 || !config.iteration_callback) return;
  if ((iteration + 1) % config.callback_every == 0 ||
      iteration + 1 == config.iterations) {
    config.iteration_callback(iteration);
  }
}

/// Applies the train-time query/support bounds to an episode in place.
inline void BoundTrainingEpisode(const TrainConfig& config, data::Episode* episode) {
  if (static_cast<int64_t>(episode->query.size()) > config.train_query_size) {
    episode->query.resize(static_cast<size_t>(config.train_query_size));
  }
  if (config.train_support_cap > 0 &&
      static_cast<int64_t>(episode->support.size()) > config.train_support_cap) {
    episode->support.resize(static_cast<size_t>(config.train_support_cap));
  }
}

/// A few-shot sequence-labeling method.
class FewShotMethod {
 public:
  virtual ~FewShotMethod() = default;

  /// Display name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Trains on tasks drawn from `sampler` (the source/training split),
  /// numerically encoded through `encoder`.
  virtual void Train(const data::EpisodeSampler& sampler,
                     const models::EpisodeEncoder& encoder,
                     const TrainConfig& config) = 0;

  /// Adapts to the episode's support set and predicts tag sequences for every
  /// query sentence.  Must leave the method's trained state unchanged, so
  /// evaluation episodes are independent.
  virtual std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) = 0;
};

}  // namespace fewner::meta
