#include "meta/maml.h"

#include <cmath>

#include "meta/grad_accumulator.h"
#include "meta/parallel.h"

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Tensor;

namespace {

/// Global-norm cap for inner-loop gradients (the paper's clip value).
constexpr float kInnerClip = 5.0f;

models::BackboneConfig WithoutConditioning(models::BackboneConfig config) {
  config.conditioning = models::Conditioning::kNone;
  config.context_dim = 0;
  return config;
}
}  // namespace

Maml::Maml(const models::BackboneConfig& config, util::Rng* rng) {
  util::Rng init_rng = rng->Fork(0x3A31ull);
  backbone_ =
      std::make_unique<models::Backbone>(WithoutConditioning(config), &init_rng);
}

std::vector<Tensor> Maml::InnerAdapt(
    const std::vector<models::EncodedSentence>& support,
    const std::vector<bool>& valid_tags, int64_t steps, float inner_lr,
    bool create_graph) const {
  return InnerAdaptOn(backbone_.get(), support, valid_tags, steps, inner_lr,
                      create_graph);
}

std::vector<Tensor> Maml::InnerAdaptOn(
    models::Backbone* net, const std::vector<models::EncodedSentence>& support,
    const std::vector<bool>& valid_tags, int64_t steps, float inner_lr,
    bool create_graph) {
  std::vector<Tensor*> slots = net->Parameters();
  std::vector<Tensor> current = nn::ParameterTensors(net);
  // Packed once; every inner step runs the batch-first forward.
  const models::EncodedBatch packed = models::PackBatch(support);
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss;
    {
      nn::ParameterPatch patch(slots, current);
      loss = net->BatchLoss(packed, Tensor(), valid_tags);
    }
    std::vector<Tensor> grads = tensor::autodiff::Grad(loss, current, create_graph);
    // Full-network inner steps on the paper's summed task loss are large;
    // rescale by the global norm (detached factor, paper's clip of 5.0) so a
    // single step cannot blow up the whole backbone.
    double norm_sq = 0.0;
    for (const Tensor& g : grads) {
      for (float v : g.data()) norm_sq += static_cast<double>(v) * v;
    }
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    const float clip_scale = norm > kInnerClip ? kInnerClip / norm : 1.0f;
    for (size_t i = 0; i < current.size(); ++i) {
      if (create_graph) {
        current[i] = tensor::Sub(
            current[i], tensor::MulScalar(grads[i], inner_lr * clip_scale));
      } else {
        // First-order test-time path: plain arithmetic into fresh leaves.
        std::vector<float> updated = current[i].data();
        const auto& g = grads[i].data();
        for (size_t j = 0; j < updated.size(); ++j) {
          updated[j] -= inner_lr * clip_scale * g[j];
        }
        Tensor leaf = Tensor::FromData(current[i].shape(), std::move(updated),
                                       /*requires_grad=*/true);
        current[i] = leaf;
      }
    }
  }
  return current;
}

void Maml::Train(const data::EpisodeSampler& sampler,
                 const models::EpisodeEncoder& encoder, const TrainConfig& config) {
  test_inner_steps_ = config.inner_steps_test;
  inner_lr_ = config.inner_lr;
  backbone_->SetTraining(true);

  std::vector<Tensor*> slots = backbone_->Parameters();
  nn::Adam optimizer(slots, config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  int64_t tasks_seen = 0;

  ParallelMetaBatch batch = BackboneMetaBatch(config.num_threads, backbone_.get());
  const std::vector<Tensor> params = nn::ParameterTensors(backbone_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          const uint64_t episode_id = base + static_cast<uint64_t>(t);
          models::EncodedEpisode enc =
              PrepareTrainingTask(sampler, encoder, config, episode_id, net);
          std::vector<Tensor> adapted =
              InnerAdaptOn(net, enc.support, enc.valid_tags,
                           config.inner_steps_train, config.inner_lr,
                           /*create_graph=*/!config.first_order);
          Tensor query_loss;
          {
            nn::ParameterPatch patch(net->Parameters(), adapted);
            query_loss = net->BatchLoss(models::PackBatch(enc.query), Tensor(),
                                        enc.valid_tags);
          }
          // Eq. 3: meta-gradient w.r.t. the original parameters (the
          // replica's own leaves), flowing through the full-network inner
          // updates; per-task backward bounds peak memory.  In first-order
          // mode the inner updates are detached, so the FOMAML gradient is
          // taken at the adapted parameters and applied to the originals
          // (identical layouts).
          *grads = tensor::autodiff::Grad(
              query_loss, config.first_order ? adapted : replica_params);
          return query_loss.item();
        },
        &accumulator);
    tasks_seen += config.meta_batch;
    std::vector<Tensor> grads =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    if (tasks_seen / config.lr_decay_every !=
        (tasks_seen - config.meta_batch) / config.lr_decay_every) {
      optimizer.DecayLr(config.lr_decay);
    }
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " query loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  backbone_->SetTraining(false);
}

std::vector<std::vector<int64_t>> Maml::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  backbone_->SetTraining(false);
  std::vector<Tensor> adapted =
      InnerAdapt(episode.support, episode.valid_tags, test_inner_steps_, inner_lr_,
                 /*create_graph=*/false);
  std::vector<Tensor*> slots = backbone_->Parameters();
  nn::ParameterPatch patch(slots, adapted);
  if (episode.query.empty()) return {};
  return backbone_->DecodeBatch(models::PackBatch(episode.query), Tensor(),
                                episode.valid_tags);
}

}  // namespace fewner::meta
