// ProtoNet baseline (Snell et al. 2017 adapted to tokens, paper §4.1.2):
// sequence labeling as per-token classification in a learned metric space.
// Class prototypes are the mean encoder features of support tokens carrying
// each BIO tag; query tokens are classified by (negative squared) distance to
// the prototypes.  There is no CRF and no gradient-based adaptation — the
// adaptation is entirely the recomputation of prototypes.

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "util/rng.h"

namespace fewner::meta {

/// Token-level prototypical network.
class ProtoNet : public FewShotMethod {
 public:
  ProtoNet(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "ProtoNet"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  models::Backbone* backbone() { return backbone_.get(); }

 private:
  // The forward helpers take the backbone explicitly so the episode-parallel
  // trainer can run them against per-worker replicas.

  /// Episode loss: cross-entropy of query tokens against prototype distances.
  static tensor::Tensor EpisodeLoss(const models::Backbone& net,
                                    const models::EncodedEpisode& episode);

  /// Per-token logits [L, max_tags] for one query sentence given prototypes
  /// [max_tags, D] and a present-class mask.
  static tensor::Tensor TokenLogits(const models::Backbone& net,
                                    const models::EncodedSentence& sentence,
                                    const tensor::Tensor& prototypes,
                                    const std::vector<bool>& class_present);

  /// Builds prototypes from support features; `class_present` marks classes
  /// with at least one support token.
  static tensor::Tensor BuildPrototypes(
      const models::Backbone& net,
      const std::vector<models::EncodedSentence>& support,
      std::vector<bool>* class_present);

  std::unique_ptr<models::Backbone> backbone_;
};

}  // namespace fewner::meta
