// FEWNER (paper §3.2, Algorithm 1): meta-learning with task-specific context
// parameters.
//
// The CNN-BiGRU-CRF backbone θ is task-independent and meta-learned across
// tasks; a low-dimensional context vector φ is (re)learned from zero inside
// every task by a few steps of gradient descent on the support loss, and
// conditions the backbone through FiLM (method B) or input concatenation
// (method A).  The outer update differentiates the query loss through the
// inner updates — a genuine second-order gradient w.r.t. θ — while test-time
// adaptation touches only φ and needs no second-order computation at all.

#pragma once

#include <memory>

#include "meta/method.h"
#include "models/backbone.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace fewner::meta {

/// The paper's approach.
class Fewner : public FewShotMethod {
 public:
  /// `config.conditioning` must be kFilm or kConcat, with context_dim > 0.
  Fewner(const models::BackboneConfig& config, util::Rng* rng);

  std::string name() const override { return "FewNER"; }

  void Train(const data::EpisodeSampler& sampler,
             const models::EpisodeEncoder& encoder,
             const TrainConfig& config) override;

  std::vector<std::vector<int64_t>> AdaptAndPredict(
      const models::EncodedEpisode& episode) override;

  /// Inner loop (Eq. 5): runs `steps` gradient steps on φ starting from zero.
  /// With `create_graph` the returned φ_k stays differentiable w.r.t. θ.
  tensor::Tensor AdaptContext(const std::vector<models::EncodedSentence>& support,
                              const std::vector<bool>& valid_tags, int64_t steps,
                              float inner_lr, bool create_graph) const;

  /// Same inner loop against an explicit backbone — the form the
  /// episode-parallel trainer runs on per-worker replicas.  When the backbone
  /// is in the dropout-free regime (test time, or training with dropout == 0)
  /// the θ-prefix over the support set is computed once and every step runs
  /// the φ-suffix only; otherwise it falls back to per-step forwards, since
  /// per-(episode, call, lane) dropout masks legitimately differ per step.
  static tensor::Tensor AdaptContextOn(
      const models::Backbone& net,
      const std::vector<models::EncodedSentence>& support,
      const std::vector<bool>& valid_tags, int64_t steps, float inner_lr,
      bool create_graph);

  /// Inner loop over an already-encoded support prefix.  Starts from `phi`
  /// (ZeroContext() when undefined), so a caller holding a prefix can also
  /// *continue* a previous descent — AdaptedTagger::ReAdapt does exactly
  /// that.  The prefix must be current (see Backbone::CheckPrefix).
  static tensor::Tensor AdaptOnPrefix(const models::Backbone& net,
                                      const models::CachedPrefix& prefix,
                                      const std::vector<bool>& valid_tags,
                                      int64_t steps, float inner_lr,
                                      bool create_graph,
                                      tensor::Tensor phi = tensor::Tensor());

  models::Backbone* backbone() { return backbone_.get(); }

  /// Inner steps used at test time; taken from the last Train() config, or the
  /// TrainConfig default before training.
  int64_t test_inner_steps() const { return test_inner_steps_; }
  float inner_lr() const { return inner_lr_; }

 private:
  std::unique_ptr<models::Backbone> backbone_;
  util::Rng rng_;
  int64_t test_inner_steps_ = TrainConfig{}.inner_steps_test;
  float inner_lr_ = TrainConfig{}.inner_lr;
};

}  // namespace fewner::meta
