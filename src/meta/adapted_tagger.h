// AdaptedTagger: an immutable serving snapshot of a FEWNER model adapted to
// one task.
//
// Adaptation (the φ inner loop) is the only part of test-time FEWNER that
// needs gradients, and it runs once per task.  Tagging runs once per sentence,
// forever after.  This type splits the two: its constructor performs the
// inner loop in graph mode, then freezes the result — meta-learned θ by
// pointer, adapted φ as a detached constant — so every subsequent Tag() can
// run under EvalMode, where ops allocate no graph nodes, build no backward
// closures, and write into arena-recycled buffers.
//
// The snapshot holds no graph state at all, and tagging mutates nothing but
// the calling thread's workspace arena, so one AdaptedTagger may serve
// concurrent Tag() calls from many threads (the backbone must not be trained
// concurrently; Backbone::SetTraining(false) is enforced at construction so
// dropout stays off and the forward is deterministic).

#pragma once

#include <vector>

#include "models/backbone.h"
#include "models/encoding.h"
#include "tensor/tensor.h"

namespace fewner::meta {

class Fewner;

/// Frozen (θ, φ*) pair for one task; decodes sentences on the graph-free
/// eval fast path.
class AdaptedTagger {
 public:
  /// Adapts φ on `support` with `inner_steps` gradient steps of size
  /// `inner_lr` (paper Eq. 5, create_graph=false), then freezes.  The support
  /// θ-prefix is encoded once (graph-free, arena-backed) and every inner step
  /// runs the φ-suffix only; the prefix is kept for ReAdapt().  `backbone`
  /// must outlive the tagger and stays in inference mode afterwards.
  AdaptedTagger(models::Backbone* backbone,
                const std::vector<models::EncodedSentence>& support,
                std::vector<bool> valid_tags, int64_t inner_steps, float inner_lr);

  /// Convenience: adapts on an episode's support set using the method's
  /// test-time inner-loop settings.
  AdaptedTagger(Fewner* method, const models::EncodedEpisode& episode);

  /// Viterbi tag sequence for one sentence, computed entirely under EvalMode.
  std::vector<int64_t> Tag(const models::EncodedSentence& sentence) const;

  /// Tags a batch of sentences (one EvalMode scope for the whole batch).
  std::vector<std::vector<int64_t>> TagAll(
      const std::vector<models::EncodedSentence>& sentences) const;

  /// Continues the φ descent for `extra_steps` more steps on the cached
  /// support prefix — no support re-encode.  Equivalent to having constructed
  /// with `inner_steps + extra_steps` (bitwise: the test-time inner loop
  /// re-leafs φ every step, so it carries no other per-step state).  Aborts
  /// if θ changed since construction (the prefix would be stale).
  void ReAdapt(int64_t extra_steps);

  /// θ-only features for a query workload, encoded once under EvalMode.
  /// A prepared workload is immutable; many threads may TagPrepared() the
  /// same one concurrently, each decoding on its own workspace arena.
  models::CachedPrefix PrepareWorkload(
      const std::vector<models::EncodedSentence>& sentences) const;

  /// Tags a prepared workload through the φ-suffix only — the serving path
  /// when the same sentences are decoded repeatedly (e.g. after ReAdapt) or
  /// fanned out across threads.
  std::vector<std::vector<int64_t>> TagPrepared(
      const models::CachedPrefix& prefix) const;

  /// The adapted context vector φ* (a detached constant).
  const tensor::Tensor& phi() const { return phi_; }

  const std::vector<bool>& valid_tags() const { return valid_tags_; }

 private:
  const models::Backbone* backbone_;
  models::CachedPrefix support_prefix_;  ///< adaptation-era θ features
  tensor::Tensor phi_;
  std::vector<bool> valid_tags_;
  float inner_lr_ = 0.0f;
};

}  // namespace fewner::meta
