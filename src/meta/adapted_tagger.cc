#include "meta/adapted_tagger.h"

#include "meta/fewner.h"
#include "tensor/eval_mode.h"

namespace fewner::meta {

AdaptedTagger::AdaptedTagger(models::Backbone* backbone,
                             const std::vector<models::EncodedSentence>& support,
                             std::vector<bool> valid_tags, int64_t inner_steps,
                             float inner_lr)
    : backbone_(backbone),
      valid_tags_(std::move(valid_tags)),
      inner_lr_(inner_lr) {
  FEWNER_CHECK(backbone != nullptr, "AdaptedTagger needs a backbone");
  // Dropout off + deterministic forward, for adaptation and serving alike.
  backbone->SetTraining(false);
  {
    // The support θ-prefix: encoded once, graph-free, and kept — ReAdapt()
    // continues the descent from it without touching the encoder again.
    tensor::EvalMode eval;
    support_prefix_ = backbone->EncodePrefix(models::PackBatch(support));
  }
  // The inner loop differentiates the support loss w.r.t. φ, so the suffix
  // must run in graph mode — this is the one-off cost the snapshot amortizes
  // away (and with the cached prefix it is suffix-sized, not encoder-sized).
  tensor::Tensor phi =
      Fewner::AdaptOnPrefix(*backbone, support_prefix_, valid_tags_,
                            inner_steps, inner_lr, /*create_graph=*/false);
  phi_ = phi.Detach();  // plain constant: no grad flag, no graph edges
}

AdaptedTagger::AdaptedTagger(Fewner* method, const models::EncodedEpisode& episode)
    : AdaptedTagger(method->backbone(), episode.support,
                    episode.valid_tags, method->test_inner_steps(),
                    method->inner_lr()) {}

std::vector<int64_t> AdaptedTagger::Tag(
    const models::EncodedSentence& sentence) const {
  tensor::EvalMode eval;
  return backbone_->Decode(sentence, phi_, valid_tags_);
}

std::vector<std::vector<int64_t>> AdaptedTagger::TagAll(
    const std::vector<models::EncodedSentence>& sentences) const {
  if (sentences.empty()) return {};
  // One batched graph-free prefix + suffix for the whole query set, then
  // per-lane Viterbi — identical tags to sentence-at-a-time Decode (see
  // DESIGN.md §7; the prefix/suffix split changes no op in this regime).
  tensor::EvalMode eval;
  return backbone_->DecodeBatchFromPrefix(
      backbone_->EncodePrefix(models::PackBatch(sentences)), phi_, valid_tags_);
}

void AdaptedTagger::ReAdapt(int64_t extra_steps) {
  if (extra_steps <= 0) return;
  // The test-time inner loop re-leafs φ after every step, so resuming from
  // the frozen φ* reproduces exactly the steps a longer construction-time
  // loop would have taken.  AdaptOnPrefix re-checks the prefix against the
  // backbone's current parameter version — θ drift aborts here.
  tensor::Tensor phi = phi_.Detach();
  phi.set_requires_grad(true);
  phi = Fewner::AdaptOnPrefix(*backbone_, support_prefix_, valid_tags_,
                              extra_steps, inner_lr_, /*create_graph=*/false,
                              std::move(phi));
  phi_ = phi.Detach();
}

models::CachedPrefix AdaptedTagger::PrepareWorkload(
    const std::vector<models::EncodedSentence>& sentences) const {
  FEWNER_CHECK(!sentences.empty(), "PrepareWorkload on zero sentences");
  tensor::EvalMode eval;
  return backbone_->EncodePrefix(models::PackBatch(sentences));
}

std::vector<std::vector<int64_t>> AdaptedTagger::TagPrepared(
    const models::CachedPrefix& prefix) const {
  // Suffix + Viterbi only.  Reads the shared prefix, writes only this
  // thread's arena — safe to fan out across serving threads.
  tensor::EvalMode eval;
  return backbone_->DecodeBatchFromPrefix(prefix, phi_, valid_tags_);
}

}  // namespace fewner::meta
