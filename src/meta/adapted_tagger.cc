#include "meta/adapted_tagger.h"

#include "meta/fewner.h"
#include "tensor/eval_mode.h"

namespace fewner::meta {

AdaptedTagger::AdaptedTagger(models::Backbone* backbone,
                             const std::vector<models::EncodedSentence>& support,
                             std::vector<bool> valid_tags, int64_t inner_steps,
                             float inner_lr)
    : backbone_(backbone), valid_tags_(std::move(valid_tags)) {
  FEWNER_CHECK(backbone != nullptr, "AdaptedTagger needs a backbone");
  // Dropout off + deterministic forward, for adaptation and serving alike.
  backbone->SetTraining(false);
  // The inner loop differentiates the support loss w.r.t. φ, so it must run
  // in graph mode — this is the one-off cost the snapshot amortizes away.
  tensor::Tensor phi =
      Fewner::AdaptContextOn(*backbone, support, valid_tags_, inner_steps,
                             inner_lr, /*create_graph=*/false);
  phi_ = phi.Detach();  // plain constant: no grad flag, no graph edges
}

AdaptedTagger::AdaptedTagger(Fewner* method, const models::EncodedEpisode& episode)
    : AdaptedTagger(method->backbone(), episode.support,
                    episode.valid_tags, method->test_inner_steps(),
                    method->inner_lr()) {}

std::vector<int64_t> AdaptedTagger::Tag(
    const models::EncodedSentence& sentence) const {
  tensor::EvalMode eval;
  return backbone_->Decode(sentence, phi_, valid_tags_);
}

std::vector<std::vector<int64_t>> AdaptedTagger::TagAll(
    const std::vector<models::EncodedSentence>& sentences) const {
  if (sentences.empty()) return {};
  // One batched graph-free forward for the whole query set, then per-lane
  // Viterbi — identical tags to sentence-at-a-time Decode (see DESIGN.md §7).
  tensor::EvalMode eval;
  return backbone_->DecodeBatch(models::PackBatch(sentences), phi_, valid_tags_);
}

}  // namespace fewner::meta
