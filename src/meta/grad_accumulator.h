// Per-task gradient accumulation for meta-batch training.
//
// Computing one joint graph over all tasks of a meta-batch keeps every task's
// inner-loop graph (including dense embedding-table gradients) alive until the
// single outer backward, which costs gigabytes at paper-like batch sizes.
// Since the meta-objective is a mean of per-task losses, backpropagating each
// task separately and summing raw gradient values is mathematically identical
// and bounds peak memory by a single task's graph.

#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace fewner::meta {

/// Accumulates detached per-task gradients into a flat float buffer.
class GradAccumulator {
 public:
  explicit GradAccumulator(const std::vector<tensor::Tensor>& params) {
    buffers_.reserve(params.size());
    shapes_.reserve(params.size());
    for (const auto& p : params) {
      buffers_.emplace_back(p.data().size(), 0.0f);
      shapes_.push_back(p.shape());
    }
  }

  /// Adds one task's gradients (same layout as the constructor params).
  void Add(const std::vector<tensor::Tensor>& grads) {
    FEWNER_CHECK(grads.size() == buffers_.size(), "GradAccumulator layout mismatch");
    for (size_t i = 0; i < grads.size(); ++i) {
      const auto& g = grads[i].data();
      FEWNER_CHECK(g.size() == buffers_[i].size(),
                   "GradAccumulator size mismatch at slot " << i);
      for (size_t j = 0; j < g.size(); ++j) buffers_[i][j] += g[j];
    }
  }

  /// Materializes the accumulated (optionally scaled) gradients as tensors.
  std::vector<tensor::Tensor> Finish(float scale) {
    std::vector<tensor::Tensor> out;
    out.reserve(buffers_.size());
    for (size_t i = 0; i < buffers_.size(); ++i) {
      std::vector<float> values = std::move(buffers_[i]);
      for (float& v : values) v *= scale;
      out.push_back(tensor::Tensor::FromData(shapes_[i], std::move(values)));
    }
    buffers_.clear();
    return out;
  }

 private:
  std::vector<std::vector<float>> buffers_;
  std::vector<tensor::Shape> shapes_;
};

}  // namespace fewner::meta
