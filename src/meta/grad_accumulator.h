// Per-task gradient accumulation for meta-batch training.
//
// Computing one joint graph over all tasks of a meta-batch keeps every task's
// inner-loop graph (including dense embedding-table gradients) alive until the
// single outer backward, which costs gigabytes at paper-like batch sizes.
// Since the meta-objective is a mean of per-task losses, backpropagating each
// task separately and summing raw gradient values is mathematically identical
// and bounds peak memory by a single task's graph.
//
// Accumulation is in double precision: float buffers would make the summed
// gradient depend on the rounding of every intermediate partial sum, while
// doubles absorb each float-valued task gradient exactly enough that the sum
// of a meta-batch is bit-identical however the per-task grads were produced.
// Together with a fixed Add() order this is what lets the episode-parallel
// trainer (see parallel.h) promise bitwise equality with the serial path.

#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace fewner::meta {

/// Accumulates detached per-task gradients into flat double buffers.
/// Single-writer: callers that produce gradients concurrently must serialize
/// Add() calls (in a fixed task order, for determinism).
class GradAccumulator {
 public:
  explicit GradAccumulator(const std::vector<tensor::Tensor>& params) {
    buffers_.reserve(params.size());
    shapes_.reserve(params.size());
    for (const auto& p : params) {
      buffers_.emplace_back(p.data().size(), 0.0);
      shapes_.push_back(p.shape());
    }
  }

  /// Adds one task's gradients (same layout as the constructor params).
  void Add(const std::vector<tensor::Tensor>& grads) {
    FEWNER_CHECK(!finished_, "GradAccumulator::Add after Finish()");
    FEWNER_CHECK(grads.size() == buffers_.size(), "GradAccumulator layout mismatch");
    for (size_t i = 0; i < grads.size(); ++i) {
      const auto& g = grads[i].data();
      FEWNER_CHECK(g.size() == buffers_[i].size(),
                   "GradAccumulator size mismatch at slot " << i);
      for (size_t j = 0; j < g.size(); ++j) {
        buffers_[i][j] += static_cast<double>(g[j]);
      }
    }
  }

  /// Materializes the accumulated gradients as tensors, scaled by `scale` in
  /// double precision and rounded to float once, at the very end.  The
  /// accumulator is consumed: further Add()/Finish() calls abort.
  std::vector<tensor::Tensor> Finish(double scale) {
    FEWNER_CHECK(!finished_, "GradAccumulator::Finish called twice");
    finished_ = true;
    std::vector<tensor::Tensor> out;
    out.reserve(buffers_.size());
    for (size_t i = 0; i < buffers_.size(); ++i) {
      std::vector<float> values(buffers_[i].size());
      for (size_t j = 0; j < values.size(); ++j) {
        values[j] = static_cast<float>(buffers_[i][j] * scale);
      }
      out.push_back(tensor::Tensor::FromData(shapes_[i], std::move(values)));
    }
    return out;
  }

  /// Read-only view of the double buffers; the serial-vs-parallel parity tests
  /// compare these bitwise before any scaling.
  const std::vector<std::vector<double>>& buffers() const { return buffers_; }

  bool finished() const { return finished_; }

 private:
  std::vector<std::vector<double>> buffers_;
  std::vector<tensor::Shape> shapes_;
  bool finished_ = false;
};

}  // namespace fewner::meta
