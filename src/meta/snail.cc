#include "meta/snail.h"

#include "meta/grad_accumulator.h"
#include "meta/parallel.h"

#include <cmath>

#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fewner::meta {

using tensor::Shape;
using tensor::Tensor;

Snail::Model::Model(const models::BackboneConfig& config, util::Rng* rng) {
  models::BackboneConfig plain = config;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  backbone = std::make_unique<models::Backbone>(plain, rng);
  RegisterModule("backbone", backbone.get());

  const int64_t feature_dim = 2 * plain.hidden_dim;
  const int64_t filters = plain.hidden_dim / 2;
  tc1 = std::make_unique<nn::DilatedCausalConv>(feature_dim, filters, 1, rng);
  tc2 = std::make_unique<nn::DilatedCausalConv>(tc1->output_dim(), filters, 2, rng);
  tc_dim = tc2->output_dim();
  attn_dim = plain.hidden_dim;
  key_proj = std::make_unique<nn::Linear>(tc_dim, attn_dim, rng, /*with_bias=*/false);
  query_proj =
      std::make_unique<nn::Linear>(tc_dim, attn_dim, rng, /*with_bias=*/false);
  classifier =
      std::make_unique<nn::Linear>(tc_dim + plain.max_tags, plain.max_tags, rng);
  RegisterModule("tc1", tc1.get());
  RegisterModule("tc2", tc2.get());
  RegisterModule("key_proj", key_proj.get());
  RegisterModule("query_proj", query_proj.get());
  RegisterModule("classifier", classifier.get());
}

Snail::Snail(const models::BackboneConfig& config, util::Rng* rng) {
  util::Rng init_rng = rng->Fork(0x54A1ull);
  model_ = std::make_unique<Model>(config, &init_rng);
}

Tensor Snail::Enrich(const Model& m, const models::EncodedSentence& sentence) {
  Tensor features = m.backbone->Encode(sentence, Tensor());
  return m.tc2->Forward(m.tc1->Forward(features));
}

void Snail::BuildSupport(const Model& m,
                         const std::vector<models::EncodedSentence>& support,
                         Tensor* keys, Tensor* labels) {
  const int64_t num_classes = m.backbone->config().max_tags;
  std::vector<Tensor> feature_blocks;
  std::vector<int64_t> tags;
  for (const auto& sentence : support) {
    feature_blocks.push_back(Enrich(m, sentence));
    tags.insert(tags.end(), sentence.tags.begin(), sentence.tags.end());
  }
  Tensor all = tensor::Concat(feature_blocks, 0);  // [T, tc_dim]
  *keys = m.key_proj->Forward(all);                // [T, attn_dim]
  const int64_t total = all.shape().dim(0);
  std::vector<float> onehot(static_cast<size_t>(total * num_classes), 0.0f);
  for (int64_t t = 0; t < total; ++t) {
    onehot[static_cast<size_t>(t * num_classes + tags[static_cast<size_t>(t)])] = 1.0f;
  }
  *labels = Tensor::FromData(Shape{total, num_classes}, std::move(onehot));
}

Tensor Snail::QueryLogProbs(const Model& m,
                            const models::EncodedSentence& sentence,
                            const Tensor& support_keys,
                            const Tensor& support_labels,
                            const std::vector<bool>& valid_tags) {
  Tensor enriched = Enrich(m, sentence);                       // [L, tc]
  Tensor queries = m.query_proj->Forward(enriched);            // [L, A]
  const float scale = 1.0f / std::sqrt(static_cast<float>(m.attn_dim));
  Tensor scores = tensor::MulScalar(
      tensor::MatMulNT(queries, support_keys), scale);  // [L, T], q·keysᵀ
  Tensor attention = tensor::SoftmaxLastDim(scores);
  // Attention-weighted label read-out, re-weighted by a learned classifier so
  // the model can counteract the O-class prior of the support tokens.
  Tensor votes = tensor::MatMul(attention, support_labels);  // [L, C]
  Tensor logits = m.classifier->Forward(tensor::Concat({enriched, votes}, 1));
  // Tags outside the episode's N ways are masked out of the softmax.
  const int64_t num_classes = m.backbone->config().max_tags;
  std::vector<float> mask(static_cast<size_t>(num_classes), 0.0f);
  for (int64_t c = 0; c < num_classes; ++c) {
    if (!valid_tags[static_cast<size_t>(c)]) mask[static_cast<size_t>(c)] = -1e7f;
  }
  logits = tensor::Add(logits, Tensor::FromData(Shape{num_classes}, std::move(mask)));
  return tensor::LogSoftmaxLastDim(logits);
}

Tensor Snail::EpisodeLoss(const Model& m, const models::EncodedEpisode& episode) {
  Tensor keys, labels;
  BuildSupport(m, episode.support, &keys, &labels);
  const int64_t num_classes = m.backbone->config().max_tags;
  Tensor total;
  int64_t tokens = 0;
  for (const auto& sentence : episode.query) {
    Tensor logp = QueryLogProbs(m, sentence, keys, labels, episode.valid_tags);
    const int64_t length = sentence.length();
    std::vector<float> select(static_cast<size_t>(length * num_classes), 0.0f);
    for (int64_t t = 0; t < length; ++t) {
      select[static_cast<size_t>(t * num_classes +
                                 sentence.tags[static_cast<size_t>(t)])] = 1.0f;
    }
    Tensor gold = tensor::SumAll(tensor::Mul(
        logp, Tensor::FromData(Shape{length, num_classes}, std::move(select))));
    Tensor loss = tensor::Neg(gold);
    total = total.defined() ? tensor::Add(total, loss) : loss;
    tokens += length;
  }
  FEWNER_CHECK(total.defined() && tokens > 0, "SNAIL episode without query tokens");
  return tensor::MulScalar(total, 1.0f / static_cast<float>(tokens));
}

void Snail::Train(const data::EpisodeSampler& sampler,
                  const models::EpisodeEncoder& encoder, const TrainConfig& config) {
  model_->SetTraining(true);
  nn::Adam optimizer(model_->Parameters(), config.meta_lr, 0.9f, 0.999f, 1e-8f,
                     config.weight_decay);
  Model* master = model_.get();
  ParallelMetaBatch batch(
      config.num_threads,
      [master]() -> std::unique_ptr<nn::Module> {
        // The init draws are discarded by the first sync; any seed works.
        util::Rng init_rng(0x5EED5EED5EED5EEDull);
        return std::make_unique<Model>(master->backbone->config(), &init_rng);
      },
      [master](nn::Module* replica) {
        auto* m = static_cast<Model*>(replica);
        m->CopyParametersFrom(master);
        m->SetTraining(master->training());
        m->backbone->set_dropout_base(master->backbone->dropout_base());
      });
  const std::vector<Tensor> params = nn::ParameterTensors(model_.get());
  for (int64_t it = 0; it < config.iterations; ++it) {
    const uint64_t base = static_cast<uint64_t>(it * config.meta_batch);
    GradAccumulator accumulator(params);
    const double loss_sum = batch.Run(
        config.meta_batch,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* m = static_cast<Model*>(model);
          models::EncodedEpisode enc =
              PrepareTrainingTask(sampler, encoder, config,
                                  base + static_cast<uint64_t>(t),
                                  m->backbone.get());
          Tensor loss = EpisodeLoss(*m, enc);
          *grads = tensor::autodiff::Grad(loss, replica_params);
          return loss.item();
        },
        &accumulator);
    std::vector<Tensor> grads =
        accumulator.Finish(1.0 / static_cast<double>(config.meta_batch));
    nn::ClipGradNorm(&grads, config.grad_clip);
    optimizer.Step(grads);
    MaybeInvokeCallback(config, it);
    if (config.verbose && (it % 10 == 0 || it + 1 == config.iterations)) {
      FEWNER_LOG(INFO) << name() << " iteration " << it << " loss "
                       << loss_sum / static_cast<double>(config.meta_batch);
    }
  }
  model_->SetTraining(false);
}

std::vector<std::vector<int64_t>> Snail::AdaptAndPredict(
    const models::EncodedEpisode& episode) {
  model_->SetTraining(false);
  Tensor keys, labels;
  BuildSupport(*model_, episode.support, &keys, &labels);
  const int64_t num_classes = model_->backbone->config().max_tags;
  std::vector<std::vector<int64_t>> predictions;
  predictions.reserve(episode.query.size());
  for (const auto& sentence : episode.query) {
    Tensor logp = QueryLogProbs(*model_, sentence, keys, labels, episode.valid_tags);
    const auto& values = logp.data();
    const int64_t length = sentence.length();
    std::vector<int64_t> tags(static_cast<size_t>(length));
    for (int64_t t = 0; t < length; ++t) {
      int64_t best = 0;
      float best_v = values[static_cast<size_t>(t * num_classes)];
      for (int64_t c = 1; c < num_classes; ++c) {
        const float v = values[static_cast<size_t>(t * num_classes + c)];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      tags[static_cast<size_t>(t)] = best;
    }
    predictions.push_back(std::move(tags));
  }
  return predictions;
}

}  // namespace fewner::meta
