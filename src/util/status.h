// Status / Result error-handling primitives, in the style of Arrow / RocksDB.
//
// Library code reports recoverable failures through Status (or Result<T> when a
// value is produced).  FEWNER_CHECK is reserved for programmer errors
// (precondition violations) and aborts.

#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace fewner::util {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail without producing a value.
///
/// A Status is cheap to copy when OK (no allocation) and carries a message
/// otherwise.  Use the static factories (`Status::InvalidArgument(...)`) to
/// construct errors.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Outcome of an operation that produces a T on success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) { // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or aborts with the error message; use only where an
  /// error indicates a bug.
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString() << "\n";
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);
}  // namespace internal

}  // namespace fewner::util

/// Aborts with a diagnostic when `cond` is false.  For programmer errors only.
#define FEWNER_CHECK(cond, msg)                                                       \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::ostringstream fewner_check_oss_;                                           \
      fewner_check_oss_ << "FEWNER_CHECK failed: " #cond " — " << msg;                \
      ::fewner::util::internal::CheckFailed(__FILE__, __LINE__,                       \
                                            fewner_check_oss_.str());                 \
    }                                                                                 \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define FEWNER_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::fewner::util::Status fewner_status_ = (expr);  \
    if (!fewner_status_.ok()) return fewner_status_; \
  } while (0)
