// Fixed-size worker pool for episode-parallel meta-batch training.
//
// The pool is deliberately simple: a mutex-protected FIFO drained by a fixed
// number of workers.  Meta-batch tasks are coarse (one full forward/backward
// per task), so queue contention is negligible and a lock-free or
// work-stealing design would buy nothing measurable.  Determinism is NOT the
// pool's job — callers that need reproducible results must make each task a
// pure function of its index and reduce task outputs in a fixed order (see
// meta::ParallelMetaBatch).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fewner::util {

/// Parses a thread-count environment variable shared by FEWNER_THREADS
/// (episode parallelism) and FEWNER_INTRAOP_THREADS (intra-op GEMM slabs):
/// returns 1 when the variable is unset, empty, or not a non-negative
/// integer; "0" means "use all hardware threads".
int64_t ThreadCountFromEnv(const char* var);

/// Fixed worker count; tasks are run in submission order (per worker pickup).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int64_t num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Must not be called concurrently with destruction.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int64_t size() const { return static_cast<int64_t>(workers_.size()); }

  /// Thread count from the FEWNER_THREADS environment variable; 1 when the
  /// variable is unset, empty, or not a positive integer.  "0" means "use all
  /// hardware threads".
  static int64_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: queue non-empty / stop
  std::condition_variable idle_cv_;   ///< signals Wait(): queue empty, none active
  int64_t active_ = 0;                ///< tasks currently executing
  bool stop_ = false;
};

}  // namespace fewner::util
