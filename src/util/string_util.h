// Small string helpers shared across subsystems.

#pragma once

#include <string>
#include <vector>

namespace fewner::util {

/// Splits on any run of the delimiter; no empty pieces are produced.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins pieces with the separator.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

/// Lowercases ASCII characters.
std::string ToLower(const std::string& s);

/// True if the string starts with the prefix.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if the string ends with the suffix.
bool EndsWith(const std::string& s, const std::string& suffix);

/// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals);

/// Left-pads (pad_left=true) or right-pads a string with spaces to `width`.
std::string Pad(const std::string& s, size_t width, bool pad_left);

}  // namespace fewner::util
