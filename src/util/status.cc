#include "util/status.h"

namespace fewner::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::cerr << file << ":" << line << ": " << msg << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace fewner::util
