// Deterministic random number generation.
//
// Everything stochastic in the library (corpus synthesis, parameter init,
// episode sampling, dropout) draws from Rng so that a (seed, purpose) pair
// fully determines the output.  The generator is xoshiro256** seeded through
// SplitMix64, the standard recommendation of its authors.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fewner::util {

/// SplitMix64 step; used for seeding and for stateless hash-mixing.
uint64_t SplitMix64(uint64_t* state);

/// Mixes a 64-bit value into a well-distributed 64-bit value (stateless).
uint64_t Mix64(uint64_t x);

/// Stable 64-bit FNV-1a hash of a string; used to derive per-word seeds.
uint64_t HashString(const std::string& s);

/// xoshiro256** pseudo-random generator with convenience samplers.
class Rng {
 public:
  /// Seeds the four lanes of state from `seed` through SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Index drawn from unnormalized non-negative weights; requires a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Forks an independent stream keyed by `stream_id`; the child is a pure
  /// function of (parent seed, stream_id), not of draws already made.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace fewner::util
