#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace fewner::util {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == delim) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Pad(const std::string& s, size_t width, bool pad_left) {
  if (s.size() >= width) return s;
  std::string padding(width - s.size(), ' ');
  return pad_left ? padding + s : s + padding;
}

}  // namespace fewner::util
