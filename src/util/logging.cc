#include "util/logging.h"

#include <atomic>

namespace fewner::util {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }

LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << std::endl; }

}  // namespace internal
}  // namespace fewner::util
