#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace fewner::util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  // Final avalanche so short strings spread across the space.
  return Mix64(h);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  FEWNER_CHECK(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    FEWNER_CHECK(w >= 0.0, "Categorical weights must be non-negative");
    total += w;
  }
  FEWNER_CHECK(total > 0.0, "Categorical weights must have a positive sum");
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_id) const {
  return Rng(Mix64(seed_ ^ Mix64(stream_id + 0xA5A5A5A5A5A5A5A5ull)));
}

}  // namespace fewner::util
