// Tiny command-line flag parser used by benches and examples.
//
// Flags are "--name value" or "--name=value"; booleans accept a bare "--name".
// Unknown flags are an error so typos in experiment scripts fail loudly.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace fewner::util {

/// Declarative flag set: register defaults, then Parse(argc, argv).
class FlagParser {
 public:
  /// Registers an int64 flag with a default and help string.
  void AddInt(const std::string& name, int64_t default_value, const std::string& help);
  /// Registers a double flag.
  void AddDouble(const std::string& name, double default_value, const std::string& help);
  /// Registers a string flag.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  /// Registers a boolean flag ("--name" or "--name=true/false").
  void AddBool(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown flags or bad values.
  /// "--help" prints usage and sets help_requested().
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  std::string GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }

  /// Renders the usage table.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical string form
    std::string default_value;
  };

  Status Set(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace fewner::util
