#include "util/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fewner::util {

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kInt, help, std::to_string(default_value),
                      std::to_string(default_value)};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream oss;
  oss << default_value;
  flags_[name] = Flag{Type::kDouble, help, oss.str(), oss.str()};
}

void FlagParser::AddString(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kString, help, default_value, default_value};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, help, v, v};
}

Status FlagParser::Set(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + " expects an integer, got '" +
                                       value + "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + " expects a number, got '" +
                                       value + "'");
      }
      break;
    }
    case Type::kBool:
      if (value != "true" && value != "false") {
        return Status::InvalidArgument("flag --" + name + " expects true/false, got '" +
                                       value + "'");
      }
      break;
    case Type::kString:
      break;
  }
  flag.value = value;
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::cout << Usage(argv[0]);
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected a flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " is missing a value");
      }
    }
    FEWNER_RETURN_IF_ERROR(Set(name, value));
  }
  return Status::OK();
}

int64_t FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  FEWNER_CHECK(it != flags_.end() && it->second.type == Type::kInt,
               "GetInt on unregistered flag " << name);
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  FEWNER_CHECK(it != flags_.end() && it->second.type == Type::kDouble,
               "GetDouble on unregistered flag " << name);
  return std::strtod(it->second.value.c_str(), nullptr);
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  FEWNER_CHECK(it != flags_.end() && it->second.type == Type::kString,
               "GetString on unregistered flag " << name);
  return it->second.value;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  FEWNER_CHECK(it != flags_.end() && it->second.type == Type::kBool,
               "GetBool on unregistered flag " << name);
  return it->second.value == "true";
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream oss;
  oss << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    oss << "  --" << name << " (default: " << flag.default_value << ")\n      "
        << flag.help << "\n";
  }
  return oss.str();
}

}  // namespace fewner::util
