// Minimal leveled logging to stderr.
//
// Usage: FEWNER_LOG(INFO) << "meta iteration " << it << " loss " << loss;
// The global threshold is controlled with SetLogLevel (benches expose
// --verbose / --quiet on top of it).

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fewner::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

/// Sets the minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and flushes it (with prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the threshold without evaluating stream args.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

// Severity aliases consumed by the FEWNER_LOG macro token-pasting.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARNING = LogLevel::kWarning;
inline constexpr LogLevel kERROR = LogLevel::kError;

}  // namespace fewner::util

#define FEWNER_LOG(severity)                                                        \
  for (bool fewner_log_once_ =                                                     \
           ::fewner::util::k##severity >= ::fewner::util::GetLogLevel();           \
       fewner_log_once_; fewner_log_once_ = false)                                 \
  ::fewner::util::internal::LogMessage(::fewner::util::k##severity, __FILE__,      \
                                       __LINE__)                                   \
      .stream()
