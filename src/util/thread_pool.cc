#include "util/thread_pool.h"

#include <cstdlib>
#include <string>

#include "util/status.h"

namespace fewner::util {

ThreadPool::ThreadPool(int64_t num_threads) {
  FEWNER_CHECK(num_threads >= 1, "ThreadPool needs at least one worker");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int64_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  FEWNER_CHECK(task != nullptr, "Submit of empty task");
  {
    std::unique_lock<std::mutex> lock(mu_);
    FEWNER_CHECK(!stop_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

int64_t ThreadCountFromEnv(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0) return 1;
  if (value == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int64_t>(hw);
  }
  return static_cast<int64_t>(value);
}

int64_t ThreadPool::DefaultThreadCount() {
  return ThreadCountFromEnv("FEWNER_THREADS");
}

}  // namespace fewner::util
