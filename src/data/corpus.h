// Corpus types: tokenized sentences with labeled entity mentions.

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "text/bio.h"

namespace fewner::data {

/// One tokenized sentence with its entity mentions (labels are type names).
struct Sentence {
  std::vector<std::string> tokens;
  std::vector<text::Span> entities;
  std::string domain;  ///< source domain (used by ACE-2005 style corpora)

  /// Distinct entity type names present in this sentence.
  std::set<std::string> EntityTypeSet() const {
    std::set<std::string> types;
    for (const auto& e : entities) types.insert(e.label);
    return types;
  }
};

/// A named collection of sentences with a fixed entity-type inventory.
struct Corpus {
  std::string name;
  std::string genre;
  std::vector<std::string> entity_types;
  std::vector<Sentence> sentences;

  /// Total number of entity mentions.
  int64_t MentionCount() const {
    int64_t n = 0;
    for (const auto& s : sentences) n += static_cast<int64_t>(s.entities.size());
    return n;
  }

  /// Sentences whose domain field matches (all sentences when `domain` empty).
  Corpus FilterDomain(const std::string& domain) const {
    Corpus out;
    out.name = name + (domain.empty() ? "" : ":" + domain);
    out.genre = genre;
    out.entity_types = entity_types;
    for (const auto& s : sentences) {
      if (domain.empty() || s.domain == domain) out.sentences.push_back(s);
    }
    return out;
  }
};

/// Disjoint partition of a type inventory for cross-type adaptation
/// (train/val/test types never overlap; paper §4.2.1).
struct TypeSplit {
  std::vector<std::string> train;
  std::vector<std::string> val;
  std::vector<std::string> test;
};

}  // namespace fewner::data
