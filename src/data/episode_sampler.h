// N-way K-shot task construction for sequence labeling (paper §3.1).
//
// Because a sentence carries an unknown number of entities of entangled
// classes, the support set is built with the paper's greedy-including
// procedure: sentences are sampled and kept only when they add a new class
// ("gain for way") while ways remain open, or raise an under-filled class
// count ("gain for shot").  A final pruning pass enforces the paper's
// minimality property: removing any support sentence leaves some class with
// fewer than K mentions.
//
// Mentions of types outside the episode's N ways are treated as O, and the
// query set is drawn from the remaining sentences that mention at least one of
// the episode's classes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "util/rng.h"

namespace fewner::data {

/// One N-way K-shot task.
struct Episode {
  /// Entity types of this task; index in this vector is the slot id.
  std::vector<std::string> types;
  std::vector<const Sentence*> support;
  std::vector<const Sentence*> query;
  int64_t n_way() const { return static_cast<int64_t>(types.size()); }
};

/// Samples deterministic episodes from a corpus restricted to an allowed type
/// inventory.  Episode `id` is a pure function of (corpus, allowed types,
/// settings, seed, id) — the paper evaluates all methods on the same fixed
/// list of 1000 tasks by fixing the seed, and so do we.
class EpisodeSampler {
 public:
  EpisodeSampler(const Corpus* corpus, std::vector<std::string> allowed_types,
                 int64_t n_way, int64_t k_shot, int64_t query_size, uint64_t seed);

  /// Builds episode `id`.  Aborts if the corpus cannot support the
  /// configuration (too few types or sentences) after bounded retries.
  Episode Sample(uint64_t id) const;

  int64_t n_way() const { return n_way_; }
  int64_t k_shot() const { return k_shot_; }

  /// Number of candidate sentences (those with at least one allowed mention).
  int64_t CandidateCount() const { return static_cast<int64_t>(candidates_.size()); }

 private:
  /// One construction attempt; returns false if the shuffled stream ran out
  /// before reaching N ways with K shots each.
  bool TryBuild(util::Rng* rng, Episode* episode) const;

  const Corpus* corpus_;
  std::vector<std::string> allowed_types_;
  int64_t n_way_;
  int64_t k_shot_;
  int64_t query_size_;
  uint64_t seed_;
  std::vector<const Sentence*> candidates_;
};

/// Maps each entity of `sentence` to its slot in `types` (-1 when the type is
/// not part of the episode).  Helper shared by models and tests.
std::vector<int64_t> SlotsFor(const Sentence& sentence,
                              const std::vector<std::string>& types);

}  // namespace fewner::data
