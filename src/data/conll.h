// CoNLL-2003-style corpus I/O.
//
// This is the adoption path for real corpora: the paper's datasets (OntoNotes,
// GENIA exports, BioNLP13CG, ...) are commonly distributed in CoNLL column
// format — one token per line, blank line between sentences, the last column
// a BIO/BIO2 label such as "B-PER".  ReadConll turns such files into the same
// data::Corpus structures the synthetic factory produces, so every sampler,
// model and bench in this repo runs unchanged on real data.
//
// Supported conventions:
//   - any number of whitespace-separated columns; token = first, label = last
//   - "-DOCSTART-" lines are skipped
//   - labels: "O", "B-X", "I-X" (a dangling I-X opens a span, as conlleval)
//   - comment lines starting with "#" are skipped

#pragma once

#include <iosfwd>
#include <string>

#include "data/corpus.h"
#include "util/status.h"

namespace fewner::data {

/// Parses CoNLL text from a stream into a corpus named `name`.
util::Result<Corpus> ReadConllStream(std::istream* in, const std::string& name);

/// Reads a CoNLL file from disk.
util::Result<Corpus> ReadConllFile(const std::string& path);

/// Writes a corpus in two-column CoNLL format (token, BIO label).
util::Status WriteConllStream(const Corpus& corpus, std::ostream* out);

/// Writes a corpus to a CoNLL file.
util::Status WriteConllFile(const Corpus& corpus, const std::string& path);

}  // namespace fewner::data
