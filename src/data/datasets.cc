#include "data/datasets.h"

#include <algorithm>

#include "util/rng.h"
#include "util/status.h"

namespace fewner::data {

namespace {

/// ACE-2005 domain styles.  shared_vocab_fraction and template_style encode
/// domain distance: BN and CTS are close (both broadcast speech, high shared
/// vocabulary), BC and UN are far (conversation vs. noisy forum), NW and WL
/// sit in between — matching the hardness ordering the paper observes
/// (BN→CTS easiest, BC→UN hardest).
std::vector<DomainStyle> AceDomainStyles() {
  auto make = [](const char* name, double shared, int64_t style, double trigger_p) {
    DomainStyle d;
    d.name = name;
    d.shared_vocab_fraction = shared;
    d.template_style = style;
    d.trigger_probability = trigger_p;
    d.vocab_seed = util::HashString(std::string("ace:") + name);
    return d;
  };
  return {
      make("BC", 0.60, 1, 0.75),  // broadcast conversation: speech style
      make("BN", 0.85, 1, 0.85),  // broadcast news: speech style, rich vocab
      make("CTS", 0.80, 1, 0.80), // telephone speech: close to BN
      make("NW", 0.75, 0, 0.90),  // newswire: written
      make("UN", 0.30, 2, 0.55),  // usenet: forum noise, far from everything
      make("WL", 0.50, 2, 0.70),  // weblog: forum-ish, mid distance
  };
}

DomainStyle SingleDomain(const std::string& dataset) {
  DomainStyle d;
  d.name = "";
  d.shared_vocab_fraction = 0.7;
  d.template_style = 0;
  d.trigger_probability = 0.8;
  d.vocab_seed = util::HashString("dataset:" + dataset);
  return d;
}

}  // namespace

SyntheticSpec SpecFor(const std::string& name, double scale) {
  FEWNER_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got " << scale);
  SyntheticSpec spec;
  spec.name = name;
  spec.seed = util::HashString("corpus:" + name);
  spec.domains = {SingleDomain(name)};

  // Type-pool offsets keep every dataset's type lexicon disjoint.
  if (name == kNne) {
    spec.genre = "newswire";
    spec.num_types = 114;
    spec.num_sentences = 39932;
    spec.mentions_per_sentence = 4.66;  // 185925 / 39932
    spec.type_pool_offset = 0;
  } else if (name == kFgNer) {
    spec.genre = "newswire";
    spec.num_types = 200;
    spec.num_sentences = 3941;
    spec.mentions_per_sentence = 1.87;  // 7384 / 3941
    spec.type_pool_offset = 1000;
  } else if (name == kGenia) {
    spec.genre = "medical";
    spec.num_types = 36;
    spec.num_sentences = 18546;
    spec.mentions_per_sentence = 4.13;  // 76625 / 18546
    spec.type_pool_offset = 2000;
  } else if (name == kAce2005) {
    spec.genre = "various";
    spec.num_types = 54;
    spec.num_sentences = 17399;
    spec.mentions_per_sentence = 2.78;  // 48397 / 17399
    spec.type_pool_offset = 3000;
    spec.domains = AceDomainStyles();
  } else if (name == kOntoNotes) {
    spec.genre = "various";
    spec.num_types = 18;
    spec.num_sentences = 42224;
    spec.mentions_per_sentence = 2.47;  // 104248 / 42224
    spec.type_pool_offset = 4000;
  } else if (name == kBioNlp13Cg) {
    spec.genre = "medical";
    spec.num_types = 16;
    spec.num_sentences = 5939;
    spec.mentions_per_sentence = 3.59;  // 21315 / 5939
    spec.type_pool_offset = 5000;
  } else {
    FEWNER_CHECK(false, "unknown dataset '" << name << "'");
  }

  // Scaled corpora keep a floor of ~2000 sentences (capped by the full size):
  // sparse inventories like FG-NER (200 types, 1.87 mentions/sentence) cannot
  // support 5-way 5-shot episode construction below that.
  const int64_t floor_sentences =
      std::min<int64_t>(spec.num_sentences,
                        std::max<int64_t>(2000, 64 * static_cast<int64_t>(
                                                         spec.domains.size())));
  spec.num_sentences = std::max<int64_t>(
      static_cast<int64_t>(spec.num_sentences * scale), floor_sentences);
  return spec;
}

Corpus MakeDataset(const std::string& name, double scale) {
  return GenerateCorpus(SpecFor(name, scale));
}

std::vector<std::string> AllDatasetNames() {
  return {kNne, kFgNer, kGenia, kAce2005, kOntoNotes, kBioNlp13Cg};
}

TypeSplit SplitTypes(const std::vector<std::string>& types, int64_t n_train,
                     int64_t n_val, int64_t n_test, uint64_t seed) {
  FEWNER_CHECK(n_train + n_val + n_test <= static_cast<int64_t>(types.size()),
               "split " << n_train << "/" << n_val << "/" << n_test << " needs more than "
                        << types.size() << " types");
  std::vector<std::string> shuffled = types;
  util::Rng rng(seed);
  rng.Shuffle(&shuffled);
  TypeSplit split;
  auto it = shuffled.begin();
  split.train.assign(it, it + n_train);
  it += n_train;
  split.val.assign(it, it + n_val);
  it += n_val;
  split.test.assign(it, it + n_test);
  return split;
}

void IntraDomainSplitSizes(const std::string& name, int64_t* n_train, int64_t* n_val,
                           int64_t* n_test) {
  if (name == kNne) {
    *n_train = 52, *n_val = 10, *n_test = 15;
  } else if (name == kFgNer) {
    *n_train = 163, *n_val = 15, *n_test = 20;
  } else if (name == kGenia) {
    *n_train = 18, *n_val = 8, *n_test = 10;
  } else {
    FEWNER_CHECK(false, "no intra-domain split sizes for '" << name << "'");
  }
}

}  // namespace fewner::data
