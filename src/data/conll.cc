#include "data/conll.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace fewner::data {

namespace {

/// Accumulates one sentence's tokens + string labels and finalizes spans.
class SentenceAccumulator {
 public:
  bool empty() const { return tokens_.empty(); }

  void Add(std::string token, std::string label) {
    tokens_.push_back(std::move(token));
    labels_.push_back(std::move(label));
  }

  /// Converts BIO labels to spans (conlleval-style recovery for dangling I-).
  util::Result<Sentence> Finish() {
    Sentence sentence;
    sentence.tokens = std::move(tokens_);
    int64_t span_start = -1;
    std::string span_type;
    auto flush = [&](int64_t end) {
      if (span_start >= 0) {
        sentence.entities.push_back(text::Span{span_start, end, span_type});
        span_start = -1;
      }
    };
    for (size_t i = 0; i < labels_.size(); ++i) {
      const std::string& label = labels_[i];
      const int64_t pos = static_cast<int64_t>(i);
      if (label == "O") {
        flush(pos);
      } else if (util::StartsWith(label, "B-")) {
        flush(pos);
        span_start = pos;
        span_type = label.substr(2);
      } else if (util::StartsWith(label, "I-")) {
        const std::string type = label.substr(2);
        if (span_start >= 0 && type == span_type) continue;
        flush(pos);  // dangling I- starts a new span
        span_start = pos;
        span_type = type;
      } else {
        return util::Status::InvalidArgument("unrecognized label '" + label +
                                             "' at token " + std::to_string(i));
      }
    }
    flush(static_cast<int64_t>(labels_.size()));
    tokens_.clear();
    labels_.clear();
    return sentence;
  }

 private:
  std::vector<std::string> tokens_;
  std::vector<std::string> labels_;
};

}  // namespace

util::Result<Corpus> ReadConllStream(std::istream* in, const std::string& name) {
  Corpus corpus;
  corpus.name = name;
  corpus.genre = "unknown";
  SentenceAccumulator accumulator;
  std::set<std::string> types;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    // Trim trailing carriage return (Windows-formatted files).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const bool blank = line.find_first_not_of(" \t") == std::string::npos;
    if (blank) {
      if (!accumulator.empty()) {
        auto sentence = accumulator.Finish();
        if (!sentence.ok()) {
          return util::Status::InvalidArgument(
              sentence.status().message() + " (near line " +
              std::to_string(line_number) + ")");
        }
        for (const auto& e : sentence.value().entities) types.insert(e.label);
        corpus.sentences.push_back(std::move(sentence).value());
      }
      continue;
    }
    if (line[0] == '#') continue;
    std::vector<std::string> columns = util::Split(line, ' ');
    if (columns.size() == 1) columns = util::Split(line, '\t');
    if (columns.empty()) continue;
    if (columns[0] == "-DOCSTART-") continue;
    if (columns.size() < 2) {
      return util::Status::InvalidArgument("line " + std::to_string(line_number) +
                                           " has no label column: '" + line + "'");
    }
    accumulator.Add(columns.front(), columns.back());
  }
  if (!accumulator.empty()) {
    auto sentence = accumulator.Finish();
    if (!sentence.ok()) return sentence.status();
    for (const auto& e : sentence.value().entities) types.insert(e.label);
    corpus.sentences.push_back(std::move(sentence).value());
  }
  if (corpus.sentences.empty()) {
    return util::Status::InvalidArgument("no sentences in CoNLL input '" + name + "'");
  }
  corpus.entity_types.assign(types.begin(), types.end());
  return corpus;
}

util::Result<Corpus> ReadConllFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open '" + path + "'");
  return ReadConllStream(&in, path);
}

util::Status WriteConllStream(const Corpus& corpus, std::ostream* out) {
  for (const Sentence& sentence : corpus.sentences) {
    // Per-token labels reconstructed from spans.
    std::vector<std::string> labels(sentence.tokens.size(), "O");
    for (const auto& span : sentence.entities) {
      if (span.start < 0 ||
          span.end > static_cast<int64_t>(sentence.tokens.size())) {
        return util::Status::InvalidArgument("span out of range in sentence");
      }
      labels[static_cast<size_t>(span.start)] = "B-" + span.label;
      for (int64_t t = span.start + 1; t < span.end; ++t) {
        labels[static_cast<size_t>(t)] = "I-" + span.label;
      }
    }
    for (size_t t = 0; t < sentence.tokens.size(); ++t) {
      (*out) << sentence.tokens[t] << " " << labels[t] << "\n";
    }
    (*out) << "\n";
  }
  return util::Status::OK();
}

util::Status WriteConllFile(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::Status::InvalidArgument("cannot open '" + path + "'");
  util::Status status = WriteConllStream(corpus, &out);
  if (!status.ok()) return status;
  if (!out) return util::Status::Internal("write failed for '" + path + "'");
  return util::Status::OK();
}

}  // namespace fewner::data
