// Slot-filling corpus generator — the paper's §5 extension claim ("our
// approach can be easily extended to other sequence labeling tasks, such as
// part-of-speech tagging and slot filling").
//
// Task-oriented dialogue utterances ("play SONG by ARTIST", "book a table in
// CITY for COUNT at TIME") are generated with their slot values annotated as
// spans, producing the same data::Corpus structure NER uses — so the episode
// sampler, FEWNER and every baseline run unchanged on few-shot slot filling.

#pragma once

#include <cstdint>

#include "data/corpus.h"

namespace fewner::data {

/// Configuration of the synthetic dialogue corpus.
struct SlotFillingSpec {
  int64_t num_utterances = 2000;
  uint64_t seed = 11;
};

/// Generates the slot-filling corpus (12 slot types across music, dining,
/// travel and alarm intents).
Corpus GenerateSlotFillingCorpus(const SlotFillingSpec& spec);

}  // namespace fewner::data
