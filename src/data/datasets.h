// Named dataset registry reproducing Table 1 of the paper.
//
// Each factory returns the synthetic counterpart of one evaluation corpus,
// with the paper's type counts, sentence counts and mention densities.  A
// `scale` in (0, 1] shrinks sentence counts proportionally for CPU-tractable
// runs (type inventories are never scaled); benches default to a small scale
// and accept --scale 1.0 to regenerate the full-size corpora.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/synthetic.h"

namespace fewner::data {

/// Dataset names accepted by MakeDataset.
inline constexpr const char* kNne = "NNE";
inline constexpr const char* kFgNer = "FG-NER";
inline constexpr const char* kGenia = "GENIA";
inline constexpr const char* kAce2005 = "ACE2005";
inline constexpr const char* kOntoNotes = "OntoNotes";
inline constexpr const char* kBioNlp13Cg = "BioNLP13CG";

/// ACE-2005 domain codes (paper §4.3.1).
inline constexpr const char* kAceDomains[] = {"BC", "BN", "CTS", "NW", "UN", "WL"};

/// Spec for a named dataset at the given scale.
SyntheticSpec SpecFor(const std::string& name, double scale);

/// Generates a named dataset (see the k* constants above).
Corpus MakeDataset(const std::string& name, double scale = 1.0);

/// All six dataset names in Table 1 order.
std::vector<std::string> AllDatasetNames();

/// Splits a type inventory into disjoint train/val/test partitions of the
/// given sizes (paper §4.2.1: NNE 52/10/15, FG-NER 163/15/20, GENIA 18/8/10;
/// leftover types are dropped, as in the paper).  Deterministic in `seed`.
TypeSplit SplitTypes(const std::vector<std::string>& types, int64_t n_train,
                     int64_t n_val, int64_t n_test, uint64_t seed);

/// The paper's type-split sizes for the three intra-domain datasets.
void IntraDomainSplitSizes(const std::string& name, int64_t* n_train, int64_t* n_val,
                           int64_t* n_test);

}  // namespace fewner::data
