#include "data/slot_filling.h"

#include "util/rng.h"
#include "util/status.h"

namespace fewner::data {

namespace {

using util::Rng;

/// A template token is either a literal word or a slot placeholder.
struct Piece {
  const char* literal;  ///< nullptr for slot placeholders
  const char* slot;     ///< slot type name when literal is nullptr
};

struct Template {
  std::vector<Piece> pieces;
};

/// Slot value lexicons.  Values mix real-ish patterns (times, counts) with
/// generated names so test-time out-of-vocabulary behaviour mirrors NER.
std::vector<std::string> ValuesFor(const std::string& slot, Rng* rng) {
  auto pseudo = [&](int syllables, bool capitalize) {
    static const char* const kSyl[] = {"mo", "ra", "vel", "tin", "sor", "ba",
                                       "lu", "ke", "dro", "fan", "mi", "sha"};
    std::string word;
    for (int i = 0; i < syllables; ++i) word += kSyl[rng->UniformInt(12)];
    if (capitalize) word[0] = static_cast<char>(word[0] - 'a' + 'A');
    return word;
  };
  std::vector<std::string> values;
  if (slot == "song" || slot == "playlist" || slot == "artist" ||
      slot == "restaurant" || slot == "city" || slot == "airline") {
    const bool multiword = slot == "song" || slot == "restaurant";
    for (int i = 0; i < 18; ++i) {
      std::string value = pseudo(2, true);
      if (multiword && rng->Bernoulli(0.5)) value += " " + pseudo(2, true);
      values.push_back(value);
    }
  } else if (slot == "time") {
    for (int h = 1; h <= 12; ++h) {
      values.push_back(std::to_string(h) + (h % 2 ? "pm" : "am"));
      values.push_back(std::to_string(h) + ":30" + (h % 2 ? "am" : "pm"));
    }
  } else if (slot == "date") {
    for (const char* d : {"monday", "tuesday", "wednesday", "thursday", "friday",
                          "saturday", "sunday", "tomorrow", "tonight", "today"}) {
      values.push_back(d);
    }
  } else if (slot == "count") {
    for (int n = 1; n <= 12; ++n) values.push_back(std::to_string(n));
  } else if (slot == "genre") {
    for (const char* g : {"jazz", "rock", "folk", "techno", "soul", "opera",
                          "blues", "salsa"}) {
      values.push_back(g);
    }
  } else if (slot == "cuisine") {
    for (const char* c : {"thai", "italian", "mexican", "sushi", "vegan",
                          "barbecue", "ramen", "tapas"}) {
      values.push_back(c);
    }
  } else if (slot == "duration") {
    for (int n = 5; n <= 60; n += 5) {
      values.push_back(std::to_string(n) + "min");
    }
  }
  FEWNER_CHECK(!values.empty(), "no lexicon for slot '" << slot << "'");
  return values;
}

std::vector<Template> Templates() {
  auto lit = [](const char* w) { return Piece{w, nullptr}; };
  auto slot = [](const char* s) { return Piece{nullptr, s}; };
  return {
      // music intent
      {{lit("play"), slot("song"), lit("by"), slot("artist")}},
      {{lit("add"), slot("song"), lit("to"), lit("my"), slot("playlist"),
        lit("playlist")}},
      {{lit("put"), lit("on"), lit("some"), slot("genre"), lit("music")}},
      {{lit("play"), lit("the"), slot("playlist"), lit("playlist"), lit("on"),
        lit("shuffle")}},
      // dining intent
      {{lit("book"), lit("a"), lit("table"), lit("at"), slot("restaurant"),
        lit("for"), slot("count"), lit("people"), lit("at"), slot("time")}},
      {{lit("find"), lit("me"), lit("a"), slot("cuisine"), lit("place"), lit("in"),
        slot("city")}},
      {{lit("reserve"), slot("restaurant"), lit("for"), slot("date"), lit("at"),
        slot("time")}},
      // travel intent
      {{lit("book"), lit("a"), slot("airline"), lit("flight"), lit("to"),
        slot("city"), lit("on"), slot("date")}},
      {{lit("how"), lit("long"), lit("is"), lit("the"), lit("flight"), lit("to"),
        slot("city")}},
      // alarm intent
      {{lit("set"), lit("an"), lit("alarm"), lit("for"), slot("time"), lit("on"),
        slot("date")}},
      {{lit("remind"), lit("me"), lit("in"), slot("duration"), lit("to"),
        lit("call"), slot("artist")}},
      {{lit("snooze"), lit("for"), slot("duration")}},
  };
}

}  // namespace

Corpus GenerateSlotFillingCorpus(const SlotFillingSpec& spec) {
  Corpus corpus;
  corpus.name = "slot-filling";
  corpus.genre = "dialogue";
  corpus.entity_types = {"song",  "artist",  "playlist",   "genre",
                         "restaurant", "cuisine", "city", "airline",
                         "time",  "date",    "count",      "duration"};

  Rng rng(spec.seed);
  std::vector<std::vector<std::string>> lexicons;
  for (const auto& slot : corpus.entity_types) {
    Rng lexicon_rng = rng.Fork(util::HashString("slot:" + slot));
    lexicons.push_back(ValuesFor(slot, &lexicon_rng));
  }
  auto lexicon_of = [&](const std::string& slot) -> const std::vector<std::string>& {
    for (size_t i = 0; i < corpus.entity_types.size(); ++i) {
      if (corpus.entity_types[i] == slot) return lexicons[i];
    }
    FEWNER_CHECK(false, "unknown slot '" << slot << "'");
    return lexicons[0];
  };

  const std::vector<Template> templates = Templates();
  for (int64_t u = 0; u < spec.num_utterances; ++u) {
    const Template& tpl = templates[rng.UniformInt(templates.size())];
    Sentence sentence;
    for (const Piece& piece : tpl.pieces) {
      if (piece.literal != nullptr) {
        sentence.tokens.push_back(piece.literal);
        continue;
      }
      const auto& lexicon = lexicon_of(piece.slot);
      const std::string& value = lexicon[rng.UniformInt(lexicon.size())];
      const int64_t start = static_cast<int64_t>(sentence.tokens.size());
      size_t begin = 0;
      while (begin <= value.size()) {
        const size_t space = value.find(' ', begin);
        const size_t end = (space == std::string::npos) ? value.size() : space;
        sentence.tokens.push_back(value.substr(begin, end - begin));
        begin = end + 1;
        if (space == std::string::npos) break;
      }
      sentence.entities.push_back(text::Span{
          start, static_cast<int64_t>(sentence.tokens.size()), piece.slot});
    }
    corpus.sentences.push_back(std::move(sentence));
  }
  return corpus;
}

}  // namespace fewner::data
