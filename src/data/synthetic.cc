#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace fewner::data {

namespace {

using util::Rng;

// ----- pseudo-word machinery -----

const char* const kOnsets[] = {"b",  "br", "c",  "ch", "d",  "dr", "f",  "g",
                               "gr", "h",  "j",  "k",  "l",  "m",  "n",  "p",
                               "pr", "r",  "s",  "st", "t",  "tr", "v",  "w"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
const char* const kCodas[] = {"", "n", "r", "l", "s", "t", "m", "ck"};

std::string Syllable(Rng* rng) {
  std::string s = kOnsets[rng->UniformInt(sizeof(kOnsets) / sizeof(kOnsets[0]))];
  s += kVowels[rng->UniformInt(sizeof(kVowels) / sizeof(kVowels[0]))];
  s += kCodas[rng->UniformInt(sizeof(kCodas) / sizeof(kCodas[0]))];
  return s;
}

std::string PseudoWord(Rng* rng, int64_t min_syllables, int64_t max_syllables) {
  const int64_t n =
      min_syllables + static_cast<int64_t>(rng->UniformInt(
                          static_cast<uint64_t>(max_syllables - min_syllables + 1)));
  std::string word;
  for (int64_t i = 0; i < n; ++i) word += Syllable(rng);
  return word;
}

std::string Capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

// ----- trigger lexicons (fixed, shared world knowledge) -----

const std::vector<std::string>& PreTriggerPool(TriggerFamily family) {
  static const std::vector<std::string> person = {"Mr.",       "Mrs.",    "Dr.",
                                                  "President", "Senator", "coach",
                                                  "spokesman", "actor"};
  static const std::vector<std::string> org = {"the",     "rival",  "giant",
                                               "company", "agency", "firm"};
  static const std::vector<std::string> loc = {"in",   "at",     "near",
                                               "from", "across", "outside"};
  static const std::vector<std::string> bio = {"expression", "activation", "binding",
                                               "levels",     "induction",  "pathway"};
  static const std::vector<std::string> clinical = {"diagnosed", "chronic", "acute",
                                                    "severe",    "patients", "treated"};
  static const std::vector<std::string> work = {"painting", "film",  "novel",
                                                "album",    "opera", "series"};
  static const std::vector<std::string> product = {"new",     "flagship", "model",
                                                   "popular", "latest",   "branded"};
  static const std::vector<std::string> event = {"during", "after", "before",
                                                 "amid",   "since", "following"};
  switch (family) {
    case TriggerFamily::kPerson:
      return person;
    case TriggerFamily::kOrganization:
      return org;
    case TriggerFamily::kLocation:
      return loc;
    case TriggerFamily::kBioProcess:
      return bio;
    case TriggerFamily::kClinical:
      return clinical;
    case TriggerFamily::kWork:
      return work;
    case TriggerFamily::kProduct:
      return product;
    case TriggerFamily::kEvent:
      return event;
  }
  return person;
}

const std::vector<std::string>& PostTriggerPool(TriggerFamily family) {
  static const std::vector<std::string> person = {"said",  "told",    "argued",
                                                  "added", "claimed", "resigned"};
  static const std::vector<std::string> org = {"announced", "reported", "shares",
                                               "officials", "employees", "filed"};
  static const std::vector<std::string> loc = {"region",   "area",    "border",
                                               "province", "streets", "residents"};
  static const std::vector<std::string> bio = {"protein",  "receptor", "cells",
                                               "promoter", "gene",     "complex"};
  static const std::vector<std::string> clinical = {"symptoms", "tumor", "tissue",
                                                    "therapy",  "cases", "lesions"};
  static const std::vector<std::string> work = {"premiered", "sold",    "exhibited",
                                                "depicts",   "missing", "restored"};
  static const std::vector<std::string> product = {"launched", "sales",   "recall",
                                                   "units",    "upgrade", "review"};
  static const std::vector<std::string> event = {"began",   "ended",    "erupted",
                                                 "victims", "aftermath", "anniversary"};
  switch (family) {
    case TriggerFamily::kPerson:
      return person;
    case TriggerFamily::kOrganization:
      return org;
    case TriggerFamily::kLocation:
      return loc;
    case TriggerFamily::kBioProcess:
      return bio;
    case TriggerFamily::kClinical:
      return clinical;
    case TriggerFamily::kWork:
      return work;
    case TriggerFamily::kProduct:
      return product;
    case TriggerFamily::kEvent:
      return event;
  }
  return person;
}

const char* FamilyPrefix(TriggerFamily family) {
  switch (family) {
    case TriggerFamily::kPerson:
      return "Person";
    case TriggerFamily::kOrganization:
      return "Organization";
    case TriggerFamily::kLocation:
      return "Location";
    case TriggerFamily::kBioProcess:
      return "BioProcess";
    case TriggerFamily::kClinical:
      return "Clinical";
    case TriggerFamily::kWork:
      return "Work";
    case TriggerFamily::kProduct:
      return "Product";
    case TriggerFamily::kEvent:
      return "Event";
  }
  return "Type";
}

// ----- surface-form generation per morphology -----

const std::vector<std::string>& SuffixPool(Morphology morphology) {
  static const std::vector<std::string> org = {"Corp", "Inc", "Group", "Systems",
                                               "Association", "Industries"};
  static const std::vector<std::string> place = {"ville", "ton", "burg",
                                                 "land",  "port", "field"};
  static const std::vector<std::string> bio = {"ase", "in", "ol", "ide", "gen", "one"};
  static const std::vector<std::string> disease = {"oma", "itis", "osis", "emia",
                                                   "pathy", "plasia"};
  static const std::vector<std::string> none = {};
  switch (morphology) {
    case Morphology::kOrgWithSuffix:
      return org;
    case Morphology::kPlaceWithSuffix:
      return place;
    case Morphology::kBioSuffix:
      return bio;
    case Morphology::kDiseasePhrase:
      return disease;
    default:
      return none;
  }
}

/// Picks `count` items from a pool (with replacement-free sampling when
/// possible) — used to give each type a distinctive trigger/suffix subset.
std::vector<std::string> Subset(const std::vector<std::string>& pool, size_t count,
                                Rng* rng) {
  std::vector<std::string> items = pool;
  rng->Shuffle(&items);
  if (items.size() > count) items.resize(count);
  return items;
}

std::string MakeSurfaceForm(Morphology morphology,
                            const std::vector<std::string>& type_suffixes, Rng* rng) {
  auto suffix = [&]() -> std::string {
    if (type_suffixes.empty()) return "";
    return type_suffixes[rng->UniformInt(type_suffixes.size())];
  };
  switch (morphology) {
    case Morphology::kCapitalizedName:
      return Capitalize(PseudoWord(rng, 2, 3));
    case Morphology::kFullName:
      return Capitalize(PseudoWord(rng, 2, 2)) + " " + Capitalize(PseudoWord(rng, 2, 3));
    case Morphology::kOrgWithSuffix:
      return Capitalize(PseudoWord(rng, 2, 3)) + " " + suffix();
    case Morphology::kAcronym: {
      const int64_t n = 2 + static_cast<int64_t>(rng->UniformInt(3));
      std::string s;
      for (int64_t i = 0; i < n; ++i) {
        s += static_cast<char>('A' + rng->UniformInt(26));
      }
      return s;
    }
    case Morphology::kPlaceWithSuffix:
      return Capitalize(PseudoWord(rng, 1, 2) + suffix());
    case Morphology::kBioSuffix:
      return PseudoWord(rng, 2, 3) + suffix();
    case Morphology::kAlnumId: {
      std::string s(1, static_cast<char>(rng->Bernoulli(0.5) ? 'a' + rng->UniformInt(26)
                                                             : 'A' + rng->UniformInt(26)));
      if (rng->Bernoulli(0.4)) s += static_cast<char>('A' + rng->UniformInt(26));
      if (rng->Bernoulli(0.5)) s += '-';
      s += std::to_string(1 + rng->UniformInt(99));
      return s;
    }
    case Morphology::kDiseasePhrase: {
      std::string head = PseudoWord(rng, 1, 2) + suffix();
      if (rng->Bernoulli(0.5)) return PseudoWord(rng, 2, 2) + " " + head;
      return head;
    }
    case Morphology::kTitledWork: {
      static const char* const kLinkers[] = {"Of", "The", "And"};
      std::string s = Capitalize(PseudoWord(rng, 1, 2));
      const int64_t extra = 1 + static_cast<int64_t>(rng->UniformInt(2));
      for (int64_t i = 0; i < extra; ++i) {
        s += " ";
        s += kLinkers[rng->UniformInt(3)];
        s += " " + Capitalize(PseudoWord(rng, 1, 2));
      }
      return s;
    }
    case Morphology::kCodedProduct:
      return Capitalize(PseudoWord(rng, 2, 2)) + " " +
             std::string(1, static_cast<char>('A' + rng->UniformInt(26))) +
             std::to_string(100 + rng->UniformInt(900));
  }
  return Capitalize(PseudoWord(rng, 2, 3));
}

/// (morphology, trigger family) combinations available per genre.  Newswire
/// types are morphologically diverse; medical types share few patterns, making
/// them more confusable — the paper's "medical few-shot NER is harder".
std::vector<std::pair<Morphology, TriggerFamily>> GenreCombos(const std::string& genre) {
  using M = Morphology;
  using F = TriggerFamily;
  const std::vector<std::pair<M, F>> newswire = {
      {M::kCapitalizedName, F::kPerson}, {M::kFullName, F::kPerson},
      {M::kOrgWithSuffix, F::kOrganization}, {M::kAcronym, F::kOrganization},
      {M::kPlaceWithSuffix, F::kLocation}, {M::kTitledWork, F::kWork},
      {M::kCodedProduct, F::kProduct}, {M::kAcronym, F::kEvent},
      {M::kFullName, F::kEvent}};
  const std::vector<std::pair<M, F>> medical = {
      {M::kBioSuffix, F::kBioProcess}, {M::kAlnumId, F::kBioProcess},
      {M::kAcronym, F::kBioProcess},   {M::kBioSuffix, F::kClinical},
      {M::kAlnumId, F::kClinical},     {M::kDiseasePhrase, F::kClinical}};
  if (genre == "newswire") return newswire;
  if (genre == "medical") return medical;
  std::vector<std::pair<M, F>> various = newswire;
  various.insert(various.end(), medical.begin(), medical.end());
  return various;
}

// ----- filler vocabulary -----

std::vector<std::string> MakeFillerPool(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) pool.push_back(PseudoWord(&rng, 1, 3));
  return pool;
}

/// Function words shared by every domain (keeps sentences language-like and
/// gives all corpora a common backbone vocabulary).
const std::vector<std::string>& FunctionWords() {
  static const std::vector<std::string> words = {
      "the", "a",  "of",   "to",   "and", "was", "were", "has",  "have", "that",
      "for", "on", "with", "will", "is",  "are", "be",   "this", "its",  "by"};
  return words;
}

const std::vector<std::string>& StyleMarkers(int64_t style) {
  static const std::vector<std::string> written = {"meanwhile", "however", "reportedly",
                                                   "officials", "according"};
  static const std::vector<std::string> speech = {"well", "yeah", "um", "okay",
                                                  "right", "you", "know"};
  static const std::vector<std::string> forum = {"lol", "btw", "imo", "thread",
                                                 "posted", "repost"};
  if (style == 1) return speech;
  if (style == 2) return forum;
  return written;
}

/// The per-domain filler lexicon mixes a globally shared pool with a
/// domain-private pool; the mixing fraction is the domain-distance knob.
std::vector<std::string> DomainFillerLexicon(const DomainStyle& style) {
  static const uint64_t kSharedSeed = 0x5AFE5EEDull;
  const std::vector<std::string> shared = MakeFillerPool(kSharedSeed, 600);
  const std::vector<std::string> domain_private =
      MakeFillerPool(util::Mix64(style.vocab_seed + 0xD0A1Aull), 600);
  Rng rng(util::Mix64(style.vocab_seed + 0xF111ull));
  std::vector<std::string> lexicon;
  const size_t total = 400;
  for (size_t i = 0; i < total; ++i) {
    const bool from_shared = rng.Bernoulli(style.shared_vocab_fraction);
    const auto& source = from_shared ? shared : domain_private;
    lexicon.push_back(source[rng.UniformInt(source.size())]);
  }
  return lexicon;
}

}  // namespace

std::vector<EntityTypeSpec> GenerateTypes(const SyntheticSpec& spec) {
  const auto combos = GenreCombos(spec.genre);
  std::vector<EntityTypeSpec> types;
  types.reserve(static_cast<size_t>(spec.num_types));
  for (int64_t i = 0; i < spec.num_types; ++i) {
    // Types are keyed by their global id so distinct datasets (distinct pool
    // offsets) have distinct lexicons, while a dataset regenerates exactly.
    const uint64_t type_key =
        util::Mix64(0x7E57ull + static_cast<uint64_t>(spec.type_pool_offset + i));
    Rng rng(type_key);
    const auto& [morphology, family] = combos[rng.UniformInt(combos.size())];

    EntityTypeSpec type;
    type.name = std::string(FamilyPrefix(family)) +
                std::to_string(spec.type_pool_offset + i);
    type.morphology = morphology;
    type.trigger_family = family;

    // Each type gets a distinctive subset of its pattern's suffixes and its
    // family's triggers, so support examples identify the type within a task.
    const std::vector<std::string> suffixes = Subset(SuffixPool(morphology), 2, &rng);
    type.pre_triggers = Subset(PreTriggerPool(family), 2, &rng);
    type.post_triggers = Subset(PostTriggerPool(family), 3, &rng);
    // Real triggers are often type-revealing ("Inc.", "Sen.", "-itis
    // patients"): give each type two unique trigger lexemes alongside the
    // ambiguous family-shared ones.  This is the 1-shot binding signal that
    // support examples expose.
    type.pre_triggers.push_back(PseudoWord(&rng, 2, 2) + "an");
    type.pre_triggers.push_back(PseudoWord(&rng, 1, 2) + "ic");

    // Small gazetteers make surface forms recur between support and query —
    // the lexical-memorization path real NER exhibits ("U.S." repeats).
    const int64_t gazetteer_size = 16;
    for (int64_t g = 0; g < gazetteer_size; ++g) {
      type.gazetteer.push_back(MakeSurfaceForm(morphology, suffixes, &rng));
    }
    types.push_back(std::move(type));
  }
  return types;
}

Corpus GenerateCorpus(const SyntheticSpec& spec) {
  FEWNER_CHECK(!spec.domains.empty(), "spec needs at least one domain");
  Corpus corpus;
  corpus.name = spec.name;
  corpus.genre = spec.genre;
  const std::vector<EntityTypeSpec> types = GenerateTypes(spec);
  for (const auto& t : types) corpus.entity_types.push_back(t.name);

  const int64_t per_domain =
      spec.num_sentences / static_cast<int64_t>(spec.domains.size());

  for (const DomainStyle& domain : spec.domains) {
    const std::vector<std::string> fillers = DomainFillerLexicon(domain);
    const auto& function_words = FunctionWords();
    const auto& markers = StyleMarkers(domain.template_style);
    Rng rng(util::Mix64(spec.seed ^ util::HashString("domain:" + domain.name)));

    for (int64_t s = 0; s < per_domain; ++s) {
      Sentence sentence;
      sentence.domain = domain.name;

      auto add_filler = [&](int64_t count) {
        for (int64_t i = 0; i < count; ++i) {
          const double u = rng.Uniform();
          if (u < 0.35) {
            sentence.tokens.push_back(
                function_words[rng.UniformInt(function_words.size())]);
          } else if (u < 0.45) {
            sentence.tokens.push_back(markers[rng.UniformInt(markers.size())]);
          } else {
            sentence.tokens.push_back(fillers[rng.UniformInt(fillers.size())]);
          }
        }
      };

      // Mention count per sentence: rounded Gaussian around the target mean.
      int64_t mentions = static_cast<int64_t>(
          std::llround(rng.Gaussian(spec.mentions_per_sentence, 1.0)));
      mentions = std::max<int64_t>(1, std::min<int64_t>(6, mentions));

      add_filler(1 + static_cast<int64_t>(rng.UniformInt(2)));
      for (int64_t m = 0; m < mentions; ++m) {
        const EntityTypeSpec& type = types[rng.UniformInt(types.size())];
        const bool with_trigger = rng.Bernoulli(domain.trigger_probability);
        // Pre-triggers hug the mention (as titles/determiners do in real
        // text); they are the main few-shot context signal.
        if (with_trigger && !type.pre_triggers.empty() && rng.Bernoulli(0.9)) {
          sentence.tokens.push_back(
              type.pre_triggers[rng.UniformInt(type.pre_triggers.size())]);
        }
        const std::string& surface =
            type.gazetteer[rng.UniformInt(type.gazetteer.size())];
        const int64_t start = static_cast<int64_t>(sentence.tokens.size());
        size_t begin = 0;
        while (begin <= surface.size()) {
          const size_t space = surface.find(' ', begin);
          const size_t end = (space == std::string::npos) ? surface.size() : space;
          sentence.tokens.push_back(surface.substr(begin, end - begin));
          begin = end + 1;
          if (space == std::string::npos) break;
        }
        const int64_t finish = static_cast<int64_t>(sentence.tokens.size());
        sentence.entities.push_back(text::Span{start, finish, type.name});
        if (with_trigger && !type.post_triggers.empty() && rng.Bernoulli(0.5)) {
          sentence.tokens.push_back(
              type.post_triggers[rng.UniformInt(type.post_triggers.size())]);
        }
        add_filler(1 + static_cast<int64_t>(rng.UniformInt(2)));
      }
      sentence.tokens.push_back(".");
      corpus.sentences.push_back(std::move(sentence));
    }
  }
  return corpus;
}

std::vector<std::vector<std::string>> GenerateUnlabeledText(int64_t num_sentences,
                                                            uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "unlabeled";
  spec.genre = "various";
  spec.num_types = 40;
  spec.num_sentences = num_sentences;
  spec.mentions_per_sentence = 2.0;
  spec.seed = seed;
  spec.type_pool_offset = 900000;  // disjoint from every labeled dataset
  Corpus corpus = GenerateCorpus(spec);
  std::vector<std::vector<std::string>> text;
  text.reserve(corpus.sentences.size());
  for (auto& s : corpus.sentences) text.push_back(std::move(s.tokens));
  return text;
}

}  // namespace fewner::data
