#include "data/episode_sampler.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "util/status.h"

namespace fewner::data {

std::vector<int64_t> SlotsFor(const Sentence& sentence,
                              const std::vector<std::string>& types) {
  std::vector<int64_t> slots;
  slots.reserve(sentence.entities.size());
  for (const auto& entity : sentence.entities) {
    auto it = std::find(types.begin(), types.end(), entity.label);
    slots.push_back(it == types.end() ? -1
                                      : static_cast<int64_t>(it - types.begin()));
  }
  return slots;
}

EpisodeSampler::EpisodeSampler(const Corpus* corpus,
                               std::vector<std::string> allowed_types, int64_t n_way,
                               int64_t k_shot, int64_t query_size, uint64_t seed)
    : corpus_(corpus),
      allowed_types_(std::move(allowed_types)),
      n_way_(n_way),
      k_shot_(k_shot),
      query_size_(query_size),
      seed_(seed) {
  FEWNER_CHECK(corpus_ != nullptr, "EpisodeSampler requires a corpus");
  FEWNER_CHECK(n_way_ >= 1 && k_shot_ >= 1 && query_size_ >= 1,
               "invalid episode configuration " << n_way_ << "-way " << k_shot_
                                                << "-shot");
  FEWNER_CHECK(static_cast<int64_t>(allowed_types_.size()) >= n_way_,
               "only " << allowed_types_.size() << " allowed types for " << n_way_
                       << "-way tasks");
  std::unordered_set<std::string> allowed(allowed_types_.begin(),
                                          allowed_types_.end());
  for (const Sentence& sentence : corpus_->sentences) {
    for (const auto& entity : sentence.entities) {
      if (allowed.count(entity.label)) {
        candidates_.push_back(&sentence);
        break;
      }
    }
  }
  FEWNER_CHECK(!candidates_.empty(), "no sentences mention the allowed types");
}

bool EpisodeSampler::TryBuild(util::Rng* rng, Episode* episode) const {
  std::vector<const Sentence*> stream = candidates_;
  rng->Shuffle(&stream);
  std::unordered_set<std::string> allowed(allowed_types_.begin(),
                                          allowed_types_.end());

  std::vector<std::string> ways;                 // chosen classes, slot order
  std::map<std::string, int64_t> shot_counts;    // mentions per chosen class
  std::vector<const Sentence*> support;
  std::unordered_set<const Sentence*> in_support;

  auto complete = [&]() {
    if (static_cast<int64_t>(ways.size()) < n_way_) return false;
    for (const auto& way : ways) {
      if (shot_counts[way] < k_shot_) return false;
    }
    return true;
  };

  size_t cursor = 0;
  while (!complete() && cursor < stream.size()) {
    const Sentence* sentence = stream[cursor++];

    // Gain test (paper step 2): a new class while ways are open, or an
    // under-filled chosen class.
    bool gain = false;
    for (const auto& entity : sentence->entities) {
      if (!allowed.count(entity.label)) continue;
      const bool is_way =
          std::find(ways.begin(), ways.end(), entity.label) != ways.end();
      if (!is_way && static_cast<int64_t>(ways.size()) < n_way_) gain = true;
      if (is_way && shot_counts[entity.label] < k_shot_) gain = true;
    }
    if (!gain) continue;

    support.push_back(sentence);
    in_support.insert(sentence);
    for (const auto& entity : sentence->entities) {
      if (!allowed.count(entity.label)) continue;
      const bool is_way =
          std::find(ways.begin(), ways.end(), entity.label) != ways.end();
      if (is_way) {
        ++shot_counts[entity.label];
      } else if (static_cast<int64_t>(ways.size()) < n_way_) {
        ways.push_back(entity.label);
        shot_counts[entity.label] = 1;
      }
      // Types beyond the N-th way are treated as O for this task.
    }
  }
  if (!complete()) return false;

  // Minimality pruning (paper step 3): drop any sentence whose removal keeps
  // every chosen class at >= K mentions.
  for (auto it = support.begin(); it != support.end();) {
    std::map<std::string, int64_t> without;
    for (const auto& way : ways) without[way] = 0;
    bool removable = true;
    for (const Sentence* other : support) {
      if (other == *it) continue;
      for (const auto& entity : other->entities) {
        if (without.count(entity.label)) ++without[entity.label];
      }
    }
    for (const auto& way : ways) {
      if (without[way] < k_shot_) {
        removable = false;
        break;
      }
    }
    if (removable) {
      in_support.erase(*it);
      it = support.erase(it);
    } else {
      ++it;
    }
  }

  // Query set: remaining sentences mentioning at least one chosen class.
  std::vector<const Sentence*> query_pool;
  std::unordered_set<std::string> way_set(ways.begin(), ways.end());
  for (const Sentence* sentence : stream) {
    if (in_support.count(sentence)) continue;
    for (const auto& entity : sentence->entities) {
      if (way_set.count(entity.label)) {
        query_pool.push_back(sentence);
        break;
      }
    }
  }
  if (static_cast<int64_t>(query_pool.size()) < 1) return false;
  if (static_cast<int64_t>(query_pool.size()) > query_size_) {
    query_pool.resize(static_cast<size_t>(query_size_));
  }

  // Longest-first within each set (stable, so equal lengths keep their
  // sampling order): batch-first execution pads every lane to the set's
  // maximum length, and grouping long sentences up front keeps padded work
  // predictable without changing which sentences the episode contains.
  const auto longer = [](const Sentence* a, const Sentence* b) {
    return a->tokens.size() > b->tokens.size();
  };
  std::stable_sort(support.begin(), support.end(), longer);
  std::stable_sort(query_pool.begin(), query_pool.end(), longer);

  episode->types = ways;
  episode->support = support;
  episode->query = query_pool;
  return true;
}

Episode EpisodeSampler::Sample(uint64_t id) const {
  constexpr int kMaxAttempts = 32;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    util::Rng rng(util::Mix64(seed_ ^ util::Mix64(id * 2654435761ull + attempt)));
    Episode episode;
    if (TryBuild(&rng, &episode)) return episode;
  }
  FEWNER_CHECK(false, "could not build a " << n_way_ << "-way " << k_shot_
                                           << "-shot episode from corpus '"
                                           << corpus_->name << "' (id " << id << ")");
  return Episode{};
}

}  // namespace fewner::data
