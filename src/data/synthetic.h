// Synthetic corpus generator — the stand-in for the licensed corpora the paper
// evaluates on (NNE, FG-NER, GENIA, ACE2005, OntoNotes, BioNLP13CG).
//
// Few-shot NER transfer rides on three learnable signals, which the generator
// reproduces deliberately:
//   1. *Character morphology*: every entity type draws surface forms from a
//      morphology pattern (capitalized names, ALLCAPS acronyms, "-ase"/"-in"
//      bio suffixes, alphanumeric gene ids, ...).  Patterns are shared across
//      types — including unseen test types — so a character CNN can transfer;
//      the specific suffix/lexeme choices are per-type, so types remain
//      distinguishable within an episode.
//   2. *Lexical context triggers*: each type belongs to a trigger family
//      (person-like, org-like, bio-process, ...) that contributes words
//      adjacent to mentions ("Dr.", "said", "expression").
//   3. *Label-sequence structure*: templates produce multi-entity sentences
//      with genre-typical mention densities, exercising the CRF.
//
// Genres control hardness the way the paper reports: the medical genre uses
// fewer trigger families and heavily shared morphology (types are more
// confusable), reproducing "few-shot NER in the medical domain is harder".
// Domains (for ACE-2005) control filler-vocabulary overlap and template style,
// giving a calibrated notion of domain distance (BN↔CTS close, BC↔UN far).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "util/rng.h"

namespace fewner::data {

/// Identifier of a surface-form morphology pattern.
enum class Morphology {
  kCapitalizedName,   ///< "Brandon" — person-like single token
  kFullName,          ///< "Brandon Miller"
  kOrgWithSuffix,     ///< "Veltron Group"
  kAcronym,           ///< "NBA", "UNHCR"
  kPlaceWithSuffix,   ///< "Granville", "Bakerton"
  kBioSuffix,         ///< "kinase", "prolactin" — lowercase with bio suffix
  kAlnumId,           ///< "p53", "IL-2", "X200"
  kDiseasePhrase,     ///< "chronic bakeroma", multiword lowercase
  kTitledWork,        ///< "Portrait Of A Young Man"
  kCodedProduct,      ///< "Model X200", capitalized + code
};

/// Trigger families supply mention-adjacent context words.
enum class TriggerFamily {
  kPerson,
  kOrganization,
  kLocation,
  kBioProcess,
  kClinical,
  kWork,
  kProduct,
  kEvent,
};

/// One entity type with its generated lexicon.
struct EntityTypeSpec {
  std::string name;
  Morphology morphology;
  TriggerFamily trigger_family;
  std::vector<std::string> gazetteer;      ///< surface forms, space-joined tokens
  std::vector<std::string> pre_triggers;   ///< words appearing before mentions
  std::vector<std::string> post_triggers;  ///< words appearing after mentions
};

/// Per-domain style knobs (ACE-2005 cross-domain experiments).
struct DomainStyle {
  std::string name;                 ///< "" for single-domain corpora
  double shared_vocab_fraction = 0.7;  ///< filler words drawn from the global pool
  int64_t template_style = 0;       ///< 0 written, 1 speech, 2 forum
  double trigger_probability = 0.8; ///< chance a mention gets its trigger word
  uint64_t vocab_seed = 0;          ///< seed of the domain-private filler pool
};

/// Full description of a synthetic dataset.
struct SyntheticSpec {
  std::string name;
  std::string genre;  ///< "newswire", "medical", "various"
  int64_t num_types = 10;
  int64_t num_sentences = 1000;
  double mentions_per_sentence = 2.5;
  uint64_t seed = 1;
  /// Offset into the global type-id space so different datasets get disjoint
  /// type lexicons (GENIA types != OntoNotes types).
  int64_t type_pool_offset = 0;
  std::vector<DomainStyle> domains = {DomainStyle{}};
};

/// Generates the entity-type inventory for a spec (deterministic in the spec).
std::vector<EntityTypeSpec> GenerateTypes(const SyntheticSpec& spec);

/// Generates the full corpus (deterministic in the spec).
Corpus GenerateCorpus(const SyntheticSpec& spec);

/// Generates `num_sentences` of unlabeled text in the "various" genre for
/// language-model pre-training (the stand-in for the LMs' large corpora).
std::vector<std::vector<std::string>> GenerateUnlabeledText(int64_t num_sentences,
                                                            uint64_t seed);

}  // namespace fewner::data
