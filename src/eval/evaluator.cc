#include "eval/evaluator.h"

#include "text/bio.h"
#include "util/status.h"

namespace fewner::eval {

double EpisodeF1(const models::EncodedEpisode& episode,
                 const std::vector<std::vector<int64_t>>& predictions) {
  FEWNER_CHECK(predictions.size() == episode.query.size(),
               "got " << predictions.size() << " predictions for "
                      << episode.query.size() << " query sentences");
  text::SpanCounts counts;
  for (size_t i = 0; i < episode.query.size(); ++i) {
    counts.Accumulate(text::TagsToSpans(episode.query[i].tags),
                      text::TagsToSpans(predictions[i]));
  }
  return counts.F1();
}

EvalResult EvaluateMethod(meta::FewShotMethod* method,
                          const data::EpisodeSampler& sampler,
                          const models::EpisodeEncoder& encoder, int64_t episodes,
                          int64_t query_size) {
  EvalResult result;
  result.method = method->name();
  result.per_episode.reserve(static_cast<size_t>(episodes));
  for (int64_t id = 0; id < episodes; ++id) {
    data::Episode episode = sampler.Sample(static_cast<uint64_t>(id));
    if (static_cast<int64_t>(episode.query.size()) > query_size) {
      episode.query.resize(static_cast<size_t>(query_size));
    }
    models::EncodedEpisode enc = encoder.Encode(episode);
    result.per_episode.push_back(EpisodeF1(enc, method->AdaptAndPredict(enc)));
  }
  result.f1 = Summarize(result.per_episode);
  return result;
}

}  // namespace fewner::eval
