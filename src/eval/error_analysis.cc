#include "eval/error_analysis.h"

#include <sstream>

namespace fewner::eval {

std::string ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kCorrect:
      return "correct";
    case ErrorKind::kBoundary:
      return "boundary";
    case ErrorKind::kType:
      return "type";
    case ErrorKind::kSpurious:
      return "spurious";
    case ErrorKind::kMissed:
      return "missed";
  }
  return "?";
}

namespace {
bool Overlaps(const text::Span& a, const text::Span& b) {
  return a.start < b.end && b.start < a.end;
}
}  // namespace

std::vector<SpanOutcome> ClassifySpans(const std::vector<text::Span>& gold,
                                       const std::vector<text::Span>& predicted) {
  std::vector<SpanOutcome> outcomes;
  for (const text::Span& p : predicted) {
    ErrorKind kind = ErrorKind::kSpurious;
    for (const text::Span& g : gold) {
      if (p == g) {
        kind = ErrorKind::kCorrect;
        break;
      }
      if (p.start == g.start && p.end == g.end) {
        kind = ErrorKind::kType;  // exact extent, different label
      } else if (kind == ErrorKind::kSpurious && Overlaps(p, g) &&
                 p.label == g.label) {
        kind = ErrorKind::kBoundary;
      }
    }
    outcomes.push_back({p, kind});
  }
  for (const text::Span& g : gold) {
    bool touched = false;
    for (const text::Span& p : predicted) touched = touched || Overlaps(p, g);
    if (!touched) outcomes.push_back({g, ErrorKind::kMissed});
  }
  return outcomes;
}

void AccumulateErrors(const std::vector<int64_t>& gold_tags,
                      const std::vector<int64_t>& predicted_tags,
                      ErrorProfile* profile) {
  const auto outcomes = ClassifySpans(text::TagsToSpans(gold_tags),
                                      text::TagsToSpans(predicted_tags));
  for (const SpanOutcome& outcome : outcomes) {
    switch (outcome.kind) {
      case ErrorKind::kCorrect:
        ++profile->correct;
        break;
      case ErrorKind::kBoundary:
        ++profile->boundary;
        break;
      case ErrorKind::kType:
        ++profile->type;
        break;
      case ErrorKind::kSpurious:
        ++profile->spurious;
        break;
      case ErrorKind::kMissed:
        ++profile->missed;
        break;
    }
  }
}

std::string ErrorProfile::ToString() const {
  std::ostringstream oss;
  oss << "correct " << correct << " | boundary " << boundary << " | type " << type
      << " | spurious " << spurious << " | missed " << missed;
  return oss.str();
}

}  // namespace fewner::eval
