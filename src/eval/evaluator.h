// Episode-level evaluation of few-shot methods (paper §4.1.1).
//
// Every method is evaluated on the SAME deterministic list of held-out tasks
// (the sampler's seed fixes the list, exactly as the paper fixes the random
// seed in the evaluation phase).  The score of one episode is the micro-F1
// over its query sentences: F1 = 2c / (g + r).

#pragma once

#include <vector>

#include "data/episode_sampler.h"
#include "eval/statistics.h"
#include "meta/method.h"
#include "models/encoding.h"

namespace fewner::eval {

/// Evaluation result for one method.
struct EvalResult {
  std::string method;
  ScoreSummary f1;                    ///< over per-episode F1 (in [0, 1])
  std::vector<double> per_episode;    ///< raw per-episode F1 scores
};

/// Runs `episodes` held-out tasks through the method.
EvalResult EvaluateMethod(meta::FewShotMethod* method,
                          const data::EpisodeSampler& sampler,
                          const models::EpisodeEncoder& encoder, int64_t episodes,
                          int64_t query_size);

/// Per-episode F1 for an already-encoded episode and its predictions.
double EpisodeF1(const models::EncodedEpisode& episode,
                 const std::vector<std::vector<int64_t>>& predictions);

}  // namespace fewner::eval
