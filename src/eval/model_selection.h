// Validation-based model selection.
//
// The paper's splits include a validation partition (§4.2.1: 10 NNE types, 15
// FG-NER types, 8 GENIA types) used for hyper-parameter/model selection.  This
// utility implements the standard pattern on top of TrainConfig's iteration
// callback: periodically evaluate on validation episodes and keep a snapshot
// of the best-scoring parameters, restored after training.
//
//   eval::BestSnapshotTracker tracker(module, [&] { return ValF1(); });
//   train_config.callback_every = 20;
//   train_config.iteration_callback = tracker.Callback();
//   method.Train(...);
//   tracker.RestoreBest();   // θ_Meta with the best validation score

#pragma once

#include <functional>
#include <vector>

#include "nn/module.h"

namespace fewner::eval {

/// Keeps the parameter snapshot with the best validation score.
class BestSnapshotTracker {
 public:
  /// `scorer` computes the current validation score (higher is better); it is
  /// invoked from the training callback, so it must not disturb training
  /// state (evaluate with training mode off and restore it).
  BestSnapshotTracker(nn::Module* module, std::function<double()> scorer);

  /// The callback to install as TrainConfig::iteration_callback.
  std::function<void(int64_t)> Callback();

  /// Restores the best snapshot into the module (no-op if never evaluated).
  /// Returns the best score seen.
  double RestoreBest();

  double best_score() const { return best_score_; }
  int64_t best_iteration() const { return best_iteration_; }
  int64_t evaluations() const { return evaluations_; }

 private:
  nn::Module* module_;
  std::function<double()> scorer_;
  std::vector<std::vector<float>> best_values_;
  double best_score_ = -1.0;
  int64_t best_iteration_ = -1;
  int64_t evaluations_ = 0;
};

}  // namespace fewner::eval
