#include "eval/statistics.h"

#include <cmath>

namespace fewner::eval {

ScoreSummary Summarize(const std::vector<double>& scores) {
  ScoreSummary summary;
  summary.count = static_cast<int64_t>(scores.size());
  if (scores.empty()) return summary;
  double sum = 0.0;
  for (double s : scores) sum += s;
  summary.mean = sum / static_cast<double>(scores.size());
  double sq = 0.0;
  for (double s : scores) sq += (s - summary.mean) * (s - summary.mean);
  summary.stddev = std::sqrt(sq / static_cast<double>(scores.size()));
  summary.ci95 =
      1.96 * summary.stddev / std::sqrt(static_cast<double>(scores.size()));
  return summary;
}

}  // namespace fewner::eval
