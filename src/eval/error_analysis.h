// Error taxonomy for qualitative analysis (paper §4.5.3): the paper's
// discussion distinguishes missed entities, wrongly detected boundaries, and
// wrong types.  This module classifies every prediction/gold mismatch into
// that taxonomy so Table-6-style dumps can be aggregated quantitatively.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/bio.h"

namespace fewner::eval {

/// Categories of disagreement between predicted and gold spans.
enum class ErrorKind {
  kCorrect,       ///< exact span and label match
  kBoundary,      ///< overlaps a gold span of the same label, wrong extent
  kType,          ///< exact span of a gold mention, wrong label
  kSpurious,      ///< prediction with no overlapping gold span
  kMissed,        ///< gold span with no overlapping prediction
};

/// Human-readable name of an error kind.
std::string ErrorKindName(ErrorKind kind);

/// One classified span-level outcome.
struct SpanOutcome {
  text::Span span;
  ErrorKind kind;
};

/// Aggregated error profile over one or more sentences.
struct ErrorProfile {
  int64_t correct = 0;
  int64_t boundary = 0;
  int64_t type = 0;
  int64_t spurious = 0;
  int64_t missed = 0;

  int64_t total_errors() const { return boundary + type + spurious + missed; }

  /// Renders "correct 3 | boundary 1 | type 0 | spurious 2 | missed 1".
  std::string ToString() const;
};

/// Classifies predicted spans against gold spans, and gold spans against
/// predictions (for kMissed).  Predicted outcomes come first, then missed
/// gold spans.
std::vector<SpanOutcome> ClassifySpans(const std::vector<text::Span>& gold,
                                       const std::vector<text::Span>& predicted);

/// Accumulates a profile from (gold tags, predicted tags) of one sentence.
void AccumulateErrors(const std::vector<int64_t>& gold_tags,
                      const std::vector<int64_t>& predicted_tags,
                      ErrorProfile* profile);

}  // namespace fewner::eval
