// Table rendering in the paper's format: "23.74 ± 0.65%".

#pragma once

#include <string>
#include <vector>

#include "eval/statistics.h"

namespace fewner::eval {

/// Formats a summary (scores in [0, 1]) as a percentage cell.
std::string FormatCell(const ScoreSummary& summary);

/// Simple fixed-width table for console output.
class Table {
 public:
  /// First column is the row label ("Methods"), others are result columns.
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Inserts a full-width section label (the paper's group separators, e.g.
  /// "Static Token Representation: GloVe + CNN").
  void AddSection(std::string label);

  std::string Render() const;

 private:
  struct Row {
    bool is_section = false;
    std::string section;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace fewner::eval
