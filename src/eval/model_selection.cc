#include "eval/model_selection.h"

#include "util/status.h"

namespace fewner::eval {

BestSnapshotTracker::BestSnapshotTracker(nn::Module* module,
                                         std::function<double()> scorer)
    : module_(module), scorer_(std::move(scorer)) {
  FEWNER_CHECK(module_ != nullptr, "BestSnapshotTracker requires a module");
  FEWNER_CHECK(static_cast<bool>(scorer_), "BestSnapshotTracker requires a scorer");
}

std::function<void(int64_t)> BestSnapshotTracker::Callback() {
  return [this](int64_t iteration) {
    const double score = scorer_();
    ++evaluations_;
    if (score > best_score_) {
      best_score_ = score;
      best_iteration_ = iteration;
      best_values_ = nn::SnapshotParameterValues(module_);
    }
  };
}

double BestSnapshotTracker::RestoreBest() {
  if (!best_values_.empty()) {
    nn::RestoreParameterValues(module_, best_values_);
  }
  return best_score_;
}

}  // namespace fewner::eval
