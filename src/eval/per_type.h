// Per-type precision/recall/F1 breakdown across evaluation episodes.
//
// The paper reports episode-averaged micro-F1; practitioners additionally
// want to know WHICH entity types an adapted model handles (the paper's
// qualitative §4.5.3 hints at this: "Typing is a challenging task because
// there are 200 types in FG-NER").  This module aggregates span outcomes per
// *type name* (not per episode slot), so results are comparable across
// episodes with different slot assignments.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "models/encoding.h"
#include "text/bio.h"

namespace fewner::eval {

/// Running per-type counters.
struct TypeCounts {
  int64_t gold = 0;
  int64_t returned = 0;
  int64_t correct = 0;

  double Precision() const {
    return returned == 0 ? 0.0 : static_cast<double>(correct) / returned;
  }
  double Recall() const {
    return gold == 0 ? 0.0 : static_cast<double>(correct) / gold;
  }
  double F1() const {
    const int64_t denom = gold + returned;
    return denom == 0 ? 0.0 : 2.0 * static_cast<double>(correct) / denom;
  }
};

/// Accumulates per-type-name span counts across episodes.
class PerTypeScorer {
 public:
  /// Adds one episode's predictions.  `types` maps slots to type names (the
  /// episode's way order).
  void AddEpisode(const models::EncodedEpisode& episode,
                  const std::vector<std::string>& types,
                  const std::vector<std::vector<int64_t>>& predictions);

  const std::map<std::string, TypeCounts>& counts() const { return counts_; }

  /// Renders a compact "type: P/R/F1 (gold n)" report, worst F1 first.
  std::string Report() const;

  /// CSV with header "type,gold,returned,correct,precision,recall,f1".
  std::string ToCsv() const;

 private:
  std::map<std::string, TypeCounts> counts_;
};

}  // namespace fewner::eval
