#include "eval/per_type.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"
#include "util/string_util.h"

namespace fewner::eval {

void PerTypeScorer::AddEpisode(const models::EncodedEpisode& episode,
                               const std::vector<std::string>& types,
                               const std::vector<std::vector<int64_t>>& predictions) {
  FEWNER_CHECK(predictions.size() == episode.query.size(),
               "per-type scoring: prediction count mismatch");
  auto type_of = [&](const text::Span& span) -> const std::string& {
    const size_t slot = static_cast<size_t>(std::stoll(span.label));
    FEWNER_CHECK(slot < types.size(), "slot " << slot << " outside episode ways");
    return types[slot];
  };
  for (size_t q = 0; q < episode.query.size(); ++q) {
    const auto gold = text::TagsToSpans(episode.query[q].tags);
    const auto predicted = text::TagsToSpans(predictions[q]);
    for (const auto& g : gold) ++counts_[type_of(g)].gold;
    for (const auto& p : predicted) {
      TypeCounts& c = counts_[type_of(p)];
      ++c.returned;
      if (std::find(gold.begin(), gold.end(), p) != gold.end()) ++c.correct;
    }
  }
}

std::string PerTypeScorer::Report() const {
  std::vector<std::pair<std::string, TypeCounts>> rows(counts_.begin(),
                                                       counts_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.F1() < b.second.F1();
  });
  std::ostringstream oss;
  for (const auto& [type, c] : rows) {
    oss << "  " << util::Pad(type, 18, /*pad_left=*/false) << " P "
        << util::FormatDouble(c.Precision() * 100, 1) << "  R "
        << util::FormatDouble(c.Recall() * 100, 1) << "  F1 "
        << util::FormatDouble(c.F1() * 100, 1) << "  (gold " << c.gold << ")\n";
  }
  return oss.str();
}

std::string PerTypeScorer::ToCsv() const {
  std::ostringstream oss;
  oss << "type,gold,returned,correct,precision,recall,f1\n";
  for (const auto& [type, c] : counts_) {
    oss << type << "," << c.gold << "," << c.returned << "," << c.correct << ","
        << c.Precision() << "," << c.Recall() << "," << c.F1() << "\n";
  }
  return oss.str();
}

}  // namespace fewner::eval
