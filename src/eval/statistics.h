// Aggregate statistics for episode-level F1 scores (paper §4.1.1: mean with a
// 95% confidence interval of ±1.96·σ/√n over evaluation episodes).

#pragma once

#include <cstdint>
#include <vector>

namespace fewner::eval {

/// Summary of per-episode scores.
struct ScoreSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< 1.96 * stddev / sqrt(n)
  int64_t count = 0;
};

/// Computes mean / stddev (population) / 95% CI half-width.
ScoreSummary Summarize(const std::vector<double>& scores);

}  // namespace fewner::eval
