// Experiment orchestration: builds the paper's three adaptation scenarios,
// owns vocabularies / samplers / pre-trained LMs, and trains + evaluates any
// of the ten methods on identical task lists.  The bench binaries are thin
// flag wrappers around this runner.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/episode_sampler.h"
#include "eval/evaluator.h"
#include "meta/method.h"
#include "models/backbone.h"
#include "models/lm_encoder.h"
#include "text/vocab.h"

namespace fewner::eval {

/// A fully specified adaptation problem: train on (source corpus, source
/// types), evaluate on (target corpus, target types).
struct Scenario {
  std::string name;
  data::Corpus source;
  std::vector<std::string> source_types;
  data::Corpus target;
  std::vector<std::string> target_types;
};

/// Paper §4.2: novel types within one dataset (NNE / FG-NER / GENIA).
Scenario MakeIntraDomainScenario(const std::string& dataset, double scale,
                                 uint64_t seed);

/// Paper §4.3: same ACE-2005 types across domains (BC→UN, BN→CTS, NW→WL).
Scenario MakeCrossDomainIntraType(const std::string& source_domain,
                                  const std::string& target_domain, double scale,
                                  uint64_t seed);

/// Paper §4.4: different corpus AND different type space.
Scenario MakeCrossDomainCrossType(const std::string& source_dataset,
                                  const std::string& target_dataset, double scale,
                                  uint64_t seed);

/// The ten methods of Tables 2–4, in table order.
enum class MethodId {
  kGpt2,
  kFlair,
  kElmo,
  kBert,
  kXlnet,
  kFineTune,
  kProtoNet,
  kMaml,
  kSnail,
  kFewner,
};

std::vector<MethodId> AllMethods();
std::string MethodName(MethodId id);
/// Parses a case-insensitive method name; aborts on unknown names.
MethodId MethodFromName(const std::string& name);

/// Everything that knobs an experiment run (CPU-scale defaults; the paper's
/// settings are reachable through the fields noted inline).
struct ExperimentConfig {
  int64_t n_way = 5;        ///< evaluation ways (paper: 5)
  int64_t k_shot = 1;       ///< evaluation shots (paper: 1 or 5)
  int64_t train_way = 5;    ///< training ways (Table 5 ablates 3/10/15)
  int64_t eval_episodes = 30;   ///< paper: 1000
  int64_t eval_query_size = 4;  ///< query sentences per evaluation task
  double data_scale = 0.04;     ///< corpus scale; paper: 1.0
  uint64_t seed = 42;

  models::BackboneConfig backbone;  ///< vocab sizes/max_tags filled by the runner

  meta::TrainConfig train;

  int64_t lm_pretrain_sentences = 300;
  int64_t lm_pretrain_steps = 250;
  float lm_pretrain_lr = 3e-3f;
};

/// Trains and evaluates methods on one scenario with shared vocabularies,
/// samplers and (lazily pre-trained, cached) LM encoders.
class ExperimentRunner {
 public:
  ExperimentRunner(Scenario scenario, ExperimentConfig config);

  /// Builds and trains one method (LM encoders are pre-trained on first use).
  std::unique_ptr<meta::FewShotMethod> CreateTrained(MethodId id);

  /// CreateTrained + EvaluateMethod on the shared held-out task list.
  EvalResult Run(MethodId id);

  std::vector<EvalResult> RunMethods(const std::vector<MethodId>& ids);

  const models::EpisodeEncoder& encoder() const { return *encoder_; }

  /// The backbone configuration with vocabulary sizes, tag inventory and the
  /// word-vector table resolved — what CreateTrained hands to each method.
  /// Exposed so extension methods outside the registry can share the setup.
  models::BackboneConfig ResolvedBackboneConfig() const {
    return MakeBackboneConfig();
  }
  const data::EpisodeSampler& eval_sampler() const { return *eval_sampler_; }
  const data::EpisodeSampler& train_sampler() const { return *train_sampler_; }
  const Scenario& scenario() const { return scenario_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  models::BackboneConfig MakeBackboneConfig() const;
  std::shared_ptr<models::PretrainedLmEncoder> GetPretrainedLm(models::LmKind kind);

  Scenario scenario_;
  ExperimentConfig config_;
  text::Vocab word_vocab_;
  text::Vocab char_vocab_;
  std::unique_ptr<models::EpisodeEncoder> encoder_;
  std::unique_ptr<data::EpisodeSampler> train_sampler_;
  std::unique_ptr<data::EpisodeSampler> eval_sampler_;
  std::map<models::LmKind, std::shared_ptr<models::PretrainedLmEncoder>> lms_;
  std::vector<data::Sentence> lm_corpus_;  ///< unlabeled pre-training sentences
  std::vector<std::vector<float>> word_vectors_;  ///< GloVe stand-in table
};

}  // namespace fewner::eval
