#include "eval/experiment.h"

#include <algorithm>
#include <set>

#include "data/datasets.h"
#include "data/synthetic.h"
#include "meta/fewner.h"
#include "meta/finetune.h"
#include "meta/lm_tagger.h"
#include "meta/maml.h"
#include "meta/protonet.h"
#include "meta/snail.h"
#include "text/hash_embeddings.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fewner::eval {

Scenario MakeIntraDomainScenario(const std::string& dataset, double scale,
                                 uint64_t seed) {
  Scenario scenario;
  scenario.name = dataset;
  data::Corpus corpus = data::MakeDataset(dataset, scale);
  int64_t n_train = 0, n_val = 0, n_test = 0;
  data::IntraDomainSplitSizes(dataset, &n_train, &n_val, &n_test);
  data::TypeSplit split = data::SplitTypes(corpus.entity_types, n_train, n_val,
                                           n_test, util::Mix64(seed ^ 0x5917ull));

  // The paper's non-overlapping partition (§4.2.1): "the entities used for
  // testing do not appear during training".  Sentences mentioning val/test
  // types are therefore excluded from the training side — otherwise those
  // mentions would be visible as O-labeled tokens and the model would be
  // actively taught that novel-type surface patterns are not entities.
  std::set<std::string> held_out(split.val.begin(), split.val.end());
  held_out.insert(split.test.begin(), split.test.end());
  std::set<std::string> test_types(split.test.begin(), split.test.end());

  scenario.source.name = corpus.name + ":train";
  scenario.source.genre = corpus.genre;
  scenario.source.entity_types = split.train;
  scenario.target.name = corpus.name + ":test";
  scenario.target.genre = corpus.genre;
  scenario.target.entity_types = split.test;
  for (auto& sentence : corpus.sentences) {
    bool has_held_out = false;
    bool has_test = false;
    for (const auto& entity : sentence.entities) {
      if (held_out.count(entity.label)) has_held_out = true;
      if (test_types.count(entity.label)) has_test = true;
    }
    if (!has_held_out) {
      scenario.source.sentences.push_back(sentence);
    } else if (has_test) {
      scenario.target.sentences.push_back(std::move(sentence));
    }
    // Sentences with only val-type mentions belong to neither side here
    // (the val split drives hyper-parameter selection, not these tables).
  }
  FEWNER_CHECK(!scenario.source.sentences.empty(), "empty training partition");
  FEWNER_CHECK(!scenario.target.sentences.empty(), "empty test partition");
  scenario.source_types = split.train;
  scenario.target_types = split.test;
  return scenario;
}

Scenario MakeCrossDomainIntraType(const std::string& source_domain,
                                  const std::string& target_domain, double scale,
                                  uint64_t seed) {
  (void)seed;
  Scenario scenario;
  scenario.name = source_domain + "->" + target_domain;
  data::Corpus ace = data::MakeDataset(data::kAce2005, scale);
  scenario.source = ace.FilterDomain(source_domain);
  scenario.source_types = ace.entity_types;
  scenario.target = ace.FilterDomain(target_domain);
  scenario.target_types = ace.entity_types;
  FEWNER_CHECK(!scenario.source.sentences.empty(),
               "no sentences in source domain " << source_domain);
  FEWNER_CHECK(!scenario.target.sentences.empty(),
               "no sentences in target domain " << target_domain);
  return scenario;
}

Scenario MakeCrossDomainCrossType(const std::string& source_dataset,
                                  const std::string& target_dataset, double scale,
                                  uint64_t seed) {
  (void)seed;
  Scenario scenario;
  scenario.name = source_dataset + "->" + target_dataset;
  scenario.source = data::MakeDataset(source_dataset, scale);
  scenario.source_types = scenario.source.entity_types;
  scenario.target = data::MakeDataset(target_dataset, scale);
  scenario.target_types = scenario.target.entity_types;
  return scenario;
}

std::vector<MethodId> AllMethods() {
  return {MethodId::kGpt2,     MethodId::kFlair,    MethodId::kElmo,
          MethodId::kBert,     MethodId::kXlnet,    MethodId::kFineTune,
          MethodId::kProtoNet, MethodId::kMaml,     MethodId::kSnail,
          MethodId::kFewner};
}

std::string MethodName(MethodId id) {
  switch (id) {
    case MethodId::kGpt2:
      return "GPT2";
    case MethodId::kFlair:
      return "Flair";
    case MethodId::kElmo:
      return "ELMo";
    case MethodId::kBert:
      return "BERT";
    case MethodId::kXlnet:
      return "XLNet";
    case MethodId::kFineTune:
      return "FineTune";
    case MethodId::kProtoNet:
      return "ProtoNet";
    case MethodId::kMaml:
      return "MAML";
    case MethodId::kSnail:
      return "SNAIL";
    case MethodId::kFewner:
      return "FewNER";
  }
  return "?";
}

MethodId MethodFromName(const std::string& name) {
  const std::string lower = util::ToLower(name);
  for (MethodId id : AllMethods()) {
    if (util::ToLower(MethodName(id)) == lower) return id;
  }
  FEWNER_CHECK(false, "unknown method '" << name << "'");
  return MethodId::kFewner;
}

ExperimentRunner::ExperimentRunner(Scenario scenario, ExperimentConfig config)
    : scenario_(std::move(scenario)), config_(config) {
  // Vocabularies come from what training-time code can see: the source corpus
  // plus the LM pre-training text.  Target-corpus novelties map to <unk>,
  // which is what makes the character CNN matter for novel entity types.
  text::VocabBuilder builder;
  for (const auto& sentence : scenario_.source.sentences) {
    builder.AddSentence(sentence.tokens);
  }
  auto unlabeled = data::GenerateUnlabeledText(config_.lm_pretrain_sentences,
                                               util::Mix64(config_.seed ^ 0x17ull));
  for (auto& tokens : unlabeled) {
    builder.AddSentence(tokens);
    data::Sentence sentence;
    sentence.tokens = std::move(tokens);
    lm_corpus_.push_back(std::move(sentence));
  }
  word_vocab_ = builder.BuildWordVocab();
  char_vocab_ = builder.BuildCharVocab();

  // The GloVe stand-in: deterministic pseudo-embeddings, fine-tuned later.
  text::HashEmbeddings embeddings(config_.backbone.word_dim);
  word_vectors_ = embeddings.TableFor(word_vocab_);

  const int64_t max_way = std::max(config_.n_way, config_.train_way);
  encoder_ = std::make_unique<models::EpisodeEncoder>(&word_vocab_, &char_vocab_,
                                                      text::NumTags(max_way));

  train_sampler_ = std::make_unique<data::EpisodeSampler>(
      &scenario_.source, scenario_.source_types, config_.train_way, config_.k_shot,
      /*query_size=*/8, util::Mix64(config_.seed ^ util::HashString("train")));
  eval_sampler_ = std::make_unique<data::EpisodeSampler>(
      &scenario_.target, scenario_.target_types, config_.n_way, config_.k_shot,
      config_.eval_query_size,
      util::Mix64(config_.seed ^ util::HashString("eval")));
}

models::BackboneConfig ExperimentRunner::MakeBackboneConfig() const {
  models::BackboneConfig backbone = config_.backbone;
  backbone.word_vocab_size = word_vocab_.size();
  backbone.char_vocab_size = char_vocab_.size();
  backbone.max_tags = text::NumTags(std::max(config_.n_way, config_.train_way));
  backbone.pretrained_word_vectors = &word_vectors_;
  return backbone;
}

std::shared_ptr<models::PretrainedLmEncoder> ExperimentRunner::GetPretrainedLm(
    models::LmKind kind) {
  auto it = lms_.find(kind);
  if (it != lms_.end()) return it->second;

  util::Rng rng(util::Mix64(config_.seed ^ util::HashString(
                                                "lm:" + models::LmKindName(kind))));
  models::LmConfig lm_config;
  auto lm = std::make_shared<models::PretrainedLmEncoder>(kind, lm_config,
                                                          &word_vocab_, &char_vocab_,
                                                          &rng);
  // Pre-train on unlabeled text (the miniature stand-in for "large corpora").
  std::vector<models::EncodedSentence> encoded;
  encoded.reserve(lm_corpus_.size());
  const std::vector<std::string> no_types;
  for (const auto& sentence : lm_corpus_) {
    encoded.push_back(encoder_->EncodeSentence(sentence, no_types));
  }
  FEWNER_LOG(INFO) << "pre-training " << models::LmKindName(kind) << " for "
                   << config_.lm_pretrain_steps << " steps";
  util::Rng pretrain_rng = rng.Fork(0x93ull);
  lm->Pretrain(encoded, config_.lm_pretrain_steps, config_.lm_pretrain_lr,
               &pretrain_rng);
  lms_[kind] = lm;
  return lm;
}

std::unique_ptr<meta::FewShotMethod> ExperimentRunner::CreateTrained(MethodId id) {
  util::Rng rng(util::Mix64(config_.seed ^ util::HashString("method:" +
                                                            MethodName(id))));
  models::BackboneConfig backbone = MakeBackboneConfig();
  std::unique_ptr<meta::FewShotMethod> method;
  switch (id) {
    case MethodId::kGpt2:
    case MethodId::kFlair:
    case MethodId::kElmo:
    case MethodId::kBert:
    case MethodId::kXlnet: {
      const models::LmKind kind = static_cast<models::LmKind>(
          static_cast<int>(id));  // MethodId's first five mirror LmKind order
      method = std::make_unique<meta::LmCrfTagger>(GetPretrainedLm(kind),
                                                   backbone.max_tags, &rng);
      break;
    }
    case MethodId::kFineTune:
      method = std::make_unique<meta::FineTune>(backbone, &rng);
      break;
    case MethodId::kProtoNet:
      method = std::make_unique<meta::ProtoNet>(backbone, &rng);
      break;
    case MethodId::kMaml:
      method = std::make_unique<meta::Maml>(backbone, &rng);
      break;
    case MethodId::kSnail:
      method = std::make_unique<meta::Snail>(backbone, &rng);
      break;
    case MethodId::kFewner:
      method = std::make_unique<meta::Fewner>(backbone, &rng);
      break;
  }
  FEWNER_LOG(INFO) << "training " << method->name() << " on " << scenario_.name
                   << " (" << config_.n_way << "-way " << config_.k_shot << "-shot)";
  method->Train(*train_sampler_, *encoder_, config_.train);
  return method;
}

EvalResult ExperimentRunner::Run(MethodId id) {
  std::unique_ptr<meta::FewShotMethod> method = CreateTrained(id);
  return EvaluateMethod(method.get(), *eval_sampler_, *encoder_,
                        config_.eval_episodes, config_.eval_query_size);
}

std::vector<EvalResult> ExperimentRunner::RunMethods(
    const std::vector<MethodId>& ids) {
  std::vector<EvalResult> results;
  results.reserve(ids.size());
  for (MethodId id : ids) results.push_back(Run(id));
  return results;
}

}  // namespace fewner::eval
