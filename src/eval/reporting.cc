#include "eval/reporting.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"
#include "util/string_util.h"

namespace fewner::eval {

std::string FormatCell(const ScoreSummary& summary) {
  return util::FormatDouble(summary.mean * 100.0, 2) + " ± " +
         util::FormatDouble(summary.ci95 * 100.0, 2) + "%";
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FEWNER_CHECK(!headers_.empty(), "table needs headers");
}

void Table::AddRow(std::vector<std::string> cells) {
  FEWNER_CHECK(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells for " << headers_.size()
                          << " headers");
  Row row;
  row.cells = std::move(cells);
  rows_.push_back(std::move(row));
}

void Table::AddSection(std::string label) {
  Row row;
  row.is_section = true;
  row.section = std::move(label);
  rows_.push_back(std::move(row));
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.is_section) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  size_t total = widths.size() * 3 + 1;
  for (size_t w : widths) total += w;

  std::ostringstream oss;
  auto rule = [&]() { oss << std::string(total, '-') << "\n"; };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    oss << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      oss << " " << util::Pad(cells[c], widths[c], /*pad_left=*/c != 0) << " |";
    }
    oss << "\n";
  };
  rule();
  emit_row(headers_);
  rule();
  for (const Row& row : rows_) {
    if (row.is_section) {
      oss << "| " << util::Pad(row.section, total - 4, /*pad_left=*/false) << " |\n";
      rule();
    } else {
      emit_row(row.cells);
    }
  }
  rule();
  return oss.str();
}

}  // namespace fewner::eval
