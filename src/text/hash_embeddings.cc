#include "text/hash_embeddings.h"

#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace fewner::text {

HashEmbeddings::HashEmbeddings(int64_t dim, uint64_t seed, float family_weight)
    : dim_(dim), seed_(seed), family_weight_(family_weight) {}

std::vector<float> HashEmbeddings::UnitVector(uint64_t key) const {
  util::Rng rng(util::Mix64(seed_ ^ key));
  std::vector<float> v(static_cast<size_t>(dim_));
  double norm_sq = 0.0;
  for (float& x : v) {
    x = static_cast<float>(rng.Gaussian());
    norm_sq += static_cast<double>(x) * x;
  }
  const float inv_norm = 1.0f / static_cast<float>(std::sqrt(norm_sq) + 1e-12);
  for (float& x : v) x *= inv_norm;
  return v;
}

std::vector<float> HashEmbeddings::VectorFor(const std::string& word) const {
  const std::string lower = util::ToLower(word);
  const std::string prefix = lower.substr(0, 4);
  std::vector<float> family = UnitVector(util::HashString("family:" + prefix));
  std::vector<float> unique = UnitVector(util::HashString("word:" + lower));
  std::vector<float> out(static_cast<size_t>(dim_));
  double norm_sq = 0.0;
  for (int64_t i = 0; i < dim_; ++i) {
    const size_t idx = static_cast<size_t>(i);
    out[idx] = family_weight_ * family[idx] + (1.0f - family_weight_) * unique[idx];
    norm_sq += static_cast<double>(out[idx]) * out[idx];
  }
  if (norm_sq < 1e-8) {
    // Degenerate cancellation of the two mixture components (possible in very
    // low dimensions): fall back to the word-unique vector.
    return unique;
  }
  const float inv_norm = 1.0f / static_cast<float>(std::sqrt(norm_sq) + 1e-12);
  for (float& x : out) x *= inv_norm;
  return out;
}

std::vector<std::vector<float>> HashEmbeddings::TableFor(const Vocab& vocab) const {
  std::vector<std::vector<float>> rows;
  rows.reserve(static_cast<size_t>(vocab.size()));
  for (int64_t id = 0; id < vocab.size(); ++id) {
    if (id == kPadId) {
      rows.emplace_back(static_cast<size_t>(dim_), 0.0f);
    } else {
      rows.push_back(VectorFor(vocab.TokenFor(id)));
    }
  }
  return rows;
}

}  // namespace fewner::text
