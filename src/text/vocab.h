// Word and character vocabularies.
//
// Ids 0 and 1 are reserved for <pad> and <unk>.  Word lookup is lowercased
// (the paper's GloVe embeddings are uncased) while the character vocabulary is
// case-sensitive (character-level representations are cased).

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fewner::text {

/// Reserved id for padding.
inline constexpr int64_t kPadId = 0;
/// Reserved id for out-of-vocabulary items.
inline constexpr int64_t kUnkId = 1;

/// Frequency-built token-to-id mapping with reserved <pad>/<unk> slots.
class Vocab {
 public:
  Vocab();

  /// Adds a token (exact form) if absent; returns its id.
  int64_t Add(const std::string& token);

  /// Id of a token, or kUnkId if unknown.
  int64_t Lookup(const std::string& token) const;

  /// Whether the exact token is present.
  bool Contains(const std::string& token) const;

  /// Token for an id ("<pad>"/"<unk>" for the reserved slots).
  const std::string& TokenFor(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

 private:
  std::unordered_map<std::string, int64_t> ids_;
  std::vector<std::string> tokens_;
};

/// Builds a lowercased word vocabulary and a cased character vocabulary from
/// tokenized sentences.
class VocabBuilder {
 public:
  /// Accumulates one sentence of tokens.
  void AddSentence(const std::vector<std::string>& tokens);

  /// Word vocabulary over lowercased tokens.
  Vocab BuildWordVocab() const;

  /// Character vocabulary over raw (cased) characters.
  Vocab BuildCharVocab() const;

 private:
  std::vector<std::string> words_;  // lowercased, insertion order, deduped
  std::unordered_map<std::string, bool> seen_words_;
  std::vector<std::string> chars_;
  std::unordered_map<std::string, bool> seen_chars_;
};

/// Lowercased word id for `token` under `vocab`.
int64_t WordId(const Vocab& vocab, const std::string& token);

/// Cased character ids for `token` under `vocab`.
std::vector<int64_t> CharIds(const Vocab& vocab, const std::string& token);

}  // namespace fewner::text
