#include "text/vocab.h"

#include "util/status.h"
#include "util/string_util.h"

namespace fewner::text {

Vocab::Vocab() {
  tokens_ = {"<pad>", "<unk>"};
  ids_["<pad>"] = kPadId;
  ids_["<unk>"] = kUnkId;
}

int64_t Vocab::Add(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int64_t id = static_cast<int64_t>(tokens_.size());
  ids_[token] = id;
  tokens_.push_back(token);
  return id;
}

int64_t Vocab::Lookup(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnkId : it->second;
}

bool Vocab::Contains(const std::string& token) const { return ids_.count(token) > 0; }

const std::string& Vocab::TokenFor(int64_t id) const {
  FEWNER_CHECK(id >= 0 && id < size(), "TokenFor(" << id << ") out of range");
  return tokens_[static_cast<size_t>(id)];
}

void VocabBuilder::AddSentence(const std::vector<std::string>& tokens) {
  for (const std::string& token : tokens) {
    const std::string lower = util::ToLower(token);
    if (!seen_words_.count(lower)) {
      seen_words_[lower] = true;
      words_.push_back(lower);
    }
    for (char c : token) {
      const std::string key(1, c);
      if (!seen_chars_.count(key)) {
        seen_chars_[key] = true;
        chars_.push_back(key);
      }
    }
  }
}

Vocab VocabBuilder::BuildWordVocab() const {
  Vocab vocab;
  for (const std::string& word : words_) vocab.Add(word);
  return vocab;
}

Vocab VocabBuilder::BuildCharVocab() const {
  Vocab vocab;
  for (const std::string& c : chars_) vocab.Add(c);
  return vocab;
}

int64_t WordId(const Vocab& vocab, const std::string& token) {
  return vocab.Lookup(util::ToLower(token));
}

std::vector<int64_t> CharIds(const Vocab& vocab, const std::string& token) {
  std::vector<int64_t> ids;
  ids.reserve(token.size());
  for (char c : token) ids.push_back(vocab.Lookup(std::string(1, c)));
  return ids;
}

}  // namespace fewner::text
