// BIO tagging scheme utilities for episodic (N-way) NER.
//
// An N-way episode maps its N entity types to slots 0..N-1; the tag inventory
// is then {O, B-0, I-0, ..., B-(N-1), I-(N-1)} with integer ids
//   O = 0,  B-slot = 1 + 2*slot,  I-slot = 2 + 2*slot.
// A model trained with capacity for `max_way` slots evaluates smaller-N
// episodes by masking the unused tag ids (see LinearChainCrf).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fewner::text {

/// A labeled entity mention: token span [start, end) with a type label.
struct Span {
  int64_t start = 0;
  int64_t end = 0;
  std::string label;

  bool operator==(const Span& other) const {
    return start == other.start && end == other.end && label == other.label;
  }
};

/// Number of BIO tags for an N-way tagset: 2N + 1.
int64_t NumTags(int64_t n_way);

/// Id of the outside tag.
inline constexpr int64_t kOutsideTag = 0;

/// Tag id of B-slot.
int64_t BeginTag(int64_t slot);

/// Tag id of I-slot.
int64_t InsideTag(int64_t slot);

/// Slot of a non-O tag id.
int64_t SlotOfTag(int64_t tag);

/// True if the tag id is a B- tag.
bool IsBeginTag(int64_t tag);

/// True if the tag id is an I- tag.
bool IsInsideTag(int64_t tag);

/// Human-readable tag name ("O", "B-2", ...).
std::string TagName(int64_t tag);

/// Converts spans (with labels resolved to slots via `slot_of_label`) into a
/// BIO tag-id sequence of the given length.  Spans must be non-overlapping;
/// spans whose label maps to a negative slot are skipped (types outside the
/// episode's N ways are treated as O, as in the paper's task construction).
std::vector<int64_t> SpansToTags(const std::vector<Span>& spans,
                                 const std::vector<int64_t>& slots, int64_t length);

/// Extracts entity spans from a BIO tag-id sequence.  Tolerates ill-formed
/// sequences the way conlleval does: an I- without a preceding matching B-/I-
/// starts a new span.
std::vector<Span> TagsToSpans(const std::vector<int64_t>& tags);

/// Validity mask over `max_tags` tag ids for an episode using `n_way` slots.
std::vector<bool> ValidTagMask(int64_t n_way, int64_t max_tags);

/// Micro precision/recall/F1 counts for one episode (paper §4.1.1):
/// g = gold entities, r = returned entities, c = correct (exact span + slot).
struct SpanCounts {
  int64_t gold = 0;
  int64_t returned = 0;
  int64_t correct = 0;

  void Accumulate(const std::vector<Span>& gold_spans,
                  const std::vector<Span>& predicted_spans);

  /// F1 = 2c / (g + r); 0 when the denominator is 0.
  double F1() const;
  double Precision() const;
  double Recall() const;
};

}  // namespace fewner::text
