#include "text/bio.h"

#include <algorithm>

#include "util/status.h"

namespace fewner::text {

int64_t NumTags(int64_t n_way) { return 2 * n_way + 1; }

int64_t BeginTag(int64_t slot) { return 1 + 2 * slot; }

int64_t InsideTag(int64_t slot) { return 2 + 2 * slot; }

int64_t SlotOfTag(int64_t tag) {
  FEWNER_CHECK(tag > 0, "SlotOfTag on the O tag");
  return (tag - 1) / 2;
}

bool IsBeginTag(int64_t tag) { return tag > 0 && (tag % 2) == 1; }

bool IsInsideTag(int64_t tag) { return tag > 0 && (tag % 2) == 0; }

std::string TagName(int64_t tag) {
  if (tag == kOutsideTag) return "O";
  return (IsBeginTag(tag) ? "B-" : "I-") + std::to_string(SlotOfTag(tag));
}

std::vector<int64_t> SpansToTags(const std::vector<Span>& spans,
                                 const std::vector<int64_t>& slots, int64_t length) {
  FEWNER_CHECK(spans.size() == slots.size(),
               "SpansToTags: " << spans.size() << " spans, " << slots.size()
                               << " slots");
  std::vector<int64_t> tags(static_cast<size_t>(length), kOutsideTag);
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    const int64_t slot = slots[i];
    if (slot < 0) continue;  // type outside the episode's N ways -> O
    FEWNER_CHECK(span.start >= 0 && span.end > span.start && span.end <= length,
                 "span [" << span.start << ", " << span.end << ") out of range for "
                          << length << " tokens");
    tags[static_cast<size_t>(span.start)] = BeginTag(slot);
    for (int64_t t = span.start + 1; t < span.end; ++t) {
      tags[static_cast<size_t>(t)] = InsideTag(slot);
    }
  }
  return tags;
}

std::vector<Span> TagsToSpans(const std::vector<int64_t>& tags) {
  std::vector<Span> spans;
  int64_t current_start = -1;
  int64_t current_slot = -1;
  auto flush = [&](int64_t end) {
    if (current_start >= 0) {
      spans.push_back(Span{current_start, end, std::to_string(current_slot)});
      current_start = -1;
      current_slot = -1;
    }
  };
  for (size_t t = 0; t < tags.size(); ++t) {
    const int64_t tag = tags[t];
    const int64_t pos = static_cast<int64_t>(t);
    if (tag == kOutsideTag) {
      flush(pos);
    } else if (IsBeginTag(tag)) {
      flush(pos);
      current_start = pos;
      current_slot = SlotOfTag(tag);
    } else {  // I- tag
      const int64_t slot = SlotOfTag(tag);
      if (current_start >= 0 && slot == current_slot) continue;  // extend
      // conlleval-style recovery: treat a dangling I- as a new span.
      flush(pos);
      current_start = pos;
      current_slot = slot;
    }
  }
  flush(static_cast<int64_t>(tags.size()));
  return spans;
}

std::vector<bool> ValidTagMask(int64_t n_way, int64_t max_tags) {
  FEWNER_CHECK(NumTags(n_way) <= max_tags,
               "episode needs " << NumTags(n_way) << " tags but model has " << max_tags);
  std::vector<bool> mask(static_cast<size_t>(max_tags), false);
  for (int64_t tag = 0; tag < NumTags(n_way); ++tag) {
    mask[static_cast<size_t>(tag)] = true;
  }
  return mask;
}

void SpanCounts::Accumulate(const std::vector<Span>& gold_spans,
                            const std::vector<Span>& predicted_spans) {
  gold += static_cast<int64_t>(gold_spans.size());
  returned += static_cast<int64_t>(predicted_spans.size());
  for (const Span& p : predicted_spans) {
    if (std::find(gold_spans.begin(), gold_spans.end(), p) != gold_spans.end()) {
      ++correct;
    }
  }
}

double SpanCounts::F1() const {
  const int64_t denom = gold + returned;
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(correct) / denom;
}

double SpanCounts::Precision() const {
  return returned == 0 ? 0.0 : static_cast<double>(correct) / returned;
}

double SpanCounts::Recall() const {
  return gold == 0 ? 0.0 : static_cast<double>(correct) / gold;
}

}  // namespace fewner::text
