// HashEmbeddings: a deterministic stand-in for pre-trained GloVe vectors.
//
// The paper initializes word representations from GloVe-300d.  Offline we
// cannot ship GloVe, so each word deterministically maps to a unit-norm
// pseudo-embedding: a mixture of a *prefix-family* vector (words sharing a
// 4-character prefix get correlated vectors, mimicking the morphology
// clustering distributional embeddings exhibit) and a word-unique vector.
// The geometry — stable vectors, related surface forms nearby — is what the
// downstream few-shot transfer experiments actually rely on; see DESIGN.md §1.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocab.h"

namespace fewner::text {

/// Deterministic pseudo-embedding source.
class HashEmbeddings {
 public:
  /// `family_weight` in [0, 1] is the share of the prefix-family component.
  explicit HashEmbeddings(int64_t dim, uint64_t seed = 0x5EEDFACEull,
                          float family_weight = 0.5f);

  /// Unit-norm vector for a word (lowercased internally).
  std::vector<float> VectorFor(const std::string& word) const;

  /// Rows for an entire vocabulary, in id order.  <pad> gets the zero vector;
  /// <unk> gets its own hash vector.
  std::vector<std::vector<float>> TableFor(const Vocab& vocab) const;

  int64_t dim() const { return dim_; }

 private:
  /// Unit-norm Gaussian vector keyed by (seed_, key).
  std::vector<float> UnitVector(uint64_t key) const;

  int64_t dim_;
  uint64_t seed_;
  float family_weight_;
};

}  // namespace fewner::text
