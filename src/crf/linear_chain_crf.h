// Linear-chain conditional random field (paper Eq. 4): models the label
// sequence jointly with learned transition scores on top of per-token emission
// scores.  The negative log-likelihood is fully differentiable (forward
// algorithm in log space), so the meta-gradient flows through it; decoding
// uses Viterbi.
//
// Episodes may use a subset of the tag inventory (an N-way task with N smaller
// than the trained maximum), so both the loss and the decoder accept a
// validity mask that excludes unused tags from the partition function and from
// the decoded paths.

#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace fewner::crf {

/// Linear-chain CRF over a fixed tag inventory.
class LinearChainCrf : public nn::Module {
 public:
  explicit LinearChainCrf(int64_t num_tags);

  /// Negative log-likelihood of `tags` given per-token emissions [L, num_tags].
  /// If `valid_tags` is non-null it must have num_tags entries; invalid tags are
  /// excluded from the partition function (their emissions are crushed).
  tensor::Tensor NegLogLikelihood(const tensor::Tensor& emissions,
                                  const std::vector<int64_t>& tags,
                                  const std::vector<bool>* valid_tags = nullptr) const;

  /// Batched negative log-likelihood over padded emissions [B, Lmax, num_tags]
  /// with lane-major gold tags (`tags.size() == B * Lmax`, padding entries
  /// ignored).  Returns a [B] tensor whose lane b is bitwise-equal to
  /// NegLogLikelihood on that lane's [lengths[b], num_tags] slice: the masked
  /// log-space forward runs one batched step per timestep with finished lanes
  /// carrying alpha through an exact Where select, and the gold score sums
  /// per lane in the same double-precision ascending order as SumAll.
  tensor::Tensor NegLogLikelihoodBatch(const tensor::Tensor& emissions,
                                       const std::vector<int64_t>& tags,
                                       const std::vector<int64_t>& lengths,
                                       const std::vector<bool>* valid_tags =
                                           nullptr) const;

  /// Highest-scoring tag sequence for emissions [L, num_tags].
  std::vector<int64_t> Viterbi(const tensor::Tensor& emissions,
                               const std::vector<bool>* valid_tags = nullptr) const;

  /// Batched Viterbi over padded emissions [B, Lmax, num_tags]: decodes lane b
  /// from its first lengths[b] rows with the same float recurrence as
  /// Viterbi, so the paths are identical given identical emissions.
  std::vector<std::vector<int64_t>> ViterbiBatch(
      const tensor::Tensor& emissions, const std::vector<int64_t>& lengths,
      const std::vector<bool>* valid_tags = nullptr) const;

  /// The k highest-scoring tag sequences with their (unnormalized) path
  /// scores, best first.  Returns fewer than k when the (valid-tag) path space
  /// is smaller.  Useful for downstream rerankers and for confidence triage.
  struct ScoredPath {
    std::vector<int64_t> tags;
    float score;
  };
  std::vector<ScoredPath> ViterbiKBest(const tensor::Tensor& emissions, int64_t k,
                                       const std::vector<bool>* valid_tags =
                                           nullptr) const;

  /// Posterior tag marginals p(y_t = j | h) via forward-backward, [L, num_tags]
  /// rows summing to 1 over valid tags.  Inference-only (plain float math).
  std::vector<std::vector<double>> Marginals(const tensor::Tensor& emissions,
                                             const std::vector<bool>* valid_tags =
                                                 nullptr) const;

  int64_t num_tags() const { return num_tags_; }

 private:
  /// Additive [num_tags] mask: 0 for valid tags, a large negative otherwise.
  tensor::Tensor ValidityMask(const std::vector<bool>* valid_tags) const;

  /// The shared max-product float recurrence: decodes one sentence from a raw
  /// [length, num_tags] emission block.  Viterbi and ViterbiBatch both call
  /// this, which is what makes their paths identical by construction.
  std::vector<int64_t> ViterbiCore(const float* emit, int64_t length,
                                   const std::vector<bool>* valid_tags) const;

  int64_t num_tags_;
  tensor::Tensor transitions_;  ///< [from, to]
  tensor::Tensor start_;        ///< [num_tags] score of starting in a tag
  tensor::Tensor end_;          ///< [num_tags] score of ending in a tag
};

}  // namespace fewner::crf
