#include "crf/linear_chain_crf.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace fewner::crf {

using tensor::Shape;
using tensor::Tensor;

namespace {
constexpr float kInvalidScore = -1e7f;
}  // namespace

LinearChainCrf::LinearChainCrf(int64_t num_tags) : num_tags_(num_tags) {
  FEWNER_CHECK(num_tags > 0, "CRF requires at least one tag");
  transitions_ = Tensor::Zeros(Shape{num_tags, num_tags}, /*requires_grad=*/true);
  start_ = Tensor::Zeros(Shape{num_tags}, /*requires_grad=*/true);
  end_ = Tensor::Zeros(Shape{num_tags}, /*requires_grad=*/true);
  RegisterParameter("transitions", &transitions_);
  RegisterParameter("start", &start_);
  RegisterParameter("end", &end_);
}

Tensor LinearChainCrf::ValidityMask(const std::vector<bool>* valid_tags) const {
  std::vector<float> mask(static_cast<size_t>(num_tags_), 0.0f);
  if (valid_tags != nullptr) {
    FEWNER_CHECK(static_cast<int64_t>(valid_tags->size()) == num_tags_,
                 "valid_tags has " << valid_tags->size() << " entries for "
                                   << num_tags_ << " tags");
    for (int64_t i = 0; i < num_tags_; ++i) {
      if (!(*valid_tags)[static_cast<size_t>(i)]) {
        mask[static_cast<size_t>(i)] = kInvalidScore;
      }
    }
  }
  return Tensor::FromData(Shape{num_tags_}, std::move(mask));
}

Tensor LinearChainCrf::NegLogLikelihood(const Tensor& emissions,
                                        const std::vector<int64_t>& tags,
                                        const std::vector<bool>* valid_tags) const {
  const int64_t length = emissions.shape().dim(0);
  FEWNER_CHECK(emissions.rank() == 2 && emissions.shape().dim(1) == num_tags_,
               "emissions must be [L, " << num_tags_ << "], got "
                                        << emissions.shape().ToString());
  FEWNER_CHECK(static_cast<int64_t>(tags.size()) == length,
               "got " << tags.size() << " tags for " << length << " tokens");
  for (int64_t tag : tags) {
    FEWNER_CHECK(tag >= 0 && tag < num_tags_, "tag " << tag << " out of range");
    FEWNER_CHECK(valid_tags == nullptr || (*valid_tags)[static_cast<size_t>(tag)],
                 "gold tag " << tag << " is masked invalid");
  }

  // Crush invalid tags out of every path (gold path checked valid above).
  Tensor masked = tensor::Add(emissions, ValidityMask(valid_tags));  // broadcast [Y]

  // --- log partition function via the forward algorithm ---
  Tensor alpha = tensor::Add(tensor::Reshape(start_, Shape{1, num_tags_}),
                             tensor::Slice(masked, 0, 0, 1));  // [1, Y]
  // transitions^T hoisted out of the time loop, same construction as the
  // batched path below: by_to[j, i] = alpha[i] + transitions[i, j], built
  // directly in [to, from] layout via the trailing-[Y] broadcast.  Each
  // element is the same float addition, with the same operand order, that the
  // old alpha-column-broadcast + per-timestep Transpose performed, so values
  // AND gradients are bitwise-unchanged — but the T-1 materialized [Y, Y]
  // transposes (and their backward nodes) are gone.
  Tensor trans_by_to = tensor::Transpose(transitions_);  // [to, from]
  for (int64_t t = 1; t < length; ++t) {
    Tensor by_to =
        tensor::Add(tensor::Reshape(alpha, Shape{num_tags_}), trans_by_to);
    alpha = tensor::Add(
        tensor::Reshape(tensor::LogSumExpLastDim(by_to), Shape{1, num_tags_}),
        tensor::Slice(masked, 0, t, 1));
  }
  Tensor final_scores = tensor::Add(alpha, end_);
  Tensor log_z = tensor::Reshape(tensor::LogSumExpLastDim(final_scores), Shape{});

  // --- score of the gold path, via constant selection masks ---
  std::vector<float> emit_mask(static_cast<size_t>(length * num_tags_), 0.0f);
  for (int64_t t = 0; t < length; ++t) {
    emit_mask[static_cast<size_t>(t * num_tags_ + tags[static_cast<size_t>(t)])] = 1.0f;
  }
  std::vector<float> trans_count(static_cast<size_t>(num_tags_ * num_tags_), 0.0f);
  for (int64_t t = 1; t < length; ++t) {
    trans_count[static_cast<size_t>(tags[static_cast<size_t>(t - 1)] * num_tags_ +
                                    tags[static_cast<size_t>(t)])] += 1.0f;
  }
  std::vector<float> start_mask(static_cast<size_t>(num_tags_), 0.0f);
  start_mask[static_cast<size_t>(tags.front())] = 1.0f;
  std::vector<float> end_mask(static_cast<size_t>(num_tags_), 0.0f);
  end_mask[static_cast<size_t>(tags.back())] = 1.0f;

  Tensor gold_emit = tensor::SumAll(tensor::Mul(
      masked, Tensor::FromData(Shape{length, num_tags_}, std::move(emit_mask))));
  Tensor gold_trans = tensor::SumAll(tensor::Mul(
      transitions_,
      Tensor::FromData(Shape{num_tags_, num_tags_}, std::move(trans_count))));
  Tensor gold_start = tensor::SumAll(tensor::Mul(
      start_, Tensor::FromData(Shape{num_tags_}, std::move(start_mask))));
  Tensor gold_end = tensor::SumAll(
      tensor::Mul(end_, Tensor::FromData(Shape{num_tags_}, std::move(end_mask))));
  Tensor gold_score =
      tensor::Add(tensor::Add(gold_emit, gold_trans), tensor::Add(gold_start, gold_end));

  return tensor::Sub(log_z, gold_score);  // NLL >= 0 up to float error
}

Tensor LinearChainCrf::NegLogLikelihoodBatch(
    const Tensor& emissions, const std::vector<int64_t>& tags,
    const std::vector<int64_t>& lengths, const std::vector<bool>* valid_tags) const {
  FEWNER_CHECK(emissions.rank() == 3 && emissions.shape().dim(2) == num_tags_,
               "batched emissions must be [B, L, " << num_tags_ << "], got "
                                                   << emissions.shape().ToString());
  const int64_t lanes = emissions.shape().dim(0);
  const int64_t max_len = emissions.shape().dim(1);
  FEWNER_CHECK(static_cast<int64_t>(lengths.size()) == lanes,
               "got " << lengths.size() << " lengths for " << lanes << " lanes");
  FEWNER_CHECK(static_cast<int64_t>(tags.size()) == lanes * max_len,
               "got " << tags.size() << " tags for " << lanes * max_len
                      << " padded tokens");
  for (int64_t b = 0; b < lanes; ++b) {
    const int64_t len = lengths[static_cast<size_t>(b)];
    FEWNER_CHECK(len >= 1 && len <= max_len,
                 "lane " << b << " length " << len << " out of [1, " << max_len << "]");
    for (int64_t t = 0; t < len; ++t) {
      const int64_t tag = tags[static_cast<size_t>(b * max_len + t)];
      FEWNER_CHECK(tag >= 0 && tag < num_tags_, "tag " << tag << " out of range");
      FEWNER_CHECK(valid_tags == nullptr || (*valid_tags)[static_cast<size_t>(tag)],
                   "gold tag " << tag << " is masked invalid");
    }
  }

  // Crush invalid tags out of every path.  The trailing [Y] broadcast applies
  // the same per-element addition the per-sentence path applies.
  Tensor masked = tensor::Add(emissions, ValidityMask(valid_tags));  // [B, L, Y]

  // --- log partition function: one masked forward step per timestep ---
  auto emissions_at = [&](int64_t t) {
    return tensor::Reshape(tensor::Slice(masked, 1, t, 1), Shape{lanes, num_tags_});
  };
  // alpha[b, j] = start[j] + masked[b, 0, j]; the trailing broadcast computes
  // emission + start, bitwise-commutative with the per-sentence start + emission.
  Tensor alpha = tensor::Add(emissions_at(0), start_);  // [B, Y]
  // transitions^T hoisted out of the time loop: by_to[b, j, i] = alpha[b, i] +
  // transitions[i, j], built directly in [B, to, from] layout.  Each element
  // is the same float addition, with the same operand order, that the
  // single-sentence path's hoisted [to, from] recursion produces — so the
  // LogSumExpLastDim rows match that path bitwise with no per-timestep
  // [B, Y, Y] transpose (or its backward) in either path.
  Tensor trans_by_to = tensor::Transpose(transitions_);  // [to, from]
  for (int64_t t = 1; t < max_len; ++t) {
    Tensor by_to = tensor::Add(tensor::Reshape(alpha, Shape{lanes, 1, num_tags_}),
                               trans_by_to);  // [B, to, from]
    Tensor lse = tensor::Reshape(tensor::LogSumExpLastDim(by_to),
                                 Shape{lanes, num_tags_});
    Tensor alpha_new = tensor::Add(lse, emissions_at(t));  // [B, Y]
    // Finished lanes carry their final alpha through unchanged (exact copy).
    std::vector<float> active(static_cast<size_t>(lanes), 0.0f);
    bool all_active = true;
    for (int64_t b = 0; b < lanes; ++b) {
      if (t < lengths[static_cast<size_t>(b)]) {
        active[static_cast<size_t>(b)] = 1.0f;
      } else {
        all_active = false;
      }
    }
    alpha = all_active
                ? alpha_new
                : tensor::Where(Tensor::FromData(Shape{lanes, 1}, std::move(active)),
                                alpha_new, alpha);
  }
  Tensor final_scores = tensor::Add(alpha, end_);  // [B, Y], trailing broadcast
  Tensor log_z = tensor::Reshape(tensor::LogSumExpLastDim(final_scores),
                                 Shape{lanes});  // [B]

  // --- gold path scores, per lane, via constant selection masks ---
  // RowSum accumulates each lane in double precision in ascending flat order:
  // the lane's real (t, y) entries come first (row-major) in exactly the order
  // the per-sentence SumAll visits them, and the padding tail contributes
  // exact ±0 products that are no-ops in double.
  std::vector<float> emit_mask(static_cast<size_t>(lanes * max_len * num_tags_), 0.0f);
  std::vector<float> trans_count(static_cast<size_t>(lanes * num_tags_ * num_tags_),
                                 0.0f);
  std::vector<float> start_mask(static_cast<size_t>(lanes * num_tags_), 0.0f);
  std::vector<float> end_mask(static_cast<size_t>(lanes * num_tags_), 0.0f);
  for (int64_t b = 0; b < lanes; ++b) {
    const int64_t len = lengths[static_cast<size_t>(b)];
    const int64_t* lane_tags = tags.data() + b * max_len;
    for (int64_t t = 0; t < len; ++t) {
      emit_mask[static_cast<size_t>((b * max_len + t) * num_tags_ + lane_tags[t])] =
          1.0f;
    }
    for (int64_t t = 1; t < len; ++t) {
      trans_count[static_cast<size_t>(
          (b * num_tags_ + lane_tags[t - 1]) * num_tags_ + lane_tags[t])] += 1.0f;
    }
    start_mask[static_cast<size_t>(b * num_tags_ + lane_tags[0])] = 1.0f;
    end_mask[static_cast<size_t>(b * num_tags_ + lane_tags[len - 1])] = 1.0f;
  }

  Tensor gold_emit = tensor::RowSum(tensor::Reshape(
      tensor::Mul(masked, Tensor::FromData(Shape{lanes, max_len, num_tags_},
                                           std::move(emit_mask))),
      Shape{lanes, max_len * num_tags_}));
  Tensor gold_trans = tensor::RowSum(tensor::Reshape(
      tensor::Mul(Tensor::FromData(Shape{lanes, num_tags_, num_tags_},
                                   std::move(trans_count)),
                  transitions_),
      Shape{lanes, num_tags_ * num_tags_}));
  Tensor gold_start = tensor::RowSum(tensor::Mul(
      Tensor::FromData(Shape{lanes, num_tags_}, std::move(start_mask)), start_));
  Tensor gold_end = tensor::RowSum(tensor::Mul(
      Tensor::FromData(Shape{lanes, num_tags_}, std::move(end_mask)), end_));
  Tensor gold_score =
      tensor::Add(tensor::Add(gold_emit, gold_trans), tensor::Add(gold_start, gold_end));

  return tensor::Sub(log_z, gold_score);  // [B], lane b == per-sentence NLL
}

std::vector<int64_t> LinearChainCrf::Viterbi(const Tensor& emissions,
                                             const std::vector<bool>* valid_tags) const {
  const int64_t length = emissions.shape().dim(0);
  FEWNER_CHECK(emissions.rank() == 2 && emissions.shape().dim(1) == num_tags_,
               "emissions must be [L, " << num_tags_ << "]");
  FEWNER_CHECK(length > 0, "Viterbi on empty sentence");
  return ViterbiCore(emissions.data().data(), length, valid_tags);
}

std::vector<std::vector<int64_t>> LinearChainCrf::ViterbiBatch(
    const Tensor& emissions, const std::vector<int64_t>& lengths,
    const std::vector<bool>* valid_tags) const {
  FEWNER_CHECK(emissions.rank() == 3 && emissions.shape().dim(2) == num_tags_,
               "batched emissions must be [B, L, " << num_tags_ << "]");
  const int64_t lanes = emissions.shape().dim(0);
  const int64_t max_len = emissions.shape().dim(1);
  FEWNER_CHECK(static_cast<int64_t>(lengths.size()) == lanes,
               "got " << lengths.size() << " lengths for " << lanes << " lanes");
  const float* emit = emissions.data().data();
  std::vector<std::vector<int64_t>> paths;
  paths.reserve(static_cast<size_t>(lanes));
  for (int64_t b = 0; b < lanes; ++b) {
    const int64_t len = lengths[static_cast<size_t>(b)];
    FEWNER_CHECK(len >= 1 && len <= max_len,
                 "lane " << b << " length " << len << " out of [1, " << max_len << "]");
    // Lane b's real rows are the contiguous prefix of its padded block.
    paths.push_back(ViterbiCore(emit + b * max_len * num_tags_, len, valid_tags));
  }
  return paths;
}

std::vector<int64_t> LinearChainCrf::ViterbiCore(
    const float* emit, int64_t length, const std::vector<bool>* valid_tags) const {
  const int64_t y = num_tags_;

  auto is_valid = [&](int64_t tag) {
    return valid_tags == nullptr || (*valid_tags)[static_cast<size_t>(tag)];
  };

  const auto& trans = transitions_.data();
  const auto& start = start_.data();
  const auto& end = end_.data();

  // Two reusable score rows and one flat [L, Y] backpointer table: three
  // allocations total, independent of sentence length, instead of one
  // inner vector per timestep.  The float recurrence is untouched — the
  // brute-force property test in tests/crf_test.cc pins its results.
  std::vector<float> score(static_cast<size_t>(y), kInvalidScore);
  std::vector<float> next(static_cast<size_t>(y));
  std::vector<int64_t> backptr(static_cast<size_t>(length * y), -1);

  for (int64_t j = 0; j < y; ++j) {
    if (is_valid(j)) score[static_cast<size_t>(j)] = start[static_cast<size_t>(j)] +
                                                     emit[static_cast<size_t>(j)];
  }
  for (int64_t t = 1; t < length; ++t) {
    std::fill(next.begin(), next.end(), kInvalidScore);
    for (int64_t j = 0; j < y; ++j) {
      if (!is_valid(j)) continue;
      float best = kInvalidScore * 2;
      int64_t best_from = -1;
      for (int64_t i = 0; i < y; ++i) {
        if (!is_valid(i)) continue;
        const float candidate =
            score[static_cast<size_t>(i)] + trans[static_cast<size_t>(i * y + j)];
        if (candidate > best) {
          best = candidate;
          best_from = i;
        }
      }
      next[static_cast<size_t>(j)] = best + emit[static_cast<size_t>(t * y + j)];
      backptr[static_cast<size_t>(t * y + j)] = best_from;
    }
    score.swap(next);
  }

  float best_final = kInvalidScore * 2;
  int64_t best_tag = 0;
  for (int64_t j = 0; j < y; ++j) {
    if (!is_valid(j)) continue;
    const float candidate = score[static_cast<size_t>(j)] + end[static_cast<size_t>(j)];
    if (candidate > best_final) {
      best_final = candidate;
      best_tag = j;
    }
  }

  std::vector<int64_t> path(static_cast<size_t>(length));
  path[static_cast<size_t>(length - 1)] = best_tag;
  for (int64_t t = length - 1; t > 0; --t) {
    best_tag = backptr[static_cast<size_t>(t * y + best_tag)];
    path[static_cast<size_t>(t - 1)] = best_tag;
  }
  return path;
}

std::vector<LinearChainCrf::ScoredPath> LinearChainCrf::ViterbiKBest(
    const Tensor& emissions, int64_t k, const std::vector<bool>* valid_tags) const {
  const int64_t length = emissions.shape().dim(0);
  const int64_t y = num_tags_;
  FEWNER_CHECK(k >= 1, "ViterbiKBest requires k >= 1");
  FEWNER_CHECK(emissions.rank() == 2 && emissions.shape().dim(1) == y,
               "emissions must be [L, " << y << "]");
  auto is_valid = [&](int64_t tag) {
    return valid_tags == nullptr || (*valid_tags)[static_cast<size_t>(tag)];
  };
  const auto& emit = emissions.data();
  const auto& trans = transitions_.data();
  const auto& start = start_.data();
  const auto& end = end_.data();

  // candidates[t][j] = up to k (score, from_tag, from_rank), best first.
  struct Candidate {
    float score;
    int64_t from_tag;
    int64_t from_rank;
  };
  std::vector<std::vector<std::vector<Candidate>>> candidates(
      static_cast<size_t>(length),
      std::vector<std::vector<Candidate>>(static_cast<size_t>(y)));

  for (int64_t j = 0; j < y; ++j) {
    if (!is_valid(j)) continue;
    candidates[0][static_cast<size_t>(j)].push_back(
        {start[static_cast<size_t>(j)] + emit[static_cast<size_t>(j)], -1, -1});
  }
  for (int64_t t = 1; t < length; ++t) {
    for (int64_t j = 0; j < y; ++j) {
      if (!is_valid(j)) continue;
      std::vector<Candidate> merged;
      for (int64_t i = 0; i < y; ++i) {
        const auto& previous = candidates[static_cast<size_t>(t - 1)]
                                         [static_cast<size_t>(i)];
        for (size_t r = 0; r < previous.size(); ++r) {
          merged.push_back({previous[r].score +
                                trans[static_cast<size_t>(i * y + j)] +
                                emit[static_cast<size_t>(t * y + j)],
                            i, static_cast<int64_t>(r)});
        }
      }
      std::sort(merged.begin(), merged.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.score > b.score;
                });
      if (static_cast<int64_t>(merged.size()) > k) {
        merged.resize(static_cast<size_t>(k));
      }
      candidates[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          std::move(merged);
    }
  }

  // Final ranking with end scores.
  struct FinalEntry {
    float score;
    int64_t tag;
    int64_t rank;
  };
  std::vector<FinalEntry> finals;
  for (int64_t j = 0; j < y; ++j) {
    const auto& list =
        candidates[static_cast<size_t>(length - 1)][static_cast<size_t>(j)];
    for (size_t r = 0; r < list.size(); ++r) {
      finals.push_back({list[r].score + end[static_cast<size_t>(j)], j,
                        static_cast<int64_t>(r)});
    }
  }
  std::sort(finals.begin(), finals.end(),
            [](const FinalEntry& a, const FinalEntry& b) {
              return a.score > b.score;
            });
  if (static_cast<int64_t>(finals.size()) > k) finals.resize(static_cast<size_t>(k));

  std::vector<ScoredPath> paths;
  for (const FinalEntry& final_entry : finals) {
    ScoredPath path;
    path.score = final_entry.score;
    path.tags.assign(static_cast<size_t>(length), 0);
    int64_t tag = final_entry.tag;
    int64_t rank = final_entry.rank;
    for (int64_t t = length - 1; t >= 0; --t) {
      path.tags[static_cast<size_t>(t)] = tag;
      const Candidate& c =
          candidates[static_cast<size_t>(t)][static_cast<size_t>(tag)]
                    [static_cast<size_t>(rank)];
      tag = c.from_tag;
      rank = c.from_rank;
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::vector<std::vector<double>> LinearChainCrf::Marginals(
    const Tensor& emissions, const std::vector<bool>* valid_tags) const {
  const int64_t length = emissions.shape().dim(0);
  const int64_t y = num_tags_;
  FEWNER_CHECK(emissions.rank() == 2 && emissions.shape().dim(1) == y,
               "emissions must be [L, " << y << "]");
  auto is_valid = [&](int64_t tag) {
    return valid_tags == nullptr || (*valid_tags)[static_cast<size_t>(tag)];
  };
  const auto& emit = emissions.data();
  const auto& trans = transitions_.data();
  const auto& start = start_.data();
  const auto& end = end_.data();
  constexpr double kNegInf = -1e30;

  auto lse = [](const std::vector<double>& values) {
    double best = kNegInf;
    for (double v : values) best = std::max(best, v);
    if (best <= kNegInf) return kNegInf;
    double total = 0.0;
    for (double v : values) total += std::exp(v - best);
    return best + std::log(total);
  };

  // Forward (alpha includes the emission at t).
  std::vector<std::vector<double>> alpha(
      static_cast<size_t>(length), std::vector<double>(static_cast<size_t>(y),
                                                       kNegInf));
  for (int64_t j = 0; j < y; ++j) {
    if (is_valid(j)) {
      alpha[0][static_cast<size_t>(j)] =
          start[static_cast<size_t>(j)] + emit[static_cast<size_t>(j)];
    }
  }
  for (int64_t t = 1; t < length; ++t) {
    for (int64_t j = 0; j < y; ++j) {
      if (!is_valid(j)) continue;
      std::vector<double> terms;
      terms.reserve(static_cast<size_t>(y));
      for (int64_t i = 0; i < y; ++i) {
        if (!is_valid(i)) continue;
        terms.push_back(alpha[static_cast<size_t>(t - 1)][static_cast<size_t>(i)] +
                        trans[static_cast<size_t>(i * y + j)]);
      }
      alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          lse(terms) + emit[static_cast<size_t>(t * y + j)];
    }
  }

  // Backward (beta excludes the emission at t).
  std::vector<std::vector<double>> beta(
      static_cast<size_t>(length), std::vector<double>(static_cast<size_t>(y),
                                                       kNegInf));
  for (int64_t j = 0; j < y; ++j) {
    if (is_valid(j)) {
      beta[static_cast<size_t>(length - 1)][static_cast<size_t>(j)] =
          end[static_cast<size_t>(j)];
    }
  }
  for (int64_t t = length - 2; t >= 0; --t) {
    for (int64_t i = 0; i < y; ++i) {
      if (!is_valid(i)) continue;
      std::vector<double> terms;
      terms.reserve(static_cast<size_t>(y));
      for (int64_t j = 0; j < y; ++j) {
        if (!is_valid(j)) continue;
        terms.push_back(trans[static_cast<size_t>(i * y + j)] +
                        emit[static_cast<size_t>((t + 1) * y + j)] +
                        beta[static_cast<size_t>(t + 1)][static_cast<size_t>(j)]);
      }
      beta[static_cast<size_t>(t)][static_cast<size_t>(i)] = lse(terms);
    }
  }

  std::vector<double> final_terms;
  for (int64_t j = 0; j < y; ++j) {
    if (is_valid(j)) {
      final_terms.push_back(
          alpha[static_cast<size_t>(length - 1)][static_cast<size_t>(j)] +
          end[static_cast<size_t>(j)]);
    }
  }
  const double log_z = lse(final_terms);

  std::vector<std::vector<double>> marginals(
      static_cast<size_t>(length), std::vector<double>(static_cast<size_t>(y),
                                                       0.0));
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t j = 0; j < y; ++j) {
      if (!is_valid(j)) continue;
      marginals[static_cast<size_t>(t)][static_cast<size_t>(j)] =
          std::exp(alpha[static_cast<size_t>(t)][static_cast<size_t>(j)] +
                   beta[static_cast<size_t>(t)][static_cast<size_t>(j)] - log_z);
    }
  }
  return marginals;
}

}  // namespace fewner::crf
