// Reverse-mode automatic differentiation over the Tensor graph.
//
// Grad() is functional (in the style of jax.grad / torch.autograd.grad): it
// returns gradient tensors instead of mutating parameter state.  With
// create_graph=true the returned gradients remain connected to the graph and
// can be differentiated again — this is what makes the second-order
// meta-gradient of FEWNER/MAML exact rather than a first-order approximation.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fewner::tensor::autodiff {

/// Computes d(output)/d(input) for each tensor in `inputs`.
///
/// `output` must be a single-element tensor (a loss).  Inputs that the output
/// does not depend on receive zero gradients.  When `create_graph` is false the
/// returned gradients are detached leaves (cheap to consume in optimizers);
/// when true they are differentiable graph nodes.
std::vector<Tensor> Grad(const Tensor& output, const std::vector<Tensor>& inputs,
                         bool create_graph = false);

/// Number of graph nodes reachable from `t` (diagnostic; used in tests and the
/// timing analysis bench to report graph sizes).
int64_t GraphSize(const Tensor& t);

}  // namespace fewner::tensor::autodiff
