// Graph-free inference fast path.
//
// EvalMode is a thread-local RAII guard: while one is alive on a thread, every
// op in ops.cc skips autodiff bookkeeping entirely — no input edges, no
// backward closure, requires_grad pinned to false — and writes its output into
// a buffer recycled from the thread's WorkspaceArena instead of a fresh heap
// allocation.  The numeric kernels are the very same code that runs in graph
// mode, so eval-mode outputs are bitwise identical to graph-mode outputs
// (tests/eval_mode_test.cc enforces 0 ULP for every op).
//
// The arena recycles whole graph nodes.  A node is reusable exactly when no
// live Tensor handle references it any more (shared-ownership count of one,
// arena-only); tensors that escape the eval scope therefore stay valid forever
// — they merely pin their node out of the pool.  Recycling is per-thread and
// lock-free, matching the episode-parallel trainer's thread-isolated graphs.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace fewner::tensor {

/// Per-thread pool of computation-graph nodes backing eval-mode op outputs.
/// Buffers keep their capacity across reuse, so steady-state tagging of
/// same-shaped sentences performs no float allocations at all.
class WorkspaceArena {
 public:
  /// The calling thread's arena (created on first use).
  static WorkspaceArena& ThreadLocal();

  /// A node owned only by the arena and the returned handle.  Its values
  /// buffer holds stale data from a previous op; callers must resize and
  /// overwrite (or zero) it.
  std::shared_ptr<internal::Node> Acquire();

  /// Drops every pooled node (frees the float buffers of nodes no Tensor
  /// references; pinned nodes stay alive through their handles).
  void Clear();

  /// Nodes currently owned by the pool.
  size_t pool_size() const { return pool_.size(); }

  /// Lifetime counters: how many Acquire() calls recycled a node vs. grew the
  /// pool.  Diagnostics for tests and the throughput bench.
  uint64_t reuse_count() const { return reuses_; }
  uint64_t alloc_count() const { return allocs_; }

 private:
  /// Entries scanned per Acquire before giving up and growing the pool; bounds
  /// the cost when many nodes are pinned by escaped tensors.
  static constexpr size_t kMaxScan = 64;

  std::vector<std::shared_ptr<internal::Node>> pool_;
  size_t cursor_ = 0;
  uint64_t reuses_ = 0;
  uint64_t allocs_ = 0;
};

namespace internal {
/// Whether the current thread is inside an EvalMode scope.  Read on every op;
/// inline thread-local keeps it a plain TLS load.
inline thread_local bool g_eval_mode_active = false;
}  // namespace internal

/// RAII guard enabling the graph-free fast path on the current thread.
/// Nests: the previous state is restored on destruction.
class EvalMode {
 public:
  EvalMode() : prev_(internal::g_eval_mode_active) {
    internal::g_eval_mode_active = true;
  }
  ~EvalMode() { internal::g_eval_mode_active = prev_; }

  EvalMode(const EvalMode&) = delete;
  EvalMode& operator=(const EvalMode&) = delete;

  static bool active() { return internal::g_eval_mode_active; }

 private:
  bool prev_;
};

}  // namespace fewner::tensor
