#include "tensor/intraop.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "tensor/matmul_kernel.h"
#include "util/thread_pool.h"

namespace fewner::tensor {

namespace {

/// Innermost live ParallelismBudget scope on this thread; 0 means "no scope",
/// which falls back to the FEWNER_INTRAOP_THREADS default.
thread_local int64_t g_budget = 0;

int64_t DefaultBudget() {
  static const int64_t cached = util::ThreadCountFromEnv("FEWNER_INTRAOP_THREADS");
  return cached;
}

/// Minimum flop volume (m·k·n) before a GEMM is worth sharding: below this,
/// the per-slab queue round-trip eats the win.  ~a [128, 64]x[64, 32] step.
constexpr int64_t kFlopThreshold = int64_t{1} << 18;

/// Minimum C rows per slab — two full 4-row register tiles, so sharding never
/// degrades a slab into all-remainder row blocks.
constexpr int64_t kMinSlabRows = 8;

/// Shared pool for intra-op slabs, created on first parallel dispatch and
/// intentionally leaked: tests and benches may run GEMMs from static-teardown
/// contexts, and joining workers in a static destructor would race them.
/// Sized to the hardware minus the dispatching caller, which always executes
/// slab 0 itself.
util::ThreadPool& SlabPool() {
  static util::ThreadPool* pool = []() {
    const unsigned hw = std::thread::hardware_concurrency();
    return new util::ThreadPool(std::max<int64_t>(1, static_cast<int64_t>(hw) - 1));
  }();
  return *pool;
}

/// Per-dispatch countdown latch.  ThreadPool::Wait() waits for the WHOLE
/// queue to drain, which would make concurrent dispatchers (e.g. two serving
/// threads) block on each other's slabs; counting down only our own tasks
/// keeps dispatches independent.
class SlabLatch {
 public:
  explicit SlabLatch(int64_t count) : remaining_(count) {}

  void CountDown() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t remaining_;
};

bool ShouldShard(int64_t m, int64_t k, int64_t n) {
  if (ParallelismBudget::current() <= 1) return false;
  if (m < 2 * kMinSlabRows) return false;
  return m * k * n >= kFlopThreshold;
}

/// Partitions [0, m) into contiguous row slabs (sizes differing by at most
/// one row) and runs `slab(row0, rows)` once per slab, each on exactly one
/// thread.  The caller runs slab 0 inline; the rest go to the shared pool.
/// The partition cannot affect results: each output element keeps its own
/// single ascending-k accumulator no matter which slab computes it.
template <typename SlabFn>
void ShardRows(int64_t m, const SlabFn& slab) {
  const int64_t budget = ParallelismBudget::current();
  const int64_t slabs = std::min(budget, m / kMinSlabRows);
  const int64_t base = m / slabs;
  const int64_t extra = m % slabs;
  SlabLatch latch(slabs - 1);
  int64_t row0 = base + (extra > 0 ? 1 : 0);  // slab 0, run by the caller
  for (int64_t s = 1; s < slabs; ++s) {
    const int64_t rows = base + (s < extra ? 1 : 0);
    const int64_t begin = row0;
    SlabPool().Submit([&slab, &latch, begin, rows] {
      slab(begin, rows);
      latch.CountDown();
    });
    row0 += rows;
  }
  slab(0, base + (extra > 0 ? 1 : 0));
  latch.Wait();
}

}  // namespace

ParallelismBudget::ParallelismBudget(int64_t threads) {
  const int64_t prev = g_budget;
  g_budget = std::max<int64_t>(1, threads);
  prev_ = prev;
}

ParallelismBudget::~ParallelismBudget() { g_budget = prev_; }

int64_t ParallelismBudget::current() {
  return g_budget > 0 ? g_budget : DefaultBudget();
}

namespace kernel {

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  if (!ShouldShard(m, k, n)) {
    MatMulBlocked(a, b, c, m, k, n);
    return;
  }
  ShardRows(m, [=](int64_t row0, int64_t rows) {
    MatMulBlocked(a + row0 * k, b, c + row0 * n, rows, k, n);
  });
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  if (!ShouldShard(m, k, n)) {
    MatMulNT(a, b, c, m, k, n);
    return;
  }
  // Pack bᵀ once on the dispatching thread; slabs read it concurrently
  // (publication ordered by the pool's queue mutex, lifetime by the latch).
  float* bt = TransposeScratch(k * n);
  PackTranspose(b, bt, n, k);
  ShardRows(m, [=](int64_t row0, int64_t rows) {
    MatMulBlocked(a + row0 * k, bt, c + row0 * n, rows, k, n);
  });
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  if (!ShouldShard(m, k, n)) {
    MatMulTN(a, b, c, m, k, n);
    return;
  }
  // A slab's C rows are a column block of `a`: offset into the row, keep the
  // full row stride.
  ShardRows(m, [=](int64_t row0, int64_t rows) {
    MatMulTN(a + row0, b, c + row0 * n, rows, k, n, /*lda=*/m);
  });
}

}  // namespace kernel
}  // namespace fewner::tensor
