// Single-precision GEMM kernels for the op layer.
//
// MatMulBlocked is the production NN kernel: register-tiled over a 4x8 block
// of the output so each loaded B row is reused across four A rows and the
// eight accumulators stay in registers across the whole k loop.  The inner
// loops carry portable vectorization hints (omp simd when available,
// compiler-specific pragmas otherwise) and no fast-math assumptions.
//
// MatMulTN (Aᵀ·B) is the same rank-1-update tiling read through A's columns:
// for each k step the MI A values are contiguous (one row of A) and the B row
// is contiguous, so it runs at MatMulBlocked speed with zero copies — this is
// what lets MatMul's backward dW = xᵀ·grad drop the materialized [B·L, dim]
// activation transpose entirely.  It takes an explicit leading dimension for
// A so a row range of C (= column range of A) can be computed in isolation.
//
// MatMulNT (A·Bᵀ) packs Bᵀ into a per-thread scratch buffer and runs the
// blocked NN core.  A direct NT kernel cannot vectorize: both operands stream
// along k, and the bitwise contract below forbids splitting the k
// accumulation across SIMD lanes.  Packing performs exactly the data movement
// the old graph-level `Transpose(b)` did — same bits — but without a graph
// node, without an allocation in steady state (the scratch is reused), and
// packed once per call even when the multiply itself is row-sharded across
// threads.  B here is the *weight* operand ([k, n] with k·n ≪ m·k·n flops),
// so the pack is noise next to the multiply.
//
// Bitwise contract: for every output element, partial products are accumulated
// in ascending contraction order onto a single accumulator — exactly the
// sequence the reference i-k-j loop performs — so blocked and naive results
// are identical to the last bit (0 ULP) for finite inputs, regardless of tile
// remainders, and NT/TN results are identical to transpose-then-MatMulBlocked
// (same products, same order; IEEE multiplication is commutative).
// tests/tensor_test.cc and tests/gemm_kernel_test.cc enforce this on
// non-multiple-of-tile shapes.  Keeping the order fixed is what lets eval
// mode and graph mode share these kernels while the differential suite
// demands bitwise equality, and is also what makes row-sharded parallel
// dispatch (tensor/intraop.h) bitwise-safe: the per-element sequence does not
// depend on which slab — or thread — computes the element.

#pragma once

#include <cstdint>

namespace fewner::tensor::kernel {

/// c[m, n] = a[m, k] * b[k, n], row-major, c fully overwritten.
void MatMulBlocked(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);

/// c[m, n] = a[m, k] * b[n, k]ᵀ, row-major, c fully overwritten.  Contraction
/// runs over the shared trailing dimension k in ascending order.  Internally
/// packs bᵀ into a thread-local scratch buffer (see header comment).
void MatMulNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n);

/// c[m, n] = a[k, lda]ᵀ (columns [0, m)) * b[k, n], row-major, c fully
/// overwritten.  Contraction runs over a's leading dimension k in ascending
/// order.  `lda` is a's row stride; pass lda == m (the default via -1) for a
/// whole [k, m] matrix, or lda == full width with `a` offset to a column
/// block when computing a row range of C.
void MatMulTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, int64_t lda = -1);

/// dst[cols, rows] = src[rows, cols]ᵀ — the pack step MatMulNT uses.  Exposed
/// so the parallel dispatcher can pack once and shard the multiply.
void PackTranspose(const float* src, float* dst, int64_t rows, int64_t cols);

/// Thread-local scratch of at least `numel` floats, reused across calls.
/// Valid until the calling thread's next TransposeScratch call.
float* TransposeScratch(int64_t numel);

/// Reference scalar i-k-j loop (the pre-tiling implementation).  c is fully
/// overwritten.  Kept for differential tests and the throughput bench.
void MatMulNaive(const float* a, const float* b, float* c, int64_t m, int64_t k,
                 int64_t n);

}  // namespace fewner::tensor::kernel
