// Single-precision GEMM kernels for the op layer.
//
// MatMulBlocked is the production kernel: register-tiled over a 4x8 block of
// the output so each loaded B row is reused across four A rows and the eight
// accumulators stay in registers across the whole k loop.  The inner loops
// carry portable vectorization hints (omp simd when available, compiler-
// specific pragmas otherwise) and no fast-math assumptions.
//
// Bitwise contract: for every output element, partial products are accumulated
// in ascending k order onto a single accumulator — exactly the sequence the
// reference i-k-j loop performs — so blocked and naive results are identical
// to the last bit (0 ULP) for finite inputs, regardless of tile remainders.
// tests/tensor_test.cc enforces this on non-multiple-of-tile shapes.  Keeping
// the order fixed is what lets eval mode and graph mode share this kernel
// while the differential suite demands bitwise equality.

#pragma once

#include <cstdint>

namespace fewner::tensor::kernel {

/// c[m, n] = a[m, k] * b[k, n], row-major, c fully overwritten.
void MatMulBlocked(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);

/// Reference scalar i-k-j loop (the pre-tiling implementation).  c is fully
/// overwritten.  Kept for differential tests and the throughput bench.
void MatMulNaive(const float* a, const float* b, float* c, int64_t m, int64_t k,
                 int64_t n);

}  // namespace fewner::tensor::kernel
