// Shape: a small value type describing tensor dimensionality, with the
// broadcasting rules (NumPy-style, right-aligned) used by elementwise ops.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/status.h"

namespace fewner::tensor {

/// Dimensions of a tensor.  Rank 0 denotes a scalar (numel 1).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Overwrites one dimension in place.  Lets the op layer derive an output
  /// shape from an input shape without allocating a fresh dims vector.
  void set_dim(int64_t i, int64_t value) { dims_[static_cast<size_t>(i)] = value; }

  /// Total number of elements (1 for scalars).
  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Formats as e.g. "[3, 4]"; scalars render as "[]".
  std::string ToString() const;

  /// Row-major strides (stride of the last dim is 1).
  std::vector<int64_t> Strides() const;

  /// True if this shape can broadcast to `target` under right-aligned rules.
  bool BroadcastableTo(const Shape& target) const;

  /// Broadcast result of two shapes, or InvalidArgument if incompatible.
  static util::Result<Shape> Broadcast(const Shape& a, const Shape& b);

 private:
  std::vector<int64_t> dims_;
};

}  // namespace fewner::tensor
