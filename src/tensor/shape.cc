#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

namespace fewner::tensor {

std::string Shape::ToString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << dims_[i];
  }
  oss << "]";
  return oss.str();
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (int64_t i = rank() - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i + 1)] * dims_[static_cast<size_t>(i + 1)];
  }
  return strides;
}

bool Shape::BroadcastableTo(const Shape& target) const {
  if (rank() > target.rank()) return false;
  const int64_t offset = target.rank() - rank();
  for (int64_t i = 0; i < rank(); ++i) {
    const int64_t mine = dim(i);
    const int64_t theirs = target.dim(i + offset);
    if (mine != theirs && mine != 1) return false;
  }
  return true;
}

util::Result<Shape> Shape::Broadcast(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> out(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t ai = i - (rank - a.rank());
    const int64_t bi = i - (rank - b.rank());
    const int64_t da = ai >= 0 ? a.dim(ai) : 1;
    const int64_t db = bi >= 0 ? b.dim(bi) : 1;
    if (da != db && da != 1 && db != 1) {
      return util::Status::InvalidArgument("shapes " + a.ToString() + " and " +
                                           b.ToString() + " are not broadcastable");
    }
    out[static_cast<size_t>(i)] = std::max(da, db);
  }
  return Shape(std::move(out));
}

}  // namespace fewner::tensor
