#include "tensor/autodiff.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "tensor/eval_mode.h"
#include "tensor/ops.h"

namespace fewner::tensor::autodiff {

namespace {

/// Post-order (inputs before consumers) list of requires_grad nodes reachable
/// from `root`, computed iteratively to survive deep graphs.
std::vector<Tensor> TopologicalOrder(const Tensor& root) {
  std::vector<Tensor> order;
  std::unordered_set<internal::Node*> visited;
  // Stack frames: (tensor, next input index to expand).
  std::vector<std::pair<Tensor, size_t>> stack;
  if (!root.requires_grad()) return order;
  stack.emplace_back(root, 0);
  visited.insert(root.node());
  while (!stack.empty()) {
    auto& [tensor, next] = stack.back();
    const auto& inputs = tensor.node()->inputs;
    bool descended = false;
    while (next < inputs.size()) {
      const Tensor& child = inputs[next++];
      if (child.requires_grad() && !visited.count(child.node())) {
        visited.insert(child.node());
        stack.emplace_back(child, 0);
        descended = true;
        break;
      }
    }
    if (!descended && next >= tensor.node()->inputs.size()) {
      order.push_back(tensor);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

std::vector<Tensor> Grad(const Tensor& output, const std::vector<Tensor>& inputs,
                         bool create_graph) {
  FEWNER_CHECK(output.defined(), "Grad on undefined output");
  FEWNER_CHECK(output.numel() == 1,
               "Grad expects a scalar loss, got shape " << output.shape().ToString());
  for (const Tensor& input : inputs) {
    FEWNER_CHECK(input.defined(), "Grad on undefined input");
    FEWNER_CHECK(input.requires_grad(),
                 "Grad requested for a tensor that does not require grad (op: "
                     << input.op_name() << ")");
  }

  std::vector<Tensor> order = TopologicalOrder(output);

  // A node is "needed" if a requested input is reachable from it; we only run
  // backward through needed nodes.  Inputs appear before consumers in `order`,
  // so one forward scan suffices.
  std::unordered_set<internal::Node*> requested;
  for (const Tensor& input : inputs) requested.insert(input.node());
  std::unordered_set<internal::Node*> needed;
  for (const Tensor& t : order) {
    if (requested.count(t.node())) {
      needed.insert(t.node());
      continue;
    }
    for (const Tensor& child : t.node()->inputs) {
      if (child.requires_grad() && needed.count(child.node())) {
        needed.insert(t.node());
        break;
      }
    }
  }

  std::unordered_map<internal::Node*, Tensor> grads;
  if (output.requires_grad() && needed.count(output.node())) {
    grads[output.node()] = Tensor::Ones(output.shape());
  }

  // Without create_graph the gradient tensors are detached before they leave
  // this function, so nothing downstream ever differentiates through them —
  // run the whole backward on the graph-free arena path instead of building
  // (and then discarding) a second graph.  Values are bitwise-unchanged: eval
  // mode runs the same kernels in the same fold order.  This is the test-time
  // inner-loop hot path (see models::CachedPrefix), where backward cost now
  // rivals the φ-suffix forward itself.
  std::optional<EvalMode> eval;
  if (!create_graph) eval.emplace();

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Tensor& t = *it;
    if (!needed.count(t.node())) continue;
    auto grad_it = grads.find(t.node());
    if (grad_it == grads.end()) continue;  // output does not depend on this node
    if (t.node()->inputs.empty() || !t.node()->backward) continue;
    std::vector<Tensor> input_grads = t.node()->backward(t, grad_it->second);
    FEWNER_CHECK(input_grads.size() == t.node()->inputs.size(),
                 "backward of " << t.op_name() << " returned " << input_grads.size()
                                << " grads for " << t.node()->inputs.size()
                                << " inputs");
    for (size_t i = 0; i < input_grads.size(); ++i) {
      const Tensor& child = t.node()->inputs[i];
      if (!child.requires_grad() || !needed.count(child.node())) continue;
      const Tensor& g = input_grads[i];
      FEWNER_CHECK(g.defined(), "backward of " << t.op_name()
                                               << " returned undefined grad for a "
                                                  "requires_grad input");
      FEWNER_CHECK(g.shape() == child.shape(),
                   "backward of " << t.op_name() << " produced grad shape "
                                  << g.shape().ToString() << " for input shape "
                                  << child.shape().ToString());
      auto existing = grads.find(child.node());
      if (existing == grads.end()) {
        grads[child.node()] = g;
      } else {
        // Fan-in accumulation for multiply-consumed nodes.  The fold order is
        // the reverse of `order`, which DFS fixes from graph structure alone —
        // never from hash-map iteration — so a subgraph consumed by many
        // heads (e.g. a shared θ-prefix reused by every inner-step loss, see
        // models::CachedPrefix) accumulates its upstream gradients in the
        // same order on every run, keeping Grad bit-reproducible.
        existing->second = Add(existing->second, g);
      }
    }
  }

  std::vector<Tensor> result;
  result.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    auto it2 = grads.find(input.node());
    if (it2 == grads.end()) {
      result.push_back(Tensor::Zeros(input.shape()));
    } else {
      result.push_back(create_graph ? it2->second : it2->second.Detach());
    }
  }
  return result;
}

int64_t GraphSize(const Tensor& t) {
  if (!t.defined()) return 0;
  std::unordered_set<internal::Node*> visited;
  std::vector<Tensor> stack{t};
  visited.insert(t.node());
  while (!stack.empty()) {
    Tensor current = stack.back();
    stack.pop_back();
    for (const Tensor& child : current.node()->inputs) {
      if (!visited.count(child.node())) {
        visited.insert(child.node());
        stack.push_back(child);
      }
    }
  }
  return static_cast<int64_t>(visited.size());
}

}  // namespace fewner::tensor::autodiff
