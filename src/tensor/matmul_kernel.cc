#include "tensor/matmul_kernel.h"

#include <cstddef>
#include <vector>

// Vectorization hint for an inner loop whose iterations are independent.
// Ordered weakest-assumption first: `omp simd` when the build enables it
// (-fopenmp-simd, no runtime), otherwise a compiler-specific no-dependence
// pragma.  None of these permit reassociation of the k accumulation — the
// bitwise contract in the header depends on that.
#if defined(FEWNER_HAVE_OMP_SIMD)
#define FEWNER_SIMD _Pragma("omp simd")
#elif defined(__clang__)
#define FEWNER_SIMD _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define FEWNER_SIMD _Pragma("GCC ivdep")
#else
#define FEWNER_SIMD
#endif

namespace fewner::tensor::kernel {

namespace {

constexpr int64_t kRowTile = 4;  ///< A rows per register block
constexpr int64_t kColTile = 8;  ///< C columns per register block (2 SSE lanes)

/// One MI x kColTile output block: accumulators live in registers across the
/// whole k loop; each B row is loaded once and reused by all MI A rows.
template <int MI>
inline void MicroTile(const float* a, const float* b, float* c, int64_t k,
                      int64_t n, int64_t j0) {
  float acc[MI][kColTile] = {};
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * n + j0;
    for (int ii = 0; ii < MI; ++ii) {
      const float aik = a[ii * k + kk];
      FEWNER_SIMD
      for (int jj = 0; jj < kColTile; ++jj) acc[ii][jj] += aik * brow[jj];
    }
  }
  for (int ii = 0; ii < MI; ++ii) {
    FEWNER_SIMD
    for (int jj = 0; jj < kColTile; ++jj) c[ii * n + j0 + jj] = acc[ii][jj];
  }
}

/// Remainder columns [j0, n): one scalar accumulator per output element,
/// still ascending in k.
template <int MI>
inline void TailCols(const float* a, const float* b, float* c, int64_t k,
                     int64_t n, int64_t j0) {
  for (int ii = 0; ii < MI; ++ii) {
    for (int64_t j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[ii * k + kk] * b[kk * n + j];
      c[ii * n + j] = acc;
    }
  }
}

/// MI consecutive rows of C.
template <int MI>
void RowBlock(const float* a, const float* b, float* c, int64_t k, int64_t n) {
  int64_t j = 0;
  for (; j + kColTile <= n; j += kColTile) MicroTile<MI>(a, b, c, k, n, j);
  if (j < n) TailCols<MI>(a, b, c, k, n, j);
}

/// TN variant of MicroTile: C rows are A *columns*, so the MI values per k
/// step come from one contiguous stretch of A's row kk (a + kk * lda).  Same
/// rank-1-update structure and accumulation order as MicroTile.
template <int MI>
inline void MicroTileTN(const float* a, const float* b, float* c, int64_t k,
                        int64_t n, int64_t lda, int64_t j0) {
  float acc[MI][kColTile] = {};
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* acol = a + kk * lda;
    const float* brow = b + kk * n + j0;
    for (int ii = 0; ii < MI; ++ii) {
      const float aik = acol[ii];
      FEWNER_SIMD
      for (int jj = 0; jj < kColTile; ++jj) acc[ii][jj] += aik * brow[jj];
    }
  }
  for (int ii = 0; ii < MI; ++ii) {
    FEWNER_SIMD
    for (int jj = 0; jj < kColTile; ++jj) c[ii * n + j0 + jj] = acc[ii][jj];
  }
}

/// TN remainder columns: one scalar accumulator per element, ascending k.
template <int MI>
inline void TailColsTN(const float* a, const float* b, float* c, int64_t k,
                       int64_t n, int64_t lda, int64_t j0) {
  for (int ii = 0; ii < MI; ++ii) {
    for (int64_t j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[kk * lda + ii] * b[kk * n + j];
      }
      c[ii * n + j] = acc;
    }
  }
}

/// MI consecutive rows of C = MI consecutive columns of A.
template <int MI>
void RowBlockTN(const float* a, const float* b, float* c, int64_t k, int64_t n,
                int64_t lda) {
  int64_t j = 0;
  for (; j + kColTile <= n; j += kColTile) {
    MicroTileTN<MI>(a, b, c, k, n, lda, j);
  }
  if (j < n) TailColsTN<MI>(a, b, c, k, n, lda, j);
}

}  // namespace

void MatMulBlocked(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  int64_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    RowBlock<kRowTile>(a + i * k, b, c + i * n, k, n);
  }
  switch (m - i) {
    case 3:
      RowBlock<3>(a + i * k, b, c + i * n, k, n);
      break;
    case 2:
      RowBlock<2>(a + i * k, b, c + i * n, k, n);
      break;
    case 1:
      RowBlock<1>(a + i * k, b, c + i * n, k, n);
      break;
    default:
      break;
  }
}

void MatMulNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n) {
  float* bt = TransposeScratch(k * n);
  PackTranspose(b, bt, n, k);  // b [n, k] -> bt [k, n]
  MatMulBlocked(a, bt, c, m, k, n);
}

void MatMulTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, int64_t lda) {
  if (lda < 0) lda = m;
  int64_t i = 0;
  for (; i + kRowTile <= m; i += kRowTile) {
    RowBlockTN<kRowTile>(a + i, b, c + i * n, k, n, lda);
  }
  switch (m - i) {
    case 3:
      RowBlockTN<3>(a + i, b, c + i * n, k, n, lda);
      break;
    case 2:
      RowBlockTN<2>(a + i, b, c + i * n, k, n, lda);
      break;
    case 1:
      RowBlockTN<1>(a + i, b, c + i * n, k, n, lda);
      break;
    default:
      break;
  }
}

void PackTranspose(const float* src, float* dst, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* srow = src + r * cols;
    for (int64_t cc = 0; cc < cols; ++cc) dst[cc * rows + r] = srow[cc];
  }
}

float* TransposeScratch(int64_t numel) {
  static thread_local std::vector<float> scratch;
  if (static_cast<int64_t>(scratch.size()) < numel) {
    scratch.resize(static_cast<size_t>(numel));
  }
  return scratch.data();
}

void MatMulNaive(const float* a, const float* b, float* c, int64_t m, int64_t k,
                 int64_t n) {
  for (int64_t x = 0; x < m * n; ++x) c[x] = 0.0f;
  // i-k-j order, unit-stride inner loop.  The aik == 0 skip only elides
  // additions of ±0 products, which never change a (+0-initialized)
  // accumulator for finite inputs — so this stays bitwise-equal to the
  // blocked kernel.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      FEWNER_SIMD
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace fewner::tensor::kernel
