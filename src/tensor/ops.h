// Differentiable tensor operations.
//
// Every op builds a graph node whose backward function is written in terms of
// these same ops, so calling autodiff::Grad with create_graph=true produces
// gradients that can be differentiated again (higher-order autodiff).  The only
// places where a derivative is intentionally treated as locally constant are
// piecewise-linear kink points (Relu masks, argmax selections) and the detached
// max-shift inside LogSumExp — all standard and exact almost everywhere.
//
// Elementwise binary ops broadcast with NumPy right-aligned rules.

#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fewner::tensor {

// ----- elementwise binary (broadcasting) -----

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ----- elementwise unary -----

Tensor Neg(const Tensor& t);
Tensor Sigmoid(const Tensor& t);
Tensor Tanh(const Tensor& t);
Tensor Relu(const Tensor& t);
Tensor Exp(const Tensor& t);
Tensor Log(const Tensor& t);   ///< Natural log; inputs must be positive.
Tensor Sqrt(const Tensor& t);  ///< Inputs must be non-negative.
Tensor Square(const Tensor& t);

// ----- scalar forms (cheaper than materializing constant tensors) -----

Tensor AddScalar(const Tensor& t, float c);
Tensor MulScalar(const Tensor& t, float c);

// ----- shape manipulation -----

/// Reinterprets the data with a new shape of identical numel.
Tensor Reshape(const Tensor& t, Shape shape);

/// 2-D transpose.
Tensor Transpose(const Tensor& t);

/// Swaps the last two axes of a rank >= 2 tensor: [..., m, n] -> [..., n, m].
/// The batched analogue of Transpose for [B, Y, Y] score matrices.
Tensor TransposeLast2(const Tensor& t);

/// Replicates to `shape`; `t.shape()` must be broadcastable to it.
Tensor BroadcastTo(const Tensor& t, Shape shape);

/// Reduces by summation down to `shape` (the adjoint of BroadcastTo).
Tensor SumTo(const Tensor& t, Shape shape);

/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis);

/// Contiguous slice [start, start+length) along `axis`.
Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t length);

// ----- reductions -----

/// Sum of all elements as a rank-0 scalar.
Tensor SumAll(const Tensor& t);

/// Sum of all elements as a rank-0 scalar, accumulated in SINGLE precision
/// left-to-right over the flat elements — bitwise-identical to folding the
/// elements with a chain of scalar float Adds.  Use when a serial Add fold
/// must be reproduced exactly (batched task losses); prefer SumAll (double
/// accumulation) everywhere else.
Tensor SumAllFloat(const Tensor& t);

/// Sum along one axis; keepdim retains the axis with size 1.
Tensor SumAxis(const Tensor& t, int64_t axis, bool keepdim);

/// Mean of all elements as a rank-0 scalar.
Tensor MeanAll(const Tensor& t);

/// Per-row sum of an [R, C] matrix as a rank-1 [R] tensor.  Each row
/// accumulates in double precision in ascending column order — the same
/// summation SumAll performs over a whole tensor — so lane r of a padded
/// batch reproduces SumAll over that lane's rows bitwise (trailing zero pad
/// contributions are exact no-ops in double).
Tensor RowSum(const Tensor& t);

/// Max along one axis (keepdim semantics as SumAxis).  The sub-gradient flows
/// to the (first) argmax position.
Tensor MaxAxis(const Tensor& t, int64_t axis, bool keepdim);

// ----- linear algebra -----

/// [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// [m, k] x [n, k]ᵀ -> [m, n]: MatMul(a, Transpose(b)) without the
/// materialized transpose node or copy, bitwise-identical to that
/// composition.  The MatMul family {MatMul, MatMulNT, MatMulTN} is closed
/// under differentiation, so higher-order autodiff stays transpose-free too.
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// [k, m]ᵀ x [k, n] -> [m, n]: MatMul(Transpose(a), b) without the
/// materialized transpose node or copy, bitwise-identical to that
/// composition.
Tensor MatMulTN(const Tensor& a, const Tensor& b);

// ----- gather / scatter -----

/// Selects rows of a [V, D] matrix: result[i, :] = t[indices[i], :].
Tensor IndexSelectRows(const Tensor& t, const std::vector<int64_t>& indices);

/// Adjoint of IndexSelectRows: scatter-adds the rows of `src` ([n, D]) into a
/// zero [num_rows, D] matrix at `indices`.
Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& indices,
                      int64_t num_rows);

/// Sliding windows for 1-D convolution: [T, D] -> [T-w+1, w*D], row i being the
/// concatenation of rows i..i+w-1.  Requires T >= w.
Tensor Unfold1d(const Tensor& t, int64_t window);

/// Adjoint of Unfold1d: overlap-adds [M, w*D] windows back into [M+w-1, D].
Tensor Fold1d(const Tensor& t, int64_t window);

/// Batched sliding windows: [N, T, D] -> [N, T-w+1, w*D], each lane unfolded
/// independently exactly as Unfold1d would unfold its [T, D] slice.
Tensor UnfoldTimeBatch(const Tensor& t, int64_t window);

/// Adjoint of UnfoldTimeBatch: overlap-adds [N, M, w*D] back into
/// [N, M+w-1, D] per lane.
Tensor FoldTimeBatch(const Tensor& t, int64_t window);

/// Elementwise select: result[i] = cond[i] != 0 ? a[i] : b[i].  `cond` is
/// treated as a constant (no gradient) and must be broadcastable to the
/// common shape of `a` and `b` (which must match).  Unlike the arithmetic
/// blend cond*a + (1-cond)*b, this *copies* the selected operand, so masked
/// lanes in a batched recurrence carry state through bitwise-unchanged
/// (an arithmetic blend would flip -0.0 to +0.0 and is one more rounding).
Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b);

// ----- composites -----

/// Numerically stable log(sum(exp(x))) along the last axis, keepdim.
Tensor LogSumExpLastDim(const Tensor& t);

/// Log-softmax along the last axis.
Tensor LogSoftmaxLastDim(const Tensor& t);

/// Softmax along the last axis.
Tensor SoftmaxLastDim(const Tensor& t);

/// Inverted dropout: scales kept activations by 1/(1-p).  Identity when
/// `training` is false or p == 0.
Tensor Dropout(const Tensor& t, float p, util::Rng* rng, bool training);

/// Stacks n rank-1 tensors of size D into an [n, D] matrix.
Tensor StackRows(const std::vector<Tensor>& rows);

}  // namespace fewner::tensor
