#include "tensor/tensor.h"

#include <atomic>
#include <sstream>

namespace fewner::tensor {

namespace {
std::atomic<uint64_t> g_next_node_id{1};
}  // namespace

Tensor Tensor::FromData(Shape shape, std::vector<float> values, bool requires_grad) {
  FEWNER_CHECK(static_cast<int64_t>(values.size()) == shape.numel(),
               "FromData: " << values.size() << " values for shape "
                            << shape.ToString());
  auto node = std::make_shared<internal::Node>();
  node->shape = std::move(shape);
  node->values = std::move(values);
  node->requires_grad = requires_grad;
  node->id = g_next_node_id.fetch_add(1);
  return Tensor(std::move(node));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData(Shape{}, {value}, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  std::vector<float> values(static_cast<size_t>(shape.numel()), value);
  return FromData(std::move(shape), std::move(values), requires_grad);
}

Tensor Tensor::Randn(Shape shape, util::Rng* rng, float stddev, bool requires_grad) {
  FEWNER_CHECK(rng != nullptr, "Randn requires an Rng");
  std::vector<float> values(static_cast<size_t>(shape.numel()));
  for (float& v : values) v = static_cast<float>(rng->Gaussian(0.0, stddev));
  return FromData(std::move(shape), std::move(values), requires_grad);
}

Tensor Tensor::FromNode(std::shared_ptr<internal::Node> node) {
  node->id = g_next_node_id.fetch_add(1);
  return Tensor(std::move(node));
}

const Shape& Tensor::shape() const {
  FEWNER_CHECK(defined(), "shape() on undefined tensor");
  return node_->shape;
}

const std::vector<float>& Tensor::data() const {
  FEWNER_CHECK(defined(), "data() on undefined tensor");
  return node_->values;
}

std::vector<float>* Tensor::mutable_data() {
  FEWNER_CHECK(defined(), "mutable_data() on undefined tensor");
  // inputs.empty() alone is not enough: eval-mode op outputs drop their input
  // edges but remain op results whose buffers the WorkspaceArena may recycle.
  FEWNER_CHECK(node_->inputs.empty() && node_->leaf,
               "mutable_data() is only valid on leaf tensors (op: " << node_->op << ")");
  // Conservatively counts every mutable access as a mutation: cheaper than
  // value hashing, and a false "changed" only costs a cache rebuild.
  ++node_->version;
  return &node_->values;
}

float Tensor::item() const {
  FEWNER_CHECK(numel() == 1, "item() on tensor of shape " << shape().ToString());
  return data()[0];
}

bool Tensor::requires_grad() const { return defined() && node_->requires_grad; }

Tensor Tensor::Detach() const {
  FEWNER_CHECK(defined(), "Detach() on undefined tensor");
  auto node = std::make_shared<internal::Node>();
  node->shape = node_->shape;
  node->values = node_->values;
  node->requires_grad = false;
  node->op = "detach";
  return FromNode(std::move(node));
}

void Tensor::set_requires_grad(bool value) {
  FEWNER_CHECK(defined(), "set_requires_grad on undefined tensor");
  FEWNER_CHECK(node_->inputs.empty() && node_->leaf,
               "set_requires_grad is only valid on leaves");
  node_->requires_grad = value;
}

const char* Tensor::op_name() const {
  FEWNER_CHECK(defined(), "op_name() on undefined tensor");
  return node_->op;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream oss;
  oss << "Tensor(shape=" << shape().ToString() << ", op=" << node_->op;
  if (numel() <= 16) {
    oss << ", values=[";
    for (int64_t i = 0; i < numel(); ++i) {
      if (i > 0) oss << ", ";
      oss << data()[static_cast<size_t>(i)];
    }
    oss << "]";
  }
  oss << ")";
  return oss.str();
}

}  // namespace fewner::tensor
