// Tensor: a value-semantic handle to a node in a dynamically built computation
// graph.  Ops (see ops.h) create nodes whose backward functions are expressed
// in terms of the same ops, so gradients are themselves graph nodes and can be
// differentiated again — the property the second-order meta-gradient of FEWNER
// (Eq. 6 in the paper) requires.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"
#include "util/status.h"

namespace fewner::tensor {

class Tensor;

/// Given the node's own output tensor and the upstream gradient, returns one
/// gradient tensor per input (undefined Tensor for inputs without grad).
using BackwardFn =
    std::function<std::vector<Tensor>(const Tensor& self, const Tensor& grad_out)>;

namespace internal {

/// A node in the computation graph: values plus provenance for backprop.
struct Node {
  Shape shape;
  std::vector<float> values;
  bool requires_grad = false;
  /// True for user-created leaves (FromData/Detach), false for op outputs.
  /// Eval-mode op outputs carry no input edges, so `inputs.empty()` alone
  /// cannot tell a leaf from an op result; this flag can.
  bool leaf = true;
  const char* op = "leaf";
  std::vector<Tensor> inputs;
  BackwardFn backward;
  uint64_t id = 0;  ///< Monotonic creation index; gives deterministic traversal.
  /// In-place mutation counter, bumped by every mutable_data() access.  The
  /// (id, version) pair therefore changes whenever a leaf's values may have
  /// changed — by in-place optimizer steps (version) or by slot replacement
  /// (fresh id) — which is what lets models::CachedPrefix detect stale θ.
  uint64_t version = 0;
};

}  // namespace internal

/// Handle to an immutable graph node.  Copying is cheap (shared ownership).
class Tensor {
 public:
  /// Undefined tensor; defined() is false.
  Tensor() = default;

  /// Leaf from explicit data; `values.size()` must equal `shape.numel()`.
  static Tensor FromData(Shape shape, std::vector<float> values,
                         bool requires_grad = false);

  /// Rank-0 scalar leaf.
  static Tensor Scalar(float value, bool requires_grad = false);

  /// Leaf filled with a constant.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);

  static Tensor Zeros(Shape shape, bool requires_grad = false) {
    return Full(std::move(shape), 0.0f, requires_grad);
  }
  static Tensor Ones(Shape shape, bool requires_grad = false) {
    return Full(std::move(shape), 1.0f, requires_grad);
  }

  /// Leaf with i.i.d. Gaussian entries of the given standard deviation.
  static Tensor Randn(Shape shape, util::Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);

  /// Internal: wraps an op result node.
  static Tensor FromNode(std::shared_ptr<internal::Node> node);

  /// Internal: wraps an eval-mode op result without assigning a fresh node id.
  /// Eval outputs never join an autodiff traversal, the id's only consumer,
  /// and skipping the atomic counter keeps the fast path contention-free.
  static Tensor FromRecycledNode(std::shared_ptr<internal::Node> node) {
    return Tensor(std::move(node));
  }

  bool defined() const { return node_ != nullptr; }

  const Shape& shape() const;
  int64_t numel() const { return shape().numel(); }
  int64_t rank() const { return shape().rank(); }

  /// Read-only access to the flat row-major values.
  const std::vector<float>& data() const;

  /// Mutable access; only valid for leaves, since op outputs are conceptually
  /// immutable once consumed (and, in eval mode, physically recycled).  Used
  /// by optimizers for in-place parameter updates.  Checked: calling this on
  /// an op output aborts, in graph mode and eval mode alike.
  std::vector<float>* mutable_data();

  /// Value of a rank-0 / single-element tensor.
  float item() const;

  /// Element at a flat index.
  float at(int64_t i) const { return data()[static_cast<size_t>(i)]; }

  bool requires_grad() const;

  /// Returns a leaf sharing this tensor's values but cut off from the graph.
  Tensor Detach() const;

  /// Marks a leaf as trainable (participates in autodiff).
  void set_requires_grad(bool value);

  const char* op_name() const;

  internal::Node* node() const { return node_.get(); }

  /// Pretty-prints shape and (small tensors') values for debugging.
  std::string ToString() const;

 private:
  explicit Tensor(std::shared_ptr<internal::Node> node) : node_(std::move(node)) {}

  std::shared_ptr<internal::Node> node_;
};

}  // namespace fewner::tensor
