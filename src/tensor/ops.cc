#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "tensor/eval_mode.h"
#include "tensor/intraop.h"
#include "tensor/matmul_kernel.h"

namespace fewner::tensor {

namespace {

// Every op is split into the same three phases:
//   1. NewOutput()  — obtain the output node + buffer.  Graph mode allocates a
//      fresh node; eval mode recycles one from the thread's WorkspaceArena.
//   2. the numeric kernel — identical code in both modes, writing through the
//      raw buffer pointer, which is what makes eval outputs bitwise-equal to
//      graph outputs (tests/eval_mode_test.cc pins this at 0 ULP).
//   3. SealEval()/SealGraph() — eval mode returns the bare value; graph mode
//      wires input edges and the backward closure.  Backward closures are
//      built by *factories* invoked only in graph mode, so eval mode never
//      pays for their captures or the std::function allocation.

/// Handle to an op's output node and its destination buffer.
struct OpOutput {
  std::shared_ptr<internal::Node> node;
  float* data() { return node->values.data(); }
};

/// Output for an op result.  Recycled buffers hold stale values: ops that
/// accumulate (rather than overwrite every element) pass zero=true.  The
/// copy-assignment of `shape` into a recycled node reuses the node's dims
/// capacity, so steady-state eval traffic allocates nothing here.
OpOutput NewOutput(const char* op, const Shape& shape, bool zero = false) {
  const size_t n = static_cast<size_t>(shape.numel());
  std::shared_ptr<internal::Node> node;
  if (EvalMode::active()) {
    node = WorkspaceArena::ThreadLocal().Acquire();
    node->shape = shape;
  } else {
    node = std::make_shared<internal::Node>();
    node->shape = shape;
  }
  node->op = op;
  node->leaf = false;
  node->values.resize(n);
  if (zero) std::fill(node->values.begin(), node->values.end(), 0.0f);
  return {std::move(node)};
}

/// Rvalue form for call sites that build a temporary shape.
OpOutput NewOutput(const char* op, Shape&& shape, bool zero = false) {
  const size_t n = static_cast<size_t>(shape.numel());
  std::shared_ptr<internal::Node> node;
  if (EvalMode::active()) {
    node = WorkspaceArena::ThreadLocal().Acquire();
    node->shape = shape;  // copy keeps the recycled dims capacity alive
  } else {
    node = std::make_shared<internal::Node>();
    node->shape = std::move(shape);
  }
  node->op = op;
  node->leaf = false;
  node->values.resize(n);
  if (zero) std::fill(node->values.begin(), node->values.end(), 0.0f);
  return {std::move(node)};
}

/// Output whose shape is `base` with one dimension replaced — the common case
/// for Slice/MaxAxis — built without materializing a temporary dims vector.
OpOutput NewOutputPatched(const char* op, const Shape& base, int64_t axis,
                          int64_t dim, bool zero = false) {
  std::shared_ptr<internal::Node> node;
  if (EvalMode::active()) {
    node = WorkspaceArena::ThreadLocal().Acquire();
  } else {
    node = std::make_shared<internal::Node>();
  }
  node->shape = base;
  node->shape.set_dim(axis, dim);
  node->op = op;
  node->leaf = false;
  node->values.resize(static_cast<size_t>(node->shape.numel()));
  if (zero) std::fill(node->values.begin(), node->values.end(), 0.0f);
  return {std::move(node)};
}

/// Eval mode: the output is a plain value — no edges, no backward, no grad.
Tensor SealEval(OpOutput out) {
  return Tensor::FromRecycledNode(std::move(out.node));
}

/// Graph mode: requires_grad is inherited from any input.
Tensor SealGraph(OpOutput out, std::vector<Tensor> inputs, BackwardFn backward) {
  bool rg = false;
  for (const Tensor& in : inputs) rg = rg || in.requires_grad();
  out.node->requires_grad = rg;
  out.node->inputs = std::move(inputs);
  if (rg) out.node->backward = std::move(backward);
  return Tensor::FromNode(std::move(out.node));
}

/// Maps a flat index in `out_shape` to a flat index in `in_shape`
/// (right-aligned broadcasting; size-1 dims in the input are pinned to 0).
struct BroadcastIndexer {
  explicit BroadcastIndexer(const Shape& in_shape, const Shape& out_shape) {
    const int64_t out_rank = out_shape.rank();
    const int64_t offset = out_rank - in_shape.rank();
    out_dims = out_shape.dims();
    in_strides.assign(static_cast<size_t>(out_rank), 0);
    std::vector<int64_t> strides = in_shape.Strides();
    for (int64_t i = 0; i < in_shape.rank(); ++i) {
      if (in_shape.dim(i) != 1) {
        in_strides[static_cast<size_t>(i + offset)] = strides[static_cast<size_t>(i)];
      }
    }
    coords_.assign(static_cast<size_t>(out_rank), 0);
  }

  int64_t Map(int64_t out_flat) const {
    int64_t in_flat = 0;
    for (int64_t i = static_cast<int64_t>(out_dims.size()) - 1; i >= 0; --i) {
      const int64_t d = out_dims[static_cast<size_t>(i)];
      const int64_t coord = out_flat % d;
      out_flat /= d;
      in_flat += coord * in_strides[static_cast<size_t>(i)];
    }
    return in_flat;
  }

  /// Sequential form of Map: returns Map(k) for the k-th call (k = 0, 1, ...)
  /// and advances the internal odometer one output element, propagating
  /// carries.  Amortized O(1) per element where Map pays rank div/mods, which
  /// matters in the hot broadcast loops below; the index sequence is identical.
  int64_t Next() {
    const int64_t result = cur_;
    for (int64_t i = static_cast<int64_t>(out_dims.size()) - 1; i >= 0; --i) {
      const size_t ui = static_cast<size_t>(i);
      cur_ += in_strides[ui];
      if (++coords_[ui] < out_dims[ui]) return result;
      coords_[ui] = 0;
      cur_ -= in_strides[ui] * out_dims[ui];
    }
    return result;  // wrapped past the last element; callers stop before this
  }

  std::vector<int64_t> out_dims;
  std::vector<int64_t> in_strides;

 private:
  std::vector<int64_t> coords_;  // sized in the constructor, after out_dims
  int64_t cur_ = 0;
};

using BinaryFn = float (*)(float, float);

/// True when `small`'s dims equal the trailing dims of `big` — the layout in
/// which broadcasting `small` over `big` is a plain cyclic repeat, so the
/// element mapping is `i % small.numel()` with no per-element index
/// arithmetic.  Covers the ubiquitous bias-add pattern [L, D] + [D].
bool IsTrailingShape(const Shape& small, const Shape& big) {
  const int64_t offset = big.rank() - small.rank();
  if (offset < 0) return false;
  for (int64_t i = 0; i < small.rank(); ++i) {
    if (small.dim(i) != big.dim(i + offset)) return false;
  }
  return true;
}

/// Shared implementation for broadcasting elementwise binary ops.  The
/// backward factory runs only in graph mode.
template <typename BackwardFactory>
Tensor ElementwiseBinary(const char* op, const Tensor& a, const Tensor& b, BinaryFn f,
                         BackwardFactory make_backward) {
  FEWNER_CHECK(a.defined() && b.defined(), op << " on undefined tensor");
  if (a.shape() == b.shape()) {
    const auto& av = a.data();
    const auto& bv = b.data();
    OpOutput out = NewOutput(op, a.shape());
    float* ov = out.data();
    for (size_t i = 0; i < av.size(); ++i) ov[i] = f(av[i], bv[i]);
    if (EvalMode::active()) return SealEval(std::move(out));
    return SealGraph(std::move(out), {a, b}, make_backward());
  }
  if (IsTrailingShape(b.shape(), a.shape()) && b.numel() > 0) {
    const auto& av = a.data();
    const auto& bv = b.data();
    const size_t bn = bv.size();
    OpOutput out = NewOutput(op, a.shape());
    float* ov = out.data();
    for (size_t i = 0; i < av.size(); ++i) ov[i] = f(av[i], bv[i % bn]);
    if (EvalMode::active()) return SealEval(std::move(out));
    return SealGraph(std::move(out), {a, b}, make_backward());
  }
  if (IsTrailingShape(a.shape(), b.shape()) && a.numel() > 0) {
    const auto& av = a.data();
    const auto& bv = b.data();
    const size_t an = av.size();
    OpOutput out = NewOutput(op, b.shape());
    float* ov = out.data();
    for (size_t i = 0; i < bv.size(); ++i) ov[i] = f(av[i % an], bv[i]);
    if (EvalMode::active()) return SealEval(std::move(out));
    return SealGraph(std::move(out), {a, b}, make_backward());
  }
  auto result_shape = Shape::Broadcast(a.shape(), b.shape());
  FEWNER_CHECK(result_shape.ok(), op << ": " << result_shape.status().ToString());
  Shape shape = std::move(result_shape).value();
  BroadcastIndexer ia(a.shape(), shape);
  BroadcastIndexer ib(b.shape(), shape);
  const int64_t n = shape.numel();
  OpOutput out = NewOutput(op, std::move(shape));
  float* ov = out.data();
  const auto& av = a.data();
  const auto& bv = b.data();
  for (int64_t i = 0; i < n; ++i) {
    ov[i] = f(av[static_cast<size_t>(ia.Next())], bv[static_cast<size_t>(ib.Next())]);
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {a, b}, make_backward());
}

using UnaryFn = float (*)(float);

/// Shared implementation for elementwise unary ops.
template <typename BackwardFactory>
Tensor ElementwiseUnary(const char* op, const Tensor& t, UnaryFn f,
                        BackwardFactory make_backward) {
  FEWNER_CHECK(t.defined(), op << " on undefined tensor");
  const auto& tv = t.data();
  OpOutput out = NewOutput(op, t.shape());
  float* ov = out.data();
  for (size_t i = 0; i < tv.size(); ++i) ov[i] = f(tv[i]);
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t}, make_backward());
}

}  // namespace

// ----- elementwise binary -----

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "add", a, b, [](float x, float y) { return x + y; },
      [&]() -> BackwardFn {
        Shape sa = a.shape(), sb = b.shape();
        return [sa, sb](const Tensor& /*self*/,
                        const Tensor& grad) -> std::vector<Tensor> {
          return {SumTo(grad, sa), SumTo(grad, sb)};
        };
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "sub", a, b, [](float x, float y) { return x - y; },
      [&]() -> BackwardFn {
        Shape sa = a.shape(), sb = b.shape();
        return [sa, sb](const Tensor& /*self*/,
                        const Tensor& grad) -> std::vector<Tensor> {
          return {SumTo(grad, sa), SumTo(Neg(grad), sb)};
        };
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "mul", a, b, [](float x, float y) { return x * y; },
      [&]() -> BackwardFn {
        Shape sa = a.shape(), sb = b.shape();
        return [a, b, sa, sb](const Tensor& /*self*/,
                              const Tensor& grad) -> std::vector<Tensor> {
          return {SumTo(Mul(grad, b), sa), SumTo(Mul(grad, a), sb)};
        };
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      "div", a, b, [](float x, float y) { return x / y; },
      [&]() -> BackwardFn {
        Shape sa = a.shape(), sb = b.shape();
        return [a, b, sa, sb](const Tensor& /*self*/,
                              const Tensor& grad) -> std::vector<Tensor> {
          Tensor ga = SumTo(Div(grad, b), sa);
          Tensor gb = SumTo(Neg(Div(Mul(grad, a), Mul(b, b))), sb);
          return {ga, gb};
        };
      });
}

// ----- elementwise unary -----

Tensor Neg(const Tensor& t) {
  return ElementwiseUnary(
      "neg", t, [](float x) { return -x; },
      []() -> BackwardFn {
        return [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
          return {Neg(grad)};
        };
      });
}

Tensor Sigmoid(const Tensor& t) {
  return ElementwiseUnary(
      "sigmoid", t, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      []() -> BackwardFn {
        return [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
          // d/dx sigmoid = y * (1 - y), with y the op output (still in-graph).
          Tensor one_minus = AddScalar(Neg(self), 1.0f);
          return {Mul(grad, Mul(self, one_minus))};
        };
      });
}

Tensor Tanh(const Tensor& t) {
  return ElementwiseUnary(
      "tanh", t, [](float x) { return std::tanh(x); },
      []() -> BackwardFn {
        return [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
          return {Mul(grad, AddScalar(Neg(Mul(self, self)), 1.0f))};
        };
      });
}

Tensor Relu(const Tensor& t) {
  return ElementwiseUnary(
      "relu", t, [](float x) { return x > 0.0f ? x : 0.0f; },
      [&]() -> BackwardFn {
        // The 0/1 mask is a local constant of the input sign pattern; its own
        // derivative is zero a.e., so a constant tensor is the right backward
        // here even under create_graph.
        std::vector<float> mask(t.data().size());
        for (size_t i = 0; i < mask.size(); ++i) {
          mask[i] = t.data()[i] > 0.0f ? 1.0f : 0.0f;
        }
        Tensor mask_t = Tensor::FromData(t.shape(), std::move(mask));
        return [mask_t](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
          return {Mul(grad, mask_t)};
        };
      });
}

Tensor Exp(const Tensor& t) {
  return ElementwiseUnary(
      "exp", t, [](float x) { return std::exp(x); },
      []() -> BackwardFn {
        return [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
          return {Mul(grad, self)};
        };
      });
}

Tensor Log(const Tensor& t) {
  return ElementwiseUnary(
      "log", t, [](float x) { return std::log(x); },
      [&]() -> BackwardFn {
        return [t](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
          return {Div(grad, t)};
        };
      });
}

Tensor Sqrt(const Tensor& t) {
  return ElementwiseUnary(
      "sqrt", t, [](float x) { return std::sqrt(x); },
      []() -> BackwardFn {
        return [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
          return {Div(MulScalar(grad, 0.5f), self)};
        };
      });
}

Tensor Square(const Tensor& t) { return Mul(t, t); }

// ----- scalar forms -----

Tensor AddScalar(const Tensor& t, float c) {
  FEWNER_CHECK(t.defined(), "add_scalar on undefined tensor");
  const auto& tv = t.data();
  OpOutput out = NewOutput("add_scalar", t.shape());
  float* ov = out.data();
  for (size_t i = 0; i < tv.size(); ++i) ov[i] = tv[i] + c;
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {grad};
                   });
}

Tensor MulScalar(const Tensor& t, float c) {
  FEWNER_CHECK(t.defined(), "mul_scalar on undefined tensor");
  const auto& tv = t.data();
  OpOutput out = NewOutput("mul_scalar", t.shape());
  float* ov = out.data();
  for (size_t i = 0; i < tv.size(); ++i) ov[i] = tv[i] * c;
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [c](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {MulScalar(grad, c)};
                   });
}

// ----- shape manipulation -----

Tensor Reshape(const Tensor& t, Shape shape) {
  FEWNER_CHECK(shape.numel() == t.numel(), "Reshape " << t.shape().ToString() << " -> "
                                                      << shape.ToString());
  const auto& tv = t.data();
  OpOutput out = NewOutput("reshape", std::move(shape));
  if (!tv.empty()) std::memcpy(out.data(), tv.data(), tv.size() * sizeof(float));
  if (EvalMode::active()) return SealEval(std::move(out));
  Shape original = t.shape();
  return SealGraph(std::move(out), {t},
                   [original](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {Reshape(grad, original)};
                   });
}

Tensor Transpose(const Tensor& t) {
  FEWNER_CHECK(t.rank() == 2, "Transpose requires rank 2, got " << t.shape().ToString());
  const int64_t m = t.shape().dim(0);
  const int64_t n = t.shape().dim(1);
  OpOutput out = NewOutput("transpose", Shape{n, m});
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      ov[j * m + i] = tv[i * n + j];
    }
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {Transpose(grad)};
                   });
}

Tensor TransposeLast2(const Tensor& t) {
  FEWNER_CHECK(t.rank() >= 2,
               "TransposeLast2 requires rank >= 2, got " << t.shape().ToString());
  if (t.rank() == 2) return Transpose(t);
  const Shape& shape = t.shape();
  const int64_t m = shape.dim(shape.rank() - 2);
  const int64_t n = shape.dim(shape.rank() - 1);
  int64_t outer = 1;
  for (int64_t d = 0; d < shape.rank() - 2; ++d) outer *= shape.dim(d);
  std::vector<int64_t> out_dims = shape.dims();
  out_dims[static_cast<size_t>(shape.rank() - 2)] = n;
  out_dims[static_cast<size_t>(shape.rank() - 1)] = m;
  OpOutput out = NewOutput("transpose_last2", Shape{std::move(out_dims)});
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = tv + o * m * n;
    float* dst = ov + o * m * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        dst[j * m + i] = src[i * n + j];
      }
    }
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {TransposeLast2(grad)};
                   });
}

Tensor BroadcastTo(const Tensor& t, Shape shape) {
  if (t.shape() == shape) return t;
  FEWNER_CHECK(t.shape().BroadcastableTo(shape),
               "BroadcastTo " << t.shape().ToString() << " -> " << shape.ToString());
  BroadcastIndexer indexer(t.shape(), shape);
  const int64_t n = shape.numel();
  OpOutput out = NewOutput("broadcast_to", std::move(shape));
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t i = 0; i < n; ++i) {
    ov[i] = tv[indexer.Next()];
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  Shape in_shape = t.shape();
  return SealGraph(std::move(out), {t},
                   [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {SumTo(grad, in_shape)};
                   });
}

Tensor SumTo(const Tensor& t, Shape shape) {
  if (t.shape() == shape) return t;
  FEWNER_CHECK(shape.BroadcastableTo(t.shape()),
               "SumTo " << t.shape().ToString() << " -> " << shape.ToString());
  BroadcastIndexer indexer(shape, t.shape());
  const int64_t n = t.numel();
  OpOutput out = NewOutput("sum_to", std::move(shape), /*zero=*/true);
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t i = 0; i < n; ++i) {
    ov[indexer.Next()] += tv[i];
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  Shape in_shape = t.shape();
  return SealGraph(std::move(out), {t},
                   [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {BroadcastTo(grad, in_shape)};
                   });
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  FEWNER_CHECK(!tensors.empty(), "Concat of zero tensors");
  if (tensors.size() == 1) return tensors[0];
  const Shape& first = tensors[0].shape();
  FEWNER_CHECK(axis >= 0 && axis < first.rank(),
               "Concat axis " << axis << " out of range for " << first.ToString());
  int64_t axis_total = 0;
  for (const Tensor& t : tensors) {
    FEWNER_CHECK(t.rank() == first.rank(), "Concat rank mismatch");
    for (int64_t d = 0; d < first.rank(); ++d) {
      if (d != axis) {
        FEWNER_CHECK(t.shape().dim(d) == first.dim(d),
                     "Concat dim mismatch at axis " << d);
      }
    }
    axis_total += t.shape().dim(axis);
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims[static_cast<size_t>(axis)] = axis_total;
  Shape out_shape{std::vector<int64_t>(out_dims)};

  // outer = product of dims before axis; inner = product after axis.
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= first.dim(d);
  for (int64_t d = axis + 1; d < first.rank(); ++d) inner *= first.dim(d);

  OpOutput out = NewOutput("concat", std::move(out_shape));
  float* ov = out.data();
  int64_t offset = 0;  // running position along the concat axis
  for (const Tensor& t : tensors) {
    const int64_t ta = t.shape().dim(axis);
    const float* tv = t.data().data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(ov + (o * axis_total + offset) * inner, tv + o * ta * inner,
                  static_cast<size_t>(ta * inner) * sizeof(float));
    }
    offset += ta;
  }
  if (EvalMode::active()) return SealEval(std::move(out));

  std::vector<int64_t> sizes;
  sizes.reserve(tensors.size());
  for (const Tensor& t : tensors) sizes.push_back(t.shape().dim(axis));
  return SealGraph(std::move(out), tensors,
                   [axis, sizes](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     std::vector<Tensor> grads;
                     grads.reserve(sizes.size());
                     int64_t start = 0;
                     for (int64_t size : sizes) {
                       grads.push_back(Slice(grad, axis, start, size));
                       start += size;
                     }
                     return grads;
                   });
}

Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t length) {
  const Shape& shape = t.shape();
  FEWNER_CHECK(axis >= 0 && axis < shape.rank(), "Slice axis out of range");
  FEWNER_CHECK(start >= 0 && length >= 0 && start + length <= shape.dim(axis),
               "Slice [" << start << ", " << start + length << ") out of range for dim "
                         << shape.dim(axis));
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape.dim(d);
  for (int64_t d = axis + 1; d < shape.rank(); ++d) inner *= shape.dim(d);
  const int64_t axis_size = shape.dim(axis);

  OpOutput out = NewOutputPatched("slice", shape, axis, length);
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(ov + o * length * inner, tv + (o * axis_size + start) * inner,
                static_cast<size_t>(length * inner) * sizeof(float));
  }
  if (EvalMode::active()) return SealEval(std::move(out));

  // Backward pads the gradient back to the input extent with zero blocks; the
  // zero constants carry no higher-order terms, which is exact for slicing.
  std::vector<int64_t> before_dims = shape.dims();
  before_dims[static_cast<size_t>(axis)] = start;
  std::vector<int64_t> after_dims = shape.dims();
  after_dims[static_cast<size_t>(axis)] = axis_size - start - length;
  Shape before_shape{std::vector<int64_t>(before_dims)};
  Shape after_shape{std::vector<int64_t>(after_dims)};
  return SealGraph(
      std::move(out), {t},
      [axis, before_shape, after_shape](const Tensor&,
                                        const Tensor& grad) -> std::vector<Tensor> {
        std::vector<Tensor> pieces;
        if (before_shape.dim(axis) > 0) pieces.push_back(Tensor::Zeros(before_shape));
        pieces.push_back(grad);
        if (after_shape.dim(axis) > 0) pieces.push_back(Tensor::Zeros(after_shape));
        return {Concat(pieces, axis)};
      });
}

// ----- reductions -----

Tensor SumAll(const Tensor& t) {
  double total = 0.0;
  for (float v : t.data()) total += v;
  OpOutput out = NewOutput("sum_all", Shape{});
  out.data()[0] = static_cast<float>(total);
  if (EvalMode::active()) return SealEval(std::move(out));
  Shape in_shape = t.shape();
  return SealGraph(std::move(out), {t},
                   [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {BroadcastTo(grad, in_shape)};
                   });
}

Tensor SumAllFloat(const Tensor& t) {
  const auto& tv = t.data();
  FEWNER_CHECK(!tv.empty(), "SumAllFloat on empty tensor");
  // Seed from the first element, not 0.0f: the fold being reproduced starts
  // at its first term, and 0.0f + x is not an identity for x == -0.0f.
  float total = tv[0];
  for (size_t i = 1; i < tv.size(); ++i) total += tv[i];
  OpOutput out = NewOutput("sum_all_float", Shape{});
  out.data()[0] = total;
  if (EvalMode::active()) return SealEval(std::move(out));
  Shape in_shape = t.shape();
  return SealGraph(std::move(out), {t},
                   [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {BroadcastTo(grad, in_shape)};
                   });
}

Tensor SumAxis(const Tensor& t, int64_t axis, bool keepdim) {
  const Shape& shape = t.shape();
  FEWNER_CHECK(axis >= 0 && axis < shape.rank(), "SumAxis axis out of range");
  std::vector<int64_t> keep_dims = shape.dims();
  keep_dims[static_cast<size_t>(axis)] = 1;
  Shape keep_shape{std::vector<int64_t>(keep_dims)};
  Tensor summed = SumTo(t, keep_shape);
  if (keepdim) return summed;
  std::vector<int64_t> out_dims;
  for (int64_t d = 0; d < shape.rank(); ++d) {
    if (d != axis) out_dims.push_back(shape.dim(d));
  }
  return Reshape(summed, Shape{std::move(out_dims)});
}

Tensor MeanAll(const Tensor& t) {
  return MulScalar(SumAll(t), 1.0f / static_cast<float>(t.numel()));
}

Tensor RowSum(const Tensor& t) {
  FEWNER_CHECK(t.rank() == 2, "RowSum requires rank 2, got " << t.shape().ToString());
  const int64_t r = t.shape().dim(0);
  const int64_t c = t.shape().dim(1);
  OpOutput out = NewOutput("row_sum", Shape{r});
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t i = 0; i < r; ++i) {
    // Double accumulation in ascending column order: bitwise-identical to
    // SumAll restricted to this row's elements.
    double total = 0.0;
    for (int64_t j = 0; j < c; ++j) total += tv[i * c + j];
    ov[i] = static_cast<float>(total);
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  Shape in_shape = t.shape();
  return SealGraph(std::move(out), {t},
                   [r, in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {BroadcastTo(Reshape(grad, Shape{r, 1}), in_shape)};
                   });
}

Tensor MaxAxis(const Tensor& t, int64_t axis, bool keepdim) {
  const Shape& shape = t.shape();
  FEWNER_CHECK(axis >= 0 && axis < shape.rank(), "MaxAxis axis out of range");
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape.dim(d);
  for (int64_t d = axis + 1; d < shape.rank(); ++d) inner *= shape.dim(d);
  const int64_t axis_size = shape.dim(axis);
  FEWNER_CHECK(axis_size > 0, "MaxAxis over empty axis");

  const bool graph = !EvalMode::active();
  const auto& tv = t.data();
  OpOutput out = NewOutputPatched("max_axis", shape, axis, 1);
  float* ov = out.data();
  // One-hot selection mask: locally constant, exact a.e. under create_graph.
  // Only the graph mode backward needs it.
  std::vector<float> mask;
  if (graph) mask.assign(tv.size(), 0.0f);
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      int64_t best = 0;
      float best_v = tv[static_cast<size_t>(o * axis_size * inner + i)];
      for (int64_t a = 1; a < axis_size; ++a) {
        const float v = tv[static_cast<size_t>((o * axis_size + a) * inner + i)];
        if (v > best_v) {
          best_v = v;
          best = a;
        }
      }
      ov[o * inner + i] = best_v;
      if (graph) mask[static_cast<size_t>((o * axis_size + best) * inner + i)] = 1.0f;
    }
  }
  Tensor result;
  if (graph) {
    Shape keep_shape = out.node->shape;
    Tensor mask_t = Tensor::FromData(shape, std::move(mask));
    Shape in_shape = shape;
    result = SealGraph(
        std::move(out), {t},
        [mask_t, keep_shape, in_shape](const Tensor&,
                                       const Tensor& grad) -> std::vector<Tensor> {
          Tensor g = Reshape(grad, keep_shape);
          return {Mul(BroadcastTo(g, in_shape), mask_t)};
        });
  } else {
    result = SealEval(std::move(out));
  }
  if (keepdim) return result;
  std::vector<int64_t> out_dims;
  for (int64_t d = 0; d < shape.rank(); ++d) {
    if (d != axis) out_dims.push_back(shape.dim(d));
  }
  return Reshape(result, Shape{std::move(out_dims)});
}

// ----- linear algebra -----

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FEWNER_CHECK(a.rank() == 2 && b.rank() == 2,
               "MatMul requires rank-2 operands, got " << a.shape().ToString() << " x "
                                                       << b.shape().ToString());
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  FEWNER_CHECK(b.shape().dim(0) == k, "MatMul inner dim mismatch: "
                                          << a.shape().ToString() << " x "
                                          << b.shape().ToString());
  OpOutput out = NewOutput("matmul", Shape{m, n});
  // The register-tiled kernel serves graph and eval mode alike, so training
  // forwards take the same fast path as serving.
  kernel::GemmNN(a.data().data(), b.data().data(), out.data(), m, k, n);
  if (EvalMode::active()) return SealEval(std::move(out));
  // dA = G·Bᵀ and dB = Aᵀ·G go straight to the NT/TN kernels — no Transpose
  // nodes, no copies — and each is built only for an input that can use it.
  const bool need_a = a.requires_grad();
  const bool need_b = b.requires_grad();
  return SealGraph(std::move(out), {a, b},
                   [a, b, need_a, need_b](const Tensor&,
                                          const Tensor& grad) -> std::vector<Tensor> {
                     std::vector<Tensor> grads(2);
                     if (need_a) grads[0] = MatMulNT(grad, b);
                     if (need_b) grads[1] = MatMulTN(a, grad);
                     return grads;
                   });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  FEWNER_CHECK(a.rank() == 2 && b.rank() == 2,
               "MatMulNT requires rank-2 operands, got " << a.shape().ToString() << " x "
                                                         << b.shape().ToString());
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(0);
  FEWNER_CHECK(b.shape().dim(1) == k, "MatMulNT inner dim mismatch: "
                                          << a.shape().ToString() << " x "
                                          << b.shape().ToString() << "^T");
  OpOutput out = NewOutput("matmul_nt", Shape{m, n});
  kernel::GemmNT(a.data().data(), b.data().data(), out.data(), m, k, n);
  if (EvalMode::active()) return SealEval(std::move(out));
  // C = A·Bᵀ: dA = G·B (plain NN), dB = Gᵀ·A.
  const bool need_a = a.requires_grad();
  const bool need_b = b.requires_grad();
  return SealGraph(std::move(out), {a, b},
                   [a, b, need_a, need_b](const Tensor&,
                                          const Tensor& grad) -> std::vector<Tensor> {
                     std::vector<Tensor> grads(2);
                     if (need_a) grads[0] = MatMul(grad, b);
                     if (need_b) grads[1] = MatMulTN(grad, a);
                     return grads;
                   });
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  FEWNER_CHECK(a.rank() == 2 && b.rank() == 2,
               "MatMulTN requires rank-2 operands, got " << a.shape().ToString() << "^T x "
                                                         << b.shape().ToString());
  const int64_t k = a.shape().dim(0);
  const int64_t m = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  FEWNER_CHECK(b.shape().dim(0) == k, "MatMulTN inner dim mismatch: "
                                          << a.shape().ToString() << "^T x "
                                          << b.shape().ToString());
  OpOutput out = NewOutput("matmul_tn", Shape{m, n});
  kernel::GemmTN(a.data().data(), b.data().data(), out.data(), m, k, n);
  if (EvalMode::active()) return SealEval(std::move(out));
  // C = Aᵀ·B: dA = B·Gᵀ, dB = A·G (plain NN).
  const bool need_a = a.requires_grad();
  const bool need_b = b.requires_grad();
  return SealGraph(std::move(out), {a, b},
                   [a, b, need_a, need_b](const Tensor&,
                                          const Tensor& grad) -> std::vector<Tensor> {
                     std::vector<Tensor> grads(2);
                     if (need_a) grads[0] = MatMulNT(b, grad);
                     if (need_b) grads[1] = MatMul(a, grad);
                     return grads;
                   });
}

// ----- gather / scatter -----

Tensor IndexSelectRows(const Tensor& t, const std::vector<int64_t>& indices) {
  FEWNER_CHECK(t.rank() == 2, "IndexSelectRows requires rank 2");
  const int64_t v = t.shape().dim(0);
  const int64_t d = t.shape().dim(1);
  OpOutput out = NewOutput("index_select_rows",
                           Shape{static_cast<int64_t>(indices.size()), d});
  float* ov = out.data();
  const float* tv = t.data().data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    FEWNER_CHECK(row >= 0 && row < v, "IndexSelectRows index " << row << " out of [0, "
                                                               << v << ")");
    std::memcpy(ov + i * static_cast<size_t>(d), tv + row * d,
                static_cast<size_t>(d) * sizeof(float));
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  std::vector<int64_t> idx = indices;
  return SealGraph(std::move(out), {t},
                   [idx, v](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {ScatterAddRows(grad, idx, v)};
                   });
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& indices,
                      int64_t num_rows) {
  FEWNER_CHECK(src.rank() == 2, "ScatterAddRows requires rank 2");
  FEWNER_CHECK(static_cast<int64_t>(indices.size()) == src.shape().dim(0),
               "ScatterAddRows: " << indices.size() << " indices for "
                                  << src.shape().dim(0) << " rows");
  const int64_t d = src.shape().dim(1);
  OpOutput out = NewOutput("scatter_add_rows", Shape{num_rows, d}, /*zero=*/true);
  float* ov = out.data();
  const float* sv = src.data().data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    FEWNER_CHECK(row >= 0 && row < num_rows, "ScatterAddRows index out of range");
    for (int64_t j = 0; j < d; ++j) {
      ov[row * d + j] += sv[i * static_cast<size_t>(d) + static_cast<size_t>(j)];
    }
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  std::vector<int64_t> idx = indices;
  return SealGraph(std::move(out), {src},
                   [idx](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {IndexSelectRows(grad, idx)};
                   });
}

Tensor Unfold1d(const Tensor& t, int64_t window) {
  FEWNER_CHECK(t.rank() == 2, "Unfold1d requires rank 2");
  const int64_t length = t.shape().dim(0);
  const int64_t d = t.shape().dim(1);
  FEWNER_CHECK(window >= 1 && window <= length,
               "Unfold1d window " << window << " for length " << length);
  const int64_t m = length - window + 1;
  OpOutput out = NewOutput("unfold1d", Shape{m, window * d});
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(ov + i * window * d, tv + i * d,
                static_cast<size_t>(window * d) * sizeof(float));
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [window](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {Fold1d(grad, window)};
                   });
}

Tensor Fold1d(const Tensor& t, int64_t window) {
  FEWNER_CHECK(t.rank() == 2, "Fold1d requires rank 2");
  const int64_t m = t.shape().dim(0);
  const int64_t wd = t.shape().dim(1);
  FEWNER_CHECK(window >= 1 && wd % window == 0,
               "Fold1d: window " << window << " does not divide row size " << wd);
  const int64_t d = wd / window;
  const int64_t length = m + window - 1;
  OpOutput out = NewOutput("fold1d", Shape{length, d}, /*zero=*/true);
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t w = 0; w < window; ++w) {
      for (int64_t j = 0; j < d; ++j) {
        ov[(i + w) * d + j] += tv[i * wd + w * d + j];
      }
    }
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [window](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {Unfold1d(grad, window)};
                   });
}

Tensor UnfoldTimeBatch(const Tensor& t, int64_t window) {
  FEWNER_CHECK(t.rank() == 3, "UnfoldTimeBatch requires rank 3");
  const int64_t lanes = t.shape().dim(0);
  const int64_t length = t.shape().dim(1);
  const int64_t d = t.shape().dim(2);
  FEWNER_CHECK(window >= 1 && window <= length,
               "UnfoldTimeBatch window " << window << " for length " << length);
  const int64_t m = length - window + 1;
  OpOutput out = NewOutput("unfold_time_batch", Shape{lanes, m, window * d});
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t b = 0; b < lanes; ++b) {
    const float* src = tv + b * length * d;
    float* dst = ov + b * m * window * d;
    for (int64_t i = 0; i < m; ++i) {
      std::memcpy(dst + i * window * d, src + i * d,
                  static_cast<size_t>(window * d) * sizeof(float));
    }
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [window](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {FoldTimeBatch(grad, window)};
                   });
}

Tensor FoldTimeBatch(const Tensor& t, int64_t window) {
  FEWNER_CHECK(t.rank() == 3, "FoldTimeBatch requires rank 3");
  const int64_t lanes = t.shape().dim(0);
  const int64_t m = t.shape().dim(1);
  const int64_t wd = t.shape().dim(2);
  FEWNER_CHECK(window >= 1 && wd % window == 0,
               "FoldTimeBatch: window " << window << " does not divide row size " << wd);
  const int64_t d = wd / window;
  const int64_t length = m + window - 1;
  OpOutput out = NewOutput("fold_time_batch", Shape{lanes, length, d}, /*zero=*/true);
  float* ov = out.data();
  const float* tv = t.data().data();
  for (int64_t b = 0; b < lanes; ++b) {
    const float* src = tv + b * m * wd;
    float* dst = ov + b * length * d;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t w = 0; w < window; ++w) {
        for (int64_t j = 0; j < d; ++j) {
          dst[(i + w) * d + j] += src[i * wd + w * d + j];
        }
      }
    }
  }
  if (EvalMode::active()) return SealEval(std::move(out));
  return SealGraph(std::move(out), {t},
                   [window](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     return {UnfoldTimeBatch(grad, window)};
                   });
}

Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  FEWNER_CHECK(cond.defined() && a.defined() && b.defined(), "Where on undefined tensor");
  FEWNER_CHECK(a.shape() == b.shape(), "Where branch shape mismatch: "
                                           << a.shape().ToString() << " vs "
                                           << b.shape().ToString());
  FEWNER_CHECK(cond.shape().BroadcastableTo(a.shape()),
               "Where cond " << cond.shape().ToString() << " not broadcastable to "
                             << a.shape().ToString());
  const bool graph = !EvalMode::active();
  const auto& av = a.data();
  const auto& bv = b.data();
  const auto& cv = cond.data();
  const int64_t n = a.numel();
  OpOutput out = NewOutput("where", a.shape());
  float* ov = out.data();
  // Selection masks for backward: constant a.e., exact like Relu's kink mask.
  std::vector<float> sel;
  if (graph) sel.assign(static_cast<size_t>(n), 0.0f);
  if (cond.shape() == a.shape()) {
    for (int64_t i = 0; i < n; ++i) {
      const bool take_a = cv[static_cast<size_t>(i)] != 0.0f;
      ov[i] = take_a ? av[static_cast<size_t>(i)] : bv[static_cast<size_t>(i)];
      if (graph && take_a) sel[static_cast<size_t>(i)] = 1.0f;
    }
  } else {
    BroadcastIndexer indexer(cond.shape(), a.shape());
    for (int64_t i = 0; i < n; ++i) {
      const bool take_a = cv[static_cast<size_t>(indexer.Next())] != 0.0f;
      ov[i] = take_a ? av[static_cast<size_t>(i)] : bv[static_cast<size_t>(i)];
      if (graph && take_a) sel[static_cast<size_t>(i)] = 1.0f;
    }
  }
  if (!graph) return SealEval(std::move(out));
  Tensor sel_t = Tensor::FromData(a.shape(), std::move(sel));
  return SealGraph(std::move(out), {a, b},
                   [sel_t](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                     Tensor inv = AddScalar(Neg(sel_t), 1.0f);
                     return {Mul(grad, sel_t), Mul(grad, inv)};
                   });
}

// ----- composites -----

Tensor LogSumExpLastDim(const Tensor& t) {
  const int64_t axis = t.rank() - 1;
  FEWNER_CHECK(axis >= 0, "LogSumExpLastDim on a scalar");
  // Detached max shift: constant w.r.t. differentiation, exact for stability.
  Tensor m = MaxAxis(t, axis, /*keepdim=*/true);
  if (!EvalMode::active()) m = m.Detach();
  Tensor shifted = Sub(t, BroadcastTo(m, t.shape()));
  Tensor lse = Log(SumAxis(Exp(shifted), axis, /*keepdim=*/true));
  return Add(lse, m);
}

Tensor LogSoftmaxLastDim(const Tensor& t) {
  return Sub(t, BroadcastTo(LogSumExpLastDim(t), t.shape()));
}

Tensor SoftmaxLastDim(const Tensor& t) { return Exp(LogSoftmaxLastDim(t)); }

Tensor Dropout(const Tensor& t, float p, util::Rng* rng, bool training) {
  if (!training || p <= 0.0f) return t;
  FEWNER_CHECK(p < 1.0f, "Dropout rate must be < 1");
  FEWNER_CHECK(rng != nullptr, "Dropout requires an Rng in training mode");
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(t.data().size());
  for (float& v : mask) v = rng->Bernoulli(p) ? 0.0f : scale;
  return Mul(t, Tensor::FromData(t.shape(), std::move(mask)));
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  FEWNER_CHECK(!rows.empty(), "StackRows of zero rows");
  std::vector<Tensor> reshaped;
  reshaped.reserve(rows.size());
  const int64_t d = rows[0].numel();
  for (const Tensor& row : rows) {
    FEWNER_CHECK(row.numel() == d, "StackRows size mismatch");
    reshaped.push_back(Reshape(row, Shape{1, d}));
  }
  return Concat(reshaped, 0);
}

}  // namespace fewner::tensor
