#include "tensor/ops.h"

#include <cmath>
#include <cstring>
#include <functional>

namespace fewner::tensor {

namespace {

/// Builds an op node.  requires_grad is inherited from any input.
Tensor MakeOp(const char* op, Shape shape, std::vector<float> values,
              std::vector<Tensor> inputs, BackwardFn backward) {
  auto node = std::make_shared<internal::Node>();
  node->shape = std::move(shape);
  node->values = std::move(values);
  node->op = op;
  bool rg = false;
  for (const Tensor& in : inputs) rg = rg || in.requires_grad();
  node->requires_grad = rg;
  node->inputs = std::move(inputs);
  if (rg) node->backward = std::move(backward);
  return Tensor::FromNode(std::move(node));
}

/// Maps a flat index in `out_shape` to a flat index in `in_shape`
/// (right-aligned broadcasting; size-1 dims in the input are pinned to 0).
struct BroadcastIndexer {
  explicit BroadcastIndexer(const Shape& in_shape, const Shape& out_shape) {
    const int64_t out_rank = out_shape.rank();
    const int64_t offset = out_rank - in_shape.rank();
    out_dims = out_shape.dims();
    in_strides.assign(static_cast<size_t>(out_rank), 0);
    std::vector<int64_t> strides = in_shape.Strides();
    for (int64_t i = 0; i < in_shape.rank(); ++i) {
      if (in_shape.dim(i) != 1) {
        in_strides[static_cast<size_t>(i + offset)] = strides[static_cast<size_t>(i)];
      }
    }
  }

  int64_t Map(int64_t out_flat) const {
    int64_t in_flat = 0;
    for (int64_t i = static_cast<int64_t>(out_dims.size()) - 1; i >= 0; --i) {
      const int64_t d = out_dims[static_cast<size_t>(i)];
      const int64_t coord = out_flat % d;
      out_flat /= d;
      in_flat += coord * in_strides[static_cast<size_t>(i)];
    }
    return in_flat;
  }

  std::vector<int64_t> out_dims;
  std::vector<int64_t> in_strides;
};

using BinaryFn = float (*)(float, float);

/// Shared implementation for broadcasting elementwise binary ops.
Tensor ElementwiseBinary(const char* op, const Tensor& a, const Tensor& b, BinaryFn f,
                         BackwardFn backward) {
  FEWNER_CHECK(a.defined() && b.defined(), op << " on undefined tensor");
  if (a.shape() == b.shape()) {
    const auto& av = a.data();
    const auto& bv = b.data();
    std::vector<float> out(av.size());
    for (size_t i = 0; i < av.size(); ++i) out[i] = f(av[i], bv[i]);
    return MakeOp(op, a.shape(), std::move(out), {a, b}, std::move(backward));
  }
  auto result_shape = Shape::Broadcast(a.shape(), b.shape());
  FEWNER_CHECK(result_shape.ok(), op << ": " << result_shape.status().ToString());
  Shape shape = std::move(result_shape).value();
  BroadcastIndexer ia(a.shape(), shape);
  BroadcastIndexer ib(b.shape(), shape);
  const int64_t n = shape.numel();
  std::vector<float> out(static_cast<size_t>(n));
  const auto& av = a.data();
  const auto& bv = b.data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = f(av[static_cast<size_t>(ia.Map(i))],
                                    bv[static_cast<size_t>(ib.Map(i))]);
  }
  return MakeOp(op, std::move(shape), std::move(out), {a, b}, std::move(backward));
}

using UnaryFn = float (*)(float);

/// Shared implementation for elementwise unary ops.
Tensor ElementwiseUnary(const char* op, const Tensor& t, UnaryFn f,
                        BackwardFn backward) {
  FEWNER_CHECK(t.defined(), op << " on undefined tensor");
  const auto& tv = t.data();
  std::vector<float> out(tv.size());
  for (size_t i = 0; i < tv.size(); ++i) out[i] = f(tv[i]);
  return MakeOp(op, t.shape(), std::move(out), {t}, std::move(backward));
}

}  // namespace

// ----- elementwise binary -----

Tensor Add(const Tensor& a, const Tensor& b) {
  Shape sa = a.shape(), sb = b.shape();
  return ElementwiseBinary(
      "add", a, b, [](float x, float y) { return x + y; },
      [sa, sb](const Tensor& /*self*/, const Tensor& grad) -> std::vector<Tensor> {
        return {SumTo(grad, sa), SumTo(grad, sb)};
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Shape sa = a.shape(), sb = b.shape();
  return ElementwiseBinary(
      "sub", a, b, [](float x, float y) { return x - y; },
      [sa, sb](const Tensor& /*self*/, const Tensor& grad) -> std::vector<Tensor> {
        return {SumTo(grad, sa), SumTo(Neg(grad), sb)};
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Shape sa = a.shape(), sb = b.shape();
  return ElementwiseBinary(
      "mul", a, b, [](float x, float y) { return x * y; },
      [a, b, sa, sb](const Tensor& /*self*/, const Tensor& grad) -> std::vector<Tensor> {
        return {SumTo(Mul(grad, b), sa), SumTo(Mul(grad, a), sb)};
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Shape sa = a.shape(), sb = b.shape();
  return ElementwiseBinary(
      "div", a, b, [](float x, float y) { return x / y; },
      [a, b, sa, sb](const Tensor& /*self*/, const Tensor& grad) -> std::vector<Tensor> {
        Tensor ga = SumTo(Div(grad, b), sa);
        Tensor gb = SumTo(Neg(Div(Mul(grad, a), Mul(b, b))), sb);
        return {ga, gb};
      });
}

// ----- elementwise unary -----

Tensor Neg(const Tensor& t) {
  return ElementwiseUnary(
      "neg", t, [](float x) { return -x; },
      [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
        return {Neg(grad)};
      });
}

Tensor Sigmoid(const Tensor& t) {
  return ElementwiseUnary(
      "sigmoid", t, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
        // d/dx sigmoid = y * (1 - y), with y the op output (still in-graph).
        Tensor one_minus = AddScalar(Neg(self), 1.0f);
        return {Mul(grad, Mul(self, one_minus))};
      });
}

Tensor Tanh(const Tensor& t) {
  return ElementwiseUnary(
      "tanh", t, [](float x) { return std::tanh(x); },
      [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
        return {Mul(grad, AddScalar(Neg(Mul(self, self)), 1.0f))};
      });
}

Tensor Relu(const Tensor& t) {
  // The 0/1 mask is a local constant of the input sign pattern; its own
  // derivative is zero a.e., so a constant tensor is the right backward here
  // even under create_graph.
  std::vector<float> mask(t.data().size());
  for (size_t i = 0; i < mask.size(); ++i) mask[i] = t.data()[i] > 0.0f ? 1.0f : 0.0f;
  Tensor mask_t = Tensor::FromData(t.shape(), std::move(mask));
  return ElementwiseUnary(
      "relu", t, [](float x) { return x > 0.0f ? x : 0.0f; },
      [mask_t](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
        return {Mul(grad, mask_t)};
      });
}

Tensor Exp(const Tensor& t) {
  return ElementwiseUnary(
      "exp", t, [](float x) { return std::exp(x); },
      [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
        return {Mul(grad, self)};
      });
}

Tensor Log(const Tensor& t) {
  return ElementwiseUnary(
      "log", t, [](float x) { return std::log(x); },
      [t](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
        return {Div(grad, t)};
      });
}

Tensor Sqrt(const Tensor& t) {
  return ElementwiseUnary(
      "sqrt", t, [](float x) { return std::sqrt(x); },
      [](const Tensor& self, const Tensor& grad) -> std::vector<Tensor> {
        return {Div(MulScalar(grad, 0.5f), self)};
      });
}

Tensor Square(const Tensor& t) { return Mul(t, t); }

// ----- scalar forms -----

Tensor AddScalar(const Tensor& t, float c) {
  std::vector<float> out(t.data());
  for (float& v : out) v += c;
  return MakeOp("add_scalar", t.shape(), std::move(out), {t},
                [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {grad};
                });
}

Tensor MulScalar(const Tensor& t, float c) {
  std::vector<float> out(t.data());
  for (float& v : out) v *= c;
  return MakeOp("mul_scalar", t.shape(), std::move(out), {t},
                [c](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {MulScalar(grad, c)};
                });
}

// ----- shape manipulation -----

Tensor Reshape(const Tensor& t, Shape shape) {
  FEWNER_CHECK(shape.numel() == t.numel(), "Reshape " << t.shape().ToString() << " -> "
                                                      << shape.ToString());
  Shape original = t.shape();
  return MakeOp("reshape", std::move(shape), t.data(), {t},
                [original](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {Reshape(grad, original)};
                });
}

Tensor Transpose(const Tensor& t) {
  FEWNER_CHECK(t.rank() == 2, "Transpose requires rank 2, got " << t.shape().ToString());
  const int64_t m = t.shape().dim(0);
  const int64_t n = t.shape().dim(1);
  std::vector<float> out(static_cast<size_t>(m * n));
  const auto& tv = t.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out[static_cast<size_t>(j * m + i)] = tv[static_cast<size_t>(i * n + j)];
    }
  }
  return MakeOp("transpose", Shape{n, m}, std::move(out), {t},
                [](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {Transpose(grad)};
                });
}

Tensor BroadcastTo(const Tensor& t, Shape shape) {
  if (t.shape() == shape) return t;
  FEWNER_CHECK(t.shape().BroadcastableTo(shape),
               "BroadcastTo " << t.shape().ToString() << " -> " << shape.ToString());
  BroadcastIndexer indexer(t.shape(), shape);
  const int64_t n = shape.numel();
  std::vector<float> out(static_cast<size_t>(n));
  const auto& tv = t.data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = tv[static_cast<size_t>(indexer.Map(i))];
  }
  Shape in_shape = t.shape();
  return MakeOp("broadcast_to", std::move(shape), std::move(out), {t},
                [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {SumTo(grad, in_shape)};
                });
}

Tensor SumTo(const Tensor& t, Shape shape) {
  if (t.shape() == shape) return t;
  FEWNER_CHECK(shape.BroadcastableTo(t.shape()),
               "SumTo " << t.shape().ToString() << " -> " << shape.ToString());
  BroadcastIndexer indexer(shape, t.shape());
  const int64_t n = t.numel();
  std::vector<float> out(static_cast<size_t>(shape.numel()), 0.0f);
  const auto& tv = t.data();
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(indexer.Map(i))] += tv[static_cast<size_t>(i)];
  }
  Shape in_shape = t.shape();
  return MakeOp("sum_to", std::move(shape), std::move(out), {t},
                [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {BroadcastTo(grad, in_shape)};
                });
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  FEWNER_CHECK(!tensors.empty(), "Concat of zero tensors");
  if (tensors.size() == 1) return tensors[0];
  const Shape& first = tensors[0].shape();
  FEWNER_CHECK(axis >= 0 && axis < first.rank(),
               "Concat axis " << axis << " out of range for " << first.ToString());
  int64_t axis_total = 0;
  for (const Tensor& t : tensors) {
    FEWNER_CHECK(t.rank() == first.rank(), "Concat rank mismatch");
    for (int64_t d = 0; d < first.rank(); ++d) {
      if (d != axis) {
        FEWNER_CHECK(t.shape().dim(d) == first.dim(d),
                     "Concat dim mismatch at axis " << d);
      }
    }
    axis_total += t.shape().dim(axis);
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims[static_cast<size_t>(axis)] = axis_total;
  Shape out_shape{std::vector<int64_t>(out_dims)};

  // outer = product of dims before axis; inner = product after axis.
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= first.dim(d);
  for (int64_t d = axis + 1; d < first.rank(); ++d) inner *= first.dim(d);

  std::vector<float> out(static_cast<size_t>(out_shape.numel()));
  int64_t offset = 0;  // running position along the concat axis
  for (const Tensor& t : tensors) {
    const int64_t ta = t.shape().dim(axis);
    const auto& tv = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(&out[static_cast<size_t>((o * axis_total + offset) * inner)],
                  &tv[static_cast<size_t>(o * ta * inner)],
                  static_cast<size_t>(ta * inner) * sizeof(float));
    }
    offset += ta;
  }

  std::vector<int64_t> sizes;
  sizes.reserve(tensors.size());
  for (const Tensor& t : tensors) sizes.push_back(t.shape().dim(axis));
  return MakeOp("concat", std::move(out_shape), std::move(out), tensors,
                [axis, sizes](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  std::vector<Tensor> grads;
                  grads.reserve(sizes.size());
                  int64_t start = 0;
                  for (int64_t size : sizes) {
                    grads.push_back(Slice(grad, axis, start, size));
                    start += size;
                  }
                  return grads;
                });
}

Tensor Slice(const Tensor& t, int64_t axis, int64_t start, int64_t length) {
  const Shape& shape = t.shape();
  FEWNER_CHECK(axis >= 0 && axis < shape.rank(), "Slice axis out of range");
  FEWNER_CHECK(start >= 0 && length >= 0 && start + length <= shape.dim(axis),
               "Slice [" << start << ", " << start + length << ") out of range for dim "
                         << shape.dim(axis));
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape.dim(d);
  for (int64_t d = axis + 1; d < shape.rank(); ++d) inner *= shape.dim(d);
  const int64_t axis_size = shape.dim(axis);

  std::vector<int64_t> out_dims = shape.dims();
  out_dims[static_cast<size_t>(axis)] = length;
  Shape out_shape{std::vector<int64_t>(out_dims)};
  std::vector<float> out(static_cast<size_t>(out_shape.numel()));
  const auto& tv = t.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(&out[static_cast<size_t>(o * length * inner)],
                &tv[static_cast<size_t>((o * axis_size + start) * inner)],
                static_cast<size_t>(length * inner) * sizeof(float));
  }

  // Backward pads the gradient back to the input extent with zero blocks; the
  // zero constants carry no higher-order terms, which is exact for slicing.
  std::vector<int64_t> before_dims = shape.dims();
  before_dims[static_cast<size_t>(axis)] = start;
  std::vector<int64_t> after_dims = shape.dims();
  after_dims[static_cast<size_t>(axis)] = axis_size - start - length;
  Shape before_shape{std::vector<int64_t>(before_dims)};
  Shape after_shape{std::vector<int64_t>(after_dims)};
  return MakeOp(
      "slice", std::move(out_shape), std::move(out), {t},
      [axis, before_shape, after_shape](const Tensor&,
                                        const Tensor& grad) -> std::vector<Tensor> {
        std::vector<Tensor> pieces;
        if (before_shape.dim(axis) > 0) pieces.push_back(Tensor::Zeros(before_shape));
        pieces.push_back(grad);
        if (after_shape.dim(axis) > 0) pieces.push_back(Tensor::Zeros(after_shape));
        return {Concat(pieces, axis)};
      });
}

// ----- reductions -----

Tensor SumAll(const Tensor& t) {
  double total = 0.0;
  for (float v : t.data()) total += v;
  Shape in_shape = t.shape();
  return MakeOp("sum_all", Shape{}, {static_cast<float>(total)}, {t},
                [in_shape](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {BroadcastTo(grad, in_shape)};
                });
}

Tensor SumAxis(const Tensor& t, int64_t axis, bool keepdim) {
  const Shape& shape = t.shape();
  FEWNER_CHECK(axis >= 0 && axis < shape.rank(), "SumAxis axis out of range");
  std::vector<int64_t> keep_dims = shape.dims();
  keep_dims[static_cast<size_t>(axis)] = 1;
  Shape keep_shape{std::vector<int64_t>(keep_dims)};
  Tensor summed = SumTo(t, keep_shape);
  if (keepdim) return summed;
  std::vector<int64_t> out_dims;
  for (int64_t d = 0; d < shape.rank(); ++d) {
    if (d != axis) out_dims.push_back(shape.dim(d));
  }
  return Reshape(summed, Shape{std::move(out_dims)});
}

Tensor MeanAll(const Tensor& t) {
  return MulScalar(SumAll(t), 1.0f / static_cast<float>(t.numel()));
}

Tensor MaxAxis(const Tensor& t, int64_t axis, bool keepdim) {
  const Shape& shape = t.shape();
  FEWNER_CHECK(axis >= 0 && axis < shape.rank(), "MaxAxis axis out of range");
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape.dim(d);
  for (int64_t d = axis + 1; d < shape.rank(); ++d) inner *= shape.dim(d);
  const int64_t axis_size = shape.dim(axis);
  FEWNER_CHECK(axis_size > 0, "MaxAxis over empty axis");

  std::vector<int64_t> keep_dims = shape.dims();
  keep_dims[static_cast<size_t>(axis)] = 1;
  Shape keep_shape{std::vector<int64_t>(keep_dims)};

  const auto& tv = t.data();
  std::vector<float> out(static_cast<size_t>(outer * inner));
  // One-hot selection mask: locally constant, exact a.e. under create_graph.
  std::vector<float> mask(tv.size(), 0.0f);
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      int64_t best = 0;
      float best_v = tv[static_cast<size_t>(o * axis_size * inner + i)];
      for (int64_t a = 1; a < axis_size; ++a) {
        const float v = tv[static_cast<size_t>((o * axis_size + a) * inner + i)];
        if (v > best_v) {
          best_v = v;
          best = a;
        }
      }
      out[static_cast<size_t>(o * inner + i)] = best_v;
      mask[static_cast<size_t>((o * axis_size + best) * inner + i)] = 1.0f;
    }
  }
  Tensor mask_t = Tensor::FromData(shape, std::move(mask));
  Shape in_shape = shape;
  Tensor result = MakeOp(
      "max_axis", keep_shape, std::move(out), {t},
      [mask_t, keep_shape, in_shape](const Tensor&,
                                     const Tensor& grad) -> std::vector<Tensor> {
        Tensor g = Reshape(grad, keep_shape);
        return {Mul(BroadcastTo(g, in_shape), mask_t)};
      });
  if (keepdim) return result;
  std::vector<int64_t> out_dims;
  for (int64_t d = 0; d < shape.rank(); ++d) {
    if (d != axis) out_dims.push_back(shape.dim(d));
  }
  return Reshape(result, Shape{std::move(out_dims)});
}

// ----- linear algebra -----

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FEWNER_CHECK(a.rank() == 2 && b.rank() == 2,
               "MatMul requires rank-2 operands, got " << a.shape().ToString() << " x "
                                                       << b.shape().ToString());
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  FEWNER_CHECK(b.shape().dim(0) == k, "MatMul inner dim mismatch: "
                                          << a.shape().ToString() << " x "
                                          << b.shape().ToString());
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  const auto& av = a.data();
  const auto& bv = b.data();
  // i-k-j loop order: unit-stride inner loop over the output row.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = av[static_cast<size_t>(i * k + kk)];
      if (aik == 0.0f) continue;
      const float* brow = &bv[static_cast<size_t>(kk * n)];
      float* orow = &out[static_cast<size_t>(i * n)];
      for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return MakeOp("matmul", Shape{m, n}, std::move(out), {a, b},
                [a, b](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {MatMul(grad, Transpose(b)), MatMul(Transpose(a), grad)};
                });
}

// ----- gather / scatter -----

Tensor IndexSelectRows(const Tensor& t, const std::vector<int64_t>& indices) {
  FEWNER_CHECK(t.rank() == 2, "IndexSelectRows requires rank 2");
  const int64_t v = t.shape().dim(0);
  const int64_t d = t.shape().dim(1);
  std::vector<float> out(indices.size() * static_cast<size_t>(d));
  const auto& tv = t.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    FEWNER_CHECK(row >= 0 && row < v, "IndexSelectRows index " << row << " out of [0, "
                                                               << v << ")");
    std::memcpy(&out[i * static_cast<size_t>(d)], &tv[static_cast<size_t>(row * d)],
                static_cast<size_t>(d) * sizeof(float));
  }
  std::vector<int64_t> idx = indices;
  return MakeOp("index_select_rows",
                Shape{static_cast<int64_t>(indices.size()), d}, std::move(out), {t},
                [idx, v](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {ScatterAddRows(grad, idx, v)};
                });
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& indices,
                      int64_t num_rows) {
  FEWNER_CHECK(src.rank() == 2, "ScatterAddRows requires rank 2");
  FEWNER_CHECK(static_cast<int64_t>(indices.size()) == src.shape().dim(0),
               "ScatterAddRows: " << indices.size() << " indices for "
                                  << src.shape().dim(0) << " rows");
  const int64_t d = src.shape().dim(1);
  std::vector<float> out(static_cast<size_t>(num_rows * d), 0.0f);
  const auto& sv = src.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    FEWNER_CHECK(row >= 0 && row < num_rows, "ScatterAddRows index out of range");
    for (int64_t j = 0; j < d; ++j) {
      out[static_cast<size_t>(row * d + j)] += sv[i * static_cast<size_t>(d) +
                                                  static_cast<size_t>(j)];
    }
  }
  std::vector<int64_t> idx = indices;
  return MakeOp("scatter_add_rows", Shape{num_rows, d}, std::move(out), {src},
                [idx](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {IndexSelectRows(grad, idx)};
                });
}

Tensor Unfold1d(const Tensor& t, int64_t window) {
  FEWNER_CHECK(t.rank() == 2, "Unfold1d requires rank 2");
  const int64_t length = t.shape().dim(0);
  const int64_t d = t.shape().dim(1);
  FEWNER_CHECK(window >= 1 && window <= length,
               "Unfold1d window " << window << " for length " << length);
  const int64_t m = length - window + 1;
  std::vector<float> out(static_cast<size_t>(m * window * d));
  const auto& tv = t.data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(&out[static_cast<size_t>(i * window * d)],
                &tv[static_cast<size_t>(i * d)],
                static_cast<size_t>(window * d) * sizeof(float));
  }
  return MakeOp("unfold1d", Shape{m, window * d}, std::move(out), {t},
                [window](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {Fold1d(grad, window)};
                });
}

Tensor Fold1d(const Tensor& t, int64_t window) {
  FEWNER_CHECK(t.rank() == 2, "Fold1d requires rank 2");
  const int64_t m = t.shape().dim(0);
  const int64_t wd = t.shape().dim(1);
  FEWNER_CHECK(window >= 1 && wd % window == 0,
               "Fold1d: window " << window << " does not divide row size " << wd);
  const int64_t d = wd / window;
  const int64_t length = m + window - 1;
  std::vector<float> out(static_cast<size_t>(length * d), 0.0f);
  const auto& tv = t.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t w = 0; w < window; ++w) {
      for (int64_t j = 0; j < d; ++j) {
        out[static_cast<size_t>((i + w) * d + j)] +=
            tv[static_cast<size_t>(i * wd + w * d + j)];
      }
    }
  }
  return MakeOp("fold1d", Shape{length, d}, std::move(out), {t},
                [window](const Tensor&, const Tensor& grad) -> std::vector<Tensor> {
                  return {Unfold1d(grad, window)};
                });
}

// ----- composites -----

Tensor LogSumExpLastDim(const Tensor& t) {
  const int64_t axis = t.rank() - 1;
  FEWNER_CHECK(axis >= 0, "LogSumExpLastDim on a scalar");
  // Detached max shift: constant w.r.t. differentiation, exact for stability.
  Tensor m = MaxAxis(t, axis, /*keepdim=*/true).Detach();
  Tensor shifted = Sub(t, BroadcastTo(m, t.shape()));
  Tensor lse = Log(SumAxis(Exp(shifted), axis, /*keepdim=*/true));
  return Add(lse, m);
}

Tensor LogSoftmaxLastDim(const Tensor& t) {
  return Sub(t, BroadcastTo(LogSumExpLastDim(t), t.shape()));
}

Tensor SoftmaxLastDim(const Tensor& t) { return Exp(LogSoftmaxLastDim(t)); }

Tensor Dropout(const Tensor& t, float p, util::Rng* rng, bool training) {
  if (!training || p <= 0.0f) return t;
  FEWNER_CHECK(p < 1.0f, "Dropout rate must be < 1");
  FEWNER_CHECK(rng != nullptr, "Dropout requires an Rng in training mode");
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(t.data().size());
  for (float& v : mask) v = rng->Bernoulli(p) ? 0.0f : scale;
  return Mul(t, Tensor::FromData(t.shape(), std::move(mask)));
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  FEWNER_CHECK(!rows.empty(), "StackRows of zero rows");
  std::vector<Tensor> reshaped;
  reshaped.reserve(rows.size());
  const int64_t d = rows[0].numel();
  for (const Tensor& row : rows) {
    FEWNER_CHECK(row.numel() == d, "StackRows size mismatch");
    reshaped.push_back(Reshape(row, Shape{1, d}));
  }
  return Concat(reshaped, 0);
}

}  // namespace fewner::tensor
