// Deterministic intra-op parallelism for the GEMM layer.
//
// The Gemm* entry points front the matmul kernels with a row-sharded parallel
// dispatch: C's rows are partitioned into disjoint contiguous slabs, each
// computed by exactly one thread running the ordinary serial kernel over its
// range.  Because every output element is owned by a single slab and the
// kernels accumulate each element on a single ascending-k chain (see
// matmul_kernel.h), the result is bitwise-identical for ANY thread count,
// including 1 — the partition changes which thread runs a given element's
// loop, never the loop itself.  There is no reduction and no shared write:
// determinism falls out of disjoint ownership, not of synchronization order.
//
// Small GEMMs stay serial: dispatch costs a queue round-trip per slab, so a
// multiply is only sharded when its flop volume (m·k·n) clears a threshold
// and there are enough rows for at least two full slabs.
//
// The slab budget is the scoped, thread-local ParallelismBudget.  Its default
// comes from FEWNER_INTRAOP_THREADS (unset -> 1, "0" -> all hardware
// threads, same grammar as FEWNER_THREADS).  Nesting with the episode-level
// parallelism of meta::ParallelMetaBatch (DESIGN.md §5) is arbitrated by
// scope: meta-batch workers run their tasks under ParallelismBudget(1), so
// during training the coarse episode grain owns the cores; at adaptation /
// serving time — the single-task path the paper's timing analysis cares
// about — no worker scope is active and the full budget applies.  Slabs run
// on a shared, lazily created pool that is independent of the episode pool,
// and each dispatch waits on its own latch, so concurrent servers can
// dispatch in parallel without blocking on each other's slabs.

#pragma once

#include <cstdint>

namespace fewner::tensor {

/// RAII scope setting the calling thread's intra-op slab budget.  Budgets
/// clamp to >= 1; the previous scope (or the FEWNER_INTRAOP_THREADS default)
/// is restored on destruction.  Thread-local: a scope on one thread never
/// affects GEMMs issued by another.
class ParallelismBudget {
 public:
  explicit ParallelismBudget(int64_t threads);
  ~ParallelismBudget();

  ParallelismBudget(const ParallelismBudget&) = delete;
  ParallelismBudget& operator=(const ParallelismBudget&) = delete;

  /// The budget in effect on the calling thread: the innermost live scope,
  /// else the FEWNER_INTRAOP_THREADS default.
  static int64_t current();

 private:
  int64_t prev_;  ///< enclosing scope's raw budget, restored on destruction
};

namespace kernel {

/// c[m, n] = a[m, k] * b[k, n] — MatMulBlocked, row-sharded when profitable.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

/// c[m, n] = a[m, k] * b[n, k]ᵀ — MatMulNT; under sharding, bᵀ is packed
/// once by the caller and the blocked core is sharded over the pack.
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

/// c[m, n] = a[k, m]ᵀ * b[k, n] — MatMulTN; slabs address a column block of
/// `a` via its leading dimension, so no copy is made in either mode.
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

}  // namespace kernel
}  // namespace fewner::tensor
