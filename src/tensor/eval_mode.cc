#include "tensor/eval_mode.h"

namespace fewner::tensor {

WorkspaceArena& WorkspaceArena::ThreadLocal() {
  static thread_local WorkspaceArena arena;
  return arena;
}

std::shared_ptr<internal::Node> WorkspaceArena::Acquire() {
  const size_t n = pool_.size();
  const size_t scan = n < kMaxScan ? n : kMaxScan;
  for (size_t step = 0; step < scan; ++step) {
    if (cursor_ >= n) cursor_ = 0;
    std::shared_ptr<internal::Node>& slot = pool_[cursor_++];
    // use_count == 1 means only the pool holds the node: every Tensor handle
    // to this output has been dropped, so its buffer can be reused.
    if (slot.use_count() == 1) {
      ++reuses_;
      internal::Node* node = slot.get();
      node->requires_grad = false;
      node->inputs.clear();
      node->backward = nullptr;
      return slot;
    }
  }
  ++allocs_;
  pool_.push_back(std::make_shared<internal::Node>());
  cursor_ = 0;
  return pool_.back();
}

void WorkspaceArena::Clear() {
  pool_.clear();
  cursor_ = 0;
}

}  // namespace fewner::tensor
