// CNN-BiGRU-CRF sequence-labeling backbone (paper Fig. 3) with optional
// context-parameter conditioning (paper §3.2.4).
//
// The backbone owns all task-independent parameters θ.  The task context φ is
// *not* a parameter of this module: forward methods take it as an explicit
// tensor so the FEWNER inner loop can thread freshly adapted φ_k values
// through the network functionally (keeping the meta-graph differentiable).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crf/linear_chain_crf.h"
#include "models/encoding.h"
#include "nn/char_cnn.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "util/rng.h"

namespace fewner::models {

/// Where/how φ conditions the backbone (paper Fig. 4).
enum class Conditioning {
  kNone,    ///< baselines without context parameters
  kConcat,  ///< method A: concatenate φ to each token's BiGRU input
  kFilm,    ///< method B (default): FiLM on the BiGRU output
};

/// Context-encoder choice.  The paper picks BiGRU for its cost/quality
/// trade-off (§3.2.2); BiLSTM is the classic alternative and is ablated in
/// bench/ablation_encoder.
enum class EncoderKind {
  kBiGru,
  kBiLstm,
};

/// Hyper-parameters of the backbone.  Defaults are the CPU-scale profile; the
/// paper-scale values are noted inline.
struct BackboneConfig {
  int64_t word_vocab_size = 0;
  int64_t char_vocab_size = 0;
  int64_t word_dim = 32;             ///< paper: 300 (GloVe)
  int64_t char_dim = 12;             ///< paper: 100
  std::vector<int64_t> filter_widths = {2, 3, 4};
  int64_t filters_per_width = 8;     ///< paper: 50 (150 total)
  int64_t hidden_dim = 48;           ///< paper: 128
  EncoderKind encoder = EncoderKind::kBiGru;
  int64_t max_tags = 11;             ///< 2 * max_way + 1
  int64_t context_dim = 96;          ///< |φ|; paper: 256 (= 2x hidden there)
  Conditioning conditioning = Conditioning::kFilm;
  float dropout = 0.3f;              ///< paper: 0.3
  bool use_char_cnn = true;          ///< ablation: remove character CNN
  /// Optional pre-computed word vectors (the GloVe stand-in; see
  /// text::HashEmbeddings).  Must outlive construction; the table remains
  /// trainable afterwards, as the paper fine-tunes GloVe.
  const std::vector<std::vector<float>>* pretrained_word_vectors = nullptr;
};

/// θ-only encoder features for one batch, computed once and reused across
/// every φ a task tries (paper §3.2.4: adaptation touches only φ, so the
/// pre-conditioning pipeline is constant within a task).  The split point
/// depends on where φ enters: after the BiGRU for kFilm (features are the
/// [.., 2H] hidden states), after the token concat for kConcat (features are
/// the [.., word+char] inputs the BiGRU has not yet seen), and after the
/// BiGRU for kNone (the suffix is emission+CRF only).
///
/// Runs mirror the LaneRuns partition BatchLoss/DecodeBatch bucket with, so
/// suffix results fold back bitwise-identically to the uncached paths.
///
/// A prefix is pinned to the θ that produced it via `param_version`; every
/// consumer re-derives the backbone's current version and aborts on mismatch,
/// making stale-cache use impossible rather than merely discouraged.
struct CachedPrefix {
  struct Run {
    EncodedBatch batch;       ///< this run's lanes, padded to the run max
    tensor::Tensor features;  ///< [count, run_max_len, D] θ-only features
  };
  std::vector<Run> runs;      ///< contiguous, ascending lane order
  int64_t batch = 0;          ///< total lanes across all runs
  int64_t max_len = 0;        ///< longest lane (EmissionsFromPrefix pads to it)
  Conditioning conditioning = Conditioning::kNone;
  uint64_t param_version = 0; ///< Backbone::ParameterVersion() at build time

  bool defined() const { return !runs.empty(); }
};

/// The θ network: input representation + context encoder + tag decoder.
class Backbone : public nn::Module {
 public:
  Backbone(const BackboneConfig& config, util::Rng* rng);

  /// Context-encoded token features [L, 2H]; φ must be defined iff the
  /// conditioning mode uses it (pass ZeroContext() when in doubt).  A B=1
  /// wrapper over the batched pipeline, drawing dropout from the standalone
  /// member stream.
  tensor::Tensor Encode(const EncodedSentence& sentence,
                        const tensor::Tensor& phi) const;

  /// Batched context-encoded features [B, Lmax, 2H] with FiLM/concat
  /// conditioning broadcast over all lanes.  Lane b's first lengths[b] rows
  /// are bitwise-equal to Encode on that sentence alone (given matching
  /// dropout streams); padding rows are unspecified and must be masked by
  /// consumers.
  tensor::Tensor EncodeBatch(const EncodedBatch& batch,
                             const tensor::Tensor& phi) const;

  /// CRF emission scores [L, max_tags].
  tensor::Tensor Emissions(const EncodedSentence& sentence,
                           const tensor::Tensor& phi) const;

  /// Batched CRF emission scores [B, Lmax, max_tags].
  tensor::Tensor EmissionsBatch(const EncodedBatch& batch,
                                const tensor::Tensor& phi) const;

  /// CRF negative log-likelihood of the sentence's gold tags.
  tensor::Tensor SentenceLoss(const EncodedSentence& sentence,
                              const tensor::Tensor& phi,
                              const std::vector<bool>& valid_tags) const;

  /// Summed NLL over a set of sentences (the task loss L_T of Eq. 5/6;
  /// the paper defines L = -Σ p(y|h)).  Sentence i draws dropout from the
  /// per-lane stream (episode, call, lane i) — the same stream the batched
  /// overload gives lane i — so the two overloads are bitwise-interchangeable.
  tensor::Tensor BatchLoss(const std::vector<EncodedSentence>& sentences,
                           const tensor::Tensor& phi,
                           const std::vector<bool>& valid_tags) const;

  /// Batch-first task loss: one batched forward + one batched CRF NLL over
  /// all lanes, folded in lane order with the same left-associated scalar
  /// adds as the per-sentence overload.  This is the inner-loop fast path;
  /// second-order meta-gradients flow through it like any other op chain.
  tensor::Tensor BatchLoss(const EncodedBatch& batch, const tensor::Tensor& phi,
                           const std::vector<bool>& valid_tags) const;

  /// Viterbi decode of one sentence.
  std::vector<int64_t> Decode(const EncodedSentence& sentence,
                              const tensor::Tensor& phi,
                              const std::vector<bool>& valid_tags) const;

  /// Batched Viterbi decode: one batched forward, then per-lane decoding of
  /// each lane's real prefix.  The query-serving fast path under EvalMode.
  std::vector<std::vector<int64_t>> DecodeBatch(
      const EncodedBatch& batch, const tensor::Tensor& phi,
      const std::vector<bool>& valid_tags) const;

  /// Whether the θ-prefix may be computed once and reused: true when the
  /// prefix draws no dropout (inference mode or dropout == 0).  In training
  /// mode with dropout on, masks are keyed per (episode, call, lane) and
  /// legitimately differ between inner steps, so a shared prefix would change
  /// the model being trained — callers must fall back to per-step forwards.
  bool CanCachePrefix() const;

  /// Order-sensitive fingerprint of every parameter slot's (node id, mutation
  /// version).  Changes whenever θ may have changed: in-place optimizer steps
  /// bump the node version, slot replacement (ParameterPatch, fresh leaves)
  /// swaps in a new node id.  Cheap enough to recompute on every cached call.
  uint64_t ParameterVersion() const;

  /// Runs the θ-only head once over `batch`, bucketed exactly like BatchLoss.
  /// Aborts unless CanCachePrefix() — a cached prefix must be dropout-free.
  /// Graph-mode callers get a differentiable shared subgraph (the
  /// create_graph meta-training regime); EvalMode callers get arena-backed
  /// constants that stay valid as long as the CachedPrefix holds them.
  CachedPrefix EncodePrefix(const EncodedBatch& batch) const;

  /// Task loss from a cached prefix — bitwise-equal to BatchLoss(batch, ...)
  /// in the cacheable regime (identical suffix ops on identical values; the
  /// dropout layers are identities there).
  tensor::Tensor BatchLossFromPrefix(const CachedPrefix& prefix,
                                     const tensor::Tensor& phi,
                                     const std::vector<bool>& valid_tags) const;

  /// Batched emission scores [B, Lmax, max_tags] from a cached prefix.
  /// Real rows match EmissionsBatch bitwise; padding rows (unspecified by the
  /// EmissionsBatch contract) are zero here.
  tensor::Tensor EmissionsFromPrefix(const CachedPrefix& prefix,
                                     const tensor::Tensor& phi) const;

  /// Batched Viterbi decode from a cached prefix — identical tags to
  /// DecodeBatch.  The serving fast path for AdaptedTagger under EvalMode.
  std::vector<std::vector<int64_t>> DecodeBatchFromPrefix(
      const CachedPrefix& prefix, const tensor::Tensor& phi,
      const std::vector<bool>& valid_tags) const;

  /// Fresh zero context vector (requires_grad, ready for inner-loop descent).
  /// Undefined tensor when conditioning is kNone.
  tensor::Tensor ZeroContext() const;

  const BackboneConfig& config() const { return config_; }
  nn::Embedding* word_embedding() { return word_embedding_.get(); }
  crf::LinearChainCrf* crf() { return crf_.get(); }

  /// Token input dimension fed to the BiGRU (word + char [+ φ for kConcat]).
  int64_t token_input_dim() const;

  /// Re-forks the dropout stream as a pure function of (dropout base, stream),
  /// independent of draws already made.  The episode-parallel trainer calls
  /// this with the episode id before each task so dropout masks do not depend
  /// on task execution order or thread count.
  void ReseedDropout(uint64_t stream);

  /// Dropout base generator — the seed material ReseedDropout forks from.
  /// Copying it onto a replica (set_dropout_base) makes the replica's dropout
  /// streams identical to the master's for equal stream ids.
  const util::Rng& dropout_base() const { return dropout_base_; }
  void set_dropout_base(const util::Rng& base) { dropout_base_ = base; }

 private:
  /// The shared batched pipeline.  `lane_rngs[b]` supplies lane b's dropout
  /// draws (input mask first, then hidden mask — the per-sentence order).
  tensor::Tensor EncodeBatchImpl(const EncodedBatch& batch,
                                 const tensor::Tensor& phi,
                                 const std::vector<util::Rng*>& lane_rngs) const;

  tensor::Tensor EmissionsBatchImpl(const EncodedBatch& batch,
                                    const tensor::Tensor& phi,
                                    const std::vector<util::Rng*>& lane_rngs) const;

  /// θ-only head of EncodeBatchImpl for one (sub-)batch: embeddings + CharCNN
  /// [+ BiGRU for kFilm/kNone].  Only callable in the dropout-free regime, so
  /// the elided LaneDropout calls are exactly the identities EncodeBatchImpl
  /// would have applied.
  tensor::Tensor EncodePrefixImpl(const EncodedBatch& batch) const;

  /// φ-dependent tail over one cached run: conditioning + emission linear.
  /// Returns [count, run_max_len, max_tags].
  tensor::Tensor SuffixEmissions(const CachedPrefix::Run& run,
                                 const tensor::Tensor& phi) const;

  /// Aborts when `prefix` is stale (θ changed since EncodePrefix), was built
  /// for a different conditioning mode, or the backbone left the cacheable
  /// regime.
  void CheckPrefix(const CachedPrefix& prefix) const;

  /// Length-masked inverted dropout over [B, Lmax, D]: lane b's rows t <
  /// lengths[b] draw flat-row-major from lane_rngs[b] exactly as
  /// tensor::Dropout draws for the [len, D] per-sentence tensor; padding rows
  /// get a 0 mask (dropped) without consuming draws.
  tensor::Tensor LaneDropout(const tensor::Tensor& x,
                             const EncodedBatch& batch,
                             const std::vector<util::Rng*>& lane_rngs) const;

  /// Forks the per-lane dropout streams for the next BatchLoss-style call:
  /// stream id (call_index << 32) | lane, under the episode fork.  Advancing
  /// the call counter decorrelates successive inner steps (and the query
  /// pass) while staying a pure function of (episode id, call index, lane).
  std::vector<util::Rng> ForkLaneRngs(size_t lanes) const;

  BackboneConfig config_;
  std::unique_ptr<nn::Embedding> word_embedding_;
  std::unique_ptr<nn::CharCnn> char_cnn_;
  std::unique_ptr<nn::BiGru> bigru_;
  std::unique_ptr<nn::BiLstm> bilstm_;
  std::unique_ptr<nn::FilmGenerator> film_;
  std::unique_ptr<nn::Linear> emission_;
  std::unique_ptr<crf::LinearChainCrf> crf_;
  util::Rng dropout_base_;
  mutable util::Rng dropout_episode_;  ///< episode fork; lane streams hang off it
  mutable uint64_t dropout_call_ = 0;  ///< BatchLoss calls since ReseedDropout
  mutable util::Rng dropout_rng_;      ///< standalone (non-lane) stream
};

}  // namespace fewner::models
