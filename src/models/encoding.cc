#include "models/encoding.h"

#include <algorithm>

#include "text/bio.h"
#include "util/status.h"

namespace fewner::models {

EncodedBatch PackBatch(const std::vector<EncodedSentence>& sentences) {
  FEWNER_CHECK(!sentences.empty(), "PackBatch of zero sentences");
  EncodedBatch batch;
  batch.batch = static_cast<int64_t>(sentences.size());
  batch.lengths.reserve(sentences.size());
  for (const EncodedSentence& s : sentences) {
    FEWNER_CHECK(s.length() > 0, "PackBatch on empty sentence");
    batch.lengths.push_back(s.length());
    batch.max_len = std::max(batch.max_len, s.length());
  }
  const size_t flat = static_cast<size_t>(batch.batch * batch.max_len);
  batch.word_ids.assign(flat, 0);
  batch.char_ids.assign(flat, {});
  batch.tags.assign(flat, 0);
  for (size_t b = 0; b < sentences.size(); ++b) {
    const EncodedSentence& s = sentences[b];
    const size_t base = b * static_cast<size_t>(batch.max_len);
    for (size_t t = 0; t < s.word_ids.size(); ++t) {
      batch.word_ids[base + t] = s.word_ids[t];
      batch.char_ids[base + t] = s.char_ids[t];
      batch.tags[base + t] = s.tags[t];
    }
  }
  return batch;
}

EpisodeEncoder::EpisodeEncoder(const text::Vocab* word_vocab,
                               const text::Vocab* char_vocab, int64_t max_tags)
    : word_vocab_(word_vocab), char_vocab_(char_vocab), max_tags_(max_tags) {
  FEWNER_CHECK(word_vocab_ != nullptr && char_vocab_ != nullptr,
               "EpisodeEncoder requires vocabularies");
  FEWNER_CHECK(max_tags_ >= 3, "max_tags must cover at least a 1-way tagset");
}

EncodedSentence EpisodeEncoder::EncodeSentence(
    const data::Sentence& sentence, const std::vector<std::string>& types) const {
  EncodedSentence encoded;
  encoded.source = &sentence;
  encoded.word_ids.reserve(sentence.tokens.size());
  encoded.char_ids.reserve(sentence.tokens.size());
  for (const std::string& token : sentence.tokens) {
    encoded.word_ids.push_back(text::WordId(*word_vocab_, token));
    encoded.char_ids.push_back(text::CharIds(*char_vocab_, token));
  }
  encoded.tags = text::SpansToTags(sentence.entities,
                                   data::SlotsFor(sentence, types),
                                   encoded.length());
  return encoded;
}

EncodedEpisode EpisodeEncoder::Encode(const data::Episode& episode) const {
  EncodedEpisode out;
  out.n_way = episode.n_way();
  out.valid_tags = text::ValidTagMask(out.n_way, max_tags_);
  out.support.reserve(episode.support.size());
  for (const data::Sentence* s : episode.support) {
    out.support.push_back(EncodeSentence(*s, episode.types));
  }
  out.query.reserve(episode.query.size());
  for (const data::Sentence* s : episode.query) {
    out.query.push_back(EncodeSentence(*s, episode.types));
  }
  return out;
}

}  // namespace fewner::models
