// Pre-trained language-model encoders — the stand-ins for the paper's
// dynamic-token-representation baselines (GPT2, Flair, ELMo, BERT, XLNet).
//
// Each variant is pre-trained from scratch on a large unlabeled synthetic
// corpus, then FROZEN; the few-shot baseline stacks a CRF on top and only the
// CRF is fine-tuned (mirroring the paper's Flair-framework restriction, §4.1.2).
// The architectures follow the originals in miniature:
//   kGpt2  — causal transformer, next-token objective
//   kBert  — bidirectional transformer, masked-token objective
//   kXlnet — two causal streams (left-to-right and right-to-left) averaged,
//            approximating permutation-order training (documented simplification)
//   kElmo  — word-level forward+backward GRU language model
//   kFlair — character-level forward+backward GRU LM; word features are taken
//            at word boundaries, exactly like contextual string embeddings

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "models/encoding.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "text/vocab.h"

namespace fewner::models {

enum class LmKind { kGpt2, kFlair, kElmo, kBert, kXlnet };

/// Display name matching the paper's tables.
std::string LmKindName(LmKind kind);

/// All five baseline kinds in table order.
std::vector<LmKind> AllLmKinds();

/// Size profile of the miniature LMs.
struct LmConfig {
  int64_t model_dim = 32;
  int64_t num_layers = 2;
  int64_t ffn_dim = 64;
  int64_t max_len = 96;     ///< learned positions (transformers)
  int64_t gru_hidden = 24;  ///< ELMo / Flair recurrent size
  int64_t char_dim = 16;    ///< Flair character embedding size
};

/// One pre-trainable, freezable LM encoder.
class PretrainedLmEncoder : public nn::Module {
 public:
  PretrainedLmEncoder(LmKind kind, const LmConfig& config,
                      const text::Vocab* word_vocab, const text::Vocab* char_vocab,
                      util::Rng* rng);

  /// Language-modeling loss of one sentence (used during pre-training).
  tensor::Tensor LmLoss(const EncodedSentence& sentence) const;

  /// Pre-trains with Adam on the given sentences for `steps` sentence-updates.
  void Pretrain(const std::vector<EncodedSentence>& sentences, int64_t steps,
                float lr, util::Rng* rng);

  /// Contextual features [L, feature_dim()].  Callers treat the encoder as
  /// frozen by detaching (see feature extraction in the baseline tagger).
  tensor::Tensor Encode(const EncodedSentence& sentence) const;

  int64_t feature_dim() const;
  LmKind kind() const { return kind_; }

 private:
  tensor::Tensor TransformerFeatures(const std::vector<int64_t>& word_ids,
                                     const std::vector<nn::TransformerBlock*>& blocks,
                                     bool reverse) const;
  tensor::Tensor CrossEntropy(const tensor::Tensor& logits,
                              const std::vector<int64_t>& targets,
                              const std::vector<bool>* predict_mask) const;

  LmKind kind_;
  LmConfig config_;
  const text::Vocab* word_vocab_;
  const text::Vocab* char_vocab_;

  // Shared word-level pieces (transformers + ELMo).
  std::unique_ptr<nn::Embedding> word_embedding_;
  std::unique_ptr<nn::Embedding> position_embedding_;
  std::unique_ptr<nn::Linear> vocab_head_;

  // Transformer stacks (GPT2 / BERT use `blocks_`; XLNet also `blocks_rev_`).
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_rev_;

  // ELMo recurrent LM.
  std::unique_ptr<nn::GruCell> forward_gru_;
  std::unique_ptr<nn::GruCell> backward_gru_;

  // Flair character-level LM.
  std::unique_ptr<nn::Embedding> char_embedding_;
  std::unique_ptr<nn::GruCell> char_forward_gru_;
  std::unique_ptr<nn::GruCell> char_backward_gru_;
  std::unique_ptr<nn::Linear> char_head_;

  tensor::Tensor mask_embedding_;  ///< BERT's [MASK] input vector
  mutable util::Rng mask_rng_;
};

}  // namespace fewner::models
