#include "models/backbone.h"

#include "tensor/eval_mode.h"
#include "tensor/ops.h"

namespace fewner::models {

using tensor::Shape;
using tensor::Tensor;

Backbone::Backbone(const BackboneConfig& config, util::Rng* rng)
    : config_(config),
      dropout_base_(rng->Fork(0xD409u)),
      dropout_rng_(dropout_base_.Fork(0)) {
  FEWNER_CHECK(config.word_vocab_size > 0, "backbone needs a word vocabulary");
  word_embedding_ =
      std::make_unique<nn::Embedding>(config.word_vocab_size, config.word_dim, rng);
  if (config.pretrained_word_vectors != nullptr) {
    word_embedding_->LoadPretrained(*config.pretrained_word_vectors);
  }
  RegisterModule("word_embedding", word_embedding_.get());

  if (config.use_char_cnn) {
    nn::CharCnnConfig char_config;
    char_config.char_vocab_size = config.char_vocab_size;
    char_config.char_dim = config.char_dim;
    char_config.filter_widths = config.filter_widths;
    char_config.filters_per_width = config.filters_per_width;
    char_cnn_ = std::make_unique<nn::CharCnn>(char_config, rng);
    RegisterModule("char_cnn", char_cnn_.get());
  }

  if (config.encoder == EncoderKind::kBiGru) {
    bigru_ = std::make_unique<nn::BiGru>(token_input_dim(), config.hidden_dim, rng);
    RegisterModule("bigru", bigru_.get());
  } else {
    bilstm_ =
        std::make_unique<nn::BiLstm>(token_input_dim(), config.hidden_dim, rng);
    RegisterModule("bilstm", bilstm_.get());
  }

  if (config.conditioning == Conditioning::kFilm) {
    FEWNER_CHECK(config.context_dim > 0, "FiLM conditioning needs context_dim > 0");
    film_ = std::make_unique<nn::FilmGenerator>(config.context_dim,
                                                2 * config.hidden_dim, rng);
    RegisterModule("film", film_.get());
  }

  emission_ =
      std::make_unique<nn::Linear>(2 * config.hidden_dim, config.max_tags, rng);
  RegisterModule("emission", emission_.get());

  crf_ = std::make_unique<crf::LinearChainCrf>(config.max_tags);
  RegisterModule("crf", crf_.get());
}

void Backbone::ReseedDropout(uint64_t stream) {
  dropout_rng_ = dropout_base_.Fork(stream);
}

int64_t Backbone::token_input_dim() const {
  int64_t dim = config_.word_dim;
  if (config_.use_char_cnn) {
    dim += static_cast<int64_t>(config_.filter_widths.size()) *
           config_.filters_per_width;
  }
  if (config_.conditioning == Conditioning::kConcat) dim += config_.context_dim;
  return dim;
}

Tensor Backbone::ZeroContext() const {
  if (config_.conditioning == Conditioning::kNone) return Tensor();
  return Tensor::Zeros(Shape{config_.context_dim}, /*requires_grad=*/true);
}

Tensor Backbone::InputRepresentation(const EncodedSentence& sentence) const {
  Tensor words = word_embedding_->Forward(sentence.word_ids);  // [L, word_dim]
  Tensor input = words;
  if (config_.use_char_cnn) {
    Tensor chars = char_cnn_->Forward(sentence.char_ids);  // [L, char_features]
    input = tensor::Concat({words, chars}, 1);
  }
  return tensor::Dropout(input, config_.dropout, &dropout_rng_, training());
}

Tensor Backbone::Encode(const EncodedSentence& sentence, const Tensor& phi) const {
  FEWNER_CHECK(sentence.length() > 0, "Encode on empty sentence");
  Tensor input = InputRepresentation(sentence);
  if (config_.conditioning == Conditioning::kConcat) {
    FEWNER_CHECK(phi.defined(), "kConcat conditioning requires a context vector");
    // Method A (paper Eq. 7): φ joins every token's input features.
    Tensor phi_rows = tensor::BroadcastTo(
        tensor::Reshape(phi, Shape{1, config_.context_dim}),
        Shape{sentence.length(), config_.context_dim});
    input = tensor::Concat({input, phi_rows}, 1);
  }
  Tensor hidden = bigru_ ? bigru_->Forward(input)
                         : bilstm_->Forward(input);  // [L, 2H]
  if (config_.conditioning == Conditioning::kFilm) {
    FEWNER_CHECK(phi.defined(), "kFilm conditioning requires a context vector");
    // Method B (paper Eq. 8-9): modulate the BiGRU output so adapted hidden
    // states feed task-specific label dependencies into the CRF.
    hidden = film_->Forward(hidden, phi);
  }
  return tensor::Dropout(hidden, config_.dropout, &dropout_rng_, training());
}

Tensor Backbone::Emissions(const EncodedSentence& sentence, const Tensor& phi) const {
  return emission_->Forward(Encode(sentence, phi));
}

Tensor Backbone::SentenceLoss(const EncodedSentence& sentence, const Tensor& phi,
                              const std::vector<bool>& valid_tags) const {
  return crf_->NegLogLikelihood(Emissions(sentence, phi), sentence.tags, &valid_tags);
}

Tensor Backbone::BatchLoss(const std::vector<EncodedSentence>& sentences,
                           const Tensor& phi,
                           const std::vector<bool>& valid_tags) const {
  FEWNER_CHECK(!sentences.empty(), "BatchLoss on zero sentences");
  // The paper's task loss is the SUM of sentence NLLs (L = -Σ p(y|h), §3.2.3);
  // the inner learning rate α = 0.1 is calibrated against this scale, so a
  // mean here would silently shrink every inner step by the support size.
  Tensor total;
  for (const EncodedSentence& sentence : sentences) {
    Tensor loss = SentenceLoss(sentence, phi, valid_tags);
    total = total.defined() ? tensor::Add(total, loss) : loss;
  }
  return total;
}

std::vector<int64_t> Backbone::Decode(const EncodedSentence& sentence,
                                      const Tensor& phi,
                                      const std::vector<bool>& valid_tags) const {
  Tensor emissions = Emissions(sentence, phi);
  // The Detach exists to cut decode out of a live autodiff graph; under
  // EvalMode no graph was built, so the copy would only burn an allocation.
  if (!tensor::EvalMode::active()) emissions = emissions.Detach();
  return crf_->Viterbi(emissions, &valid_tags);
}

}  // namespace fewner::models
