#include "models/backbone.h"

#include <algorithm>
#include <utility>

#include "tensor/eval_mode.h"
#include "tensor/ops.h"

namespace fewner::models {

using tensor::Shape;
using tensor::Tensor;

namespace {
/// Stream id of the standalone (non-lane) dropout stream, kept clear of the
/// (call << 32) | lane ids ForkLaneRngs hands to batch lanes.
constexpr uint64_t kStandaloneDropoutStream = ~0ull;

/// Contiguous lane runs with bounded padding: a run closes before a lane that
/// would stretch its max/min length ratio beyond 2.  Per-lane batched results
/// are bitwise lane-independent (DESIGN.md §7), so any partition computes
/// identical values — bucketing only trades padded FLOPs for a few extra op
/// launches.  With length-sorted batches (data::EpisodeSampler) ragged sets
/// collapse into a handful of near-homogeneous sub-batches.
std::vector<std::pair<int64_t, int64_t>> LaneRuns(
    const std::vector<int64_t>& lengths) {
  std::vector<std::pair<int64_t, int64_t>> runs;
  int64_t begin = 0;
  int64_t run_min = lengths[0];
  int64_t run_max = lengths[0];
  for (int64_t b = 1; b < static_cast<int64_t>(lengths.size()); ++b) {
    const int64_t lo = std::min(run_min, lengths[static_cast<size_t>(b)]);
    const int64_t hi = std::max(run_max, lengths[static_cast<size_t>(b)]);
    if (hi > 2 * lo) {
      runs.emplace_back(begin, b - begin);
      begin = b;
      run_min = run_max = lengths[static_cast<size_t>(b)];
    } else {
      run_min = lo;
      run_max = hi;
    }
  }
  runs.emplace_back(begin, static_cast<int64_t>(lengths.size()) - begin);
  return runs;
}

/// Repacks lanes [begin, begin + count) into their own padded batch, padded
/// only to the run's max length.
EncodedBatch SubBatch(const EncodedBatch& batch, int64_t begin, int64_t count) {
  EncodedBatch sub;
  sub.batch = count;
  sub.lengths.assign(batch.lengths.begin() + begin,
                     batch.lengths.begin() + begin + count);
  sub.max_len = *std::max_element(sub.lengths.begin(), sub.lengths.end());
  const size_t flat = static_cast<size_t>(sub.batch * sub.max_len);
  sub.word_ids.assign(flat, 0);
  sub.char_ids.assign(flat, {});
  sub.tags.assign(flat, 0);
  for (int64_t b = 0; b < count; ++b) {
    const size_t src = static_cast<size_t>((begin + b) * batch.max_len);
    const size_t dst = static_cast<size_t>(b * sub.max_len);
    const size_t len = static_cast<size_t>(sub.lengths[static_cast<size_t>(b)]);
    for (size_t t = 0; t < len; ++t) {
      sub.word_ids[dst + t] = batch.word_ids[src + t];
      sub.char_ids[dst + t] = batch.char_ids[src + t];
      sub.tags[dst + t] = batch.tags[src + t];
    }
  }
  return sub;
}
}  // namespace

Backbone::Backbone(const BackboneConfig& config, util::Rng* rng)
    : config_(config),
      dropout_base_(rng->Fork(0xD409u)),
      dropout_episode_(dropout_base_.Fork(0)),
      dropout_rng_(dropout_episode_.Fork(kStandaloneDropoutStream)) {
  FEWNER_CHECK(config.word_vocab_size > 0, "backbone needs a word vocabulary");
  word_embedding_ =
      std::make_unique<nn::Embedding>(config.word_vocab_size, config.word_dim, rng);
  if (config.pretrained_word_vectors != nullptr) {
    word_embedding_->LoadPretrained(*config.pretrained_word_vectors);
  }
  RegisterModule("word_embedding", word_embedding_.get());

  if (config.use_char_cnn) {
    nn::CharCnnConfig char_config;
    char_config.char_vocab_size = config.char_vocab_size;
    char_config.char_dim = config.char_dim;
    char_config.filter_widths = config.filter_widths;
    char_config.filters_per_width = config.filters_per_width;
    char_cnn_ = std::make_unique<nn::CharCnn>(char_config, rng);
    RegisterModule("char_cnn", char_cnn_.get());
  }

  if (config.encoder == EncoderKind::kBiGru) {
    bigru_ = std::make_unique<nn::BiGru>(token_input_dim(), config.hidden_dim, rng);
    RegisterModule("bigru", bigru_.get());
  } else {
    bilstm_ =
        std::make_unique<nn::BiLstm>(token_input_dim(), config.hidden_dim, rng);
    RegisterModule("bilstm", bilstm_.get());
  }

  if (config.conditioning == Conditioning::kFilm) {
    FEWNER_CHECK(config.context_dim > 0, "FiLM conditioning needs context_dim > 0");
    film_ = std::make_unique<nn::FilmGenerator>(config.context_dim,
                                                2 * config.hidden_dim, rng);
    RegisterModule("film", film_.get());
  }

  emission_ =
      std::make_unique<nn::Linear>(2 * config.hidden_dim, config.max_tags, rng);
  RegisterModule("emission", emission_.get());

  crf_ = std::make_unique<crf::LinearChainCrf>(config.max_tags);
  RegisterModule("crf", crf_.get());
}

void Backbone::ReseedDropout(uint64_t stream) {
  dropout_episode_ = dropout_base_.Fork(stream);
  dropout_call_ = 0;
  dropout_rng_ = dropout_episode_.Fork(kStandaloneDropoutStream);
}

std::vector<util::Rng> Backbone::ForkLaneRngs(size_t lanes) const {
  std::vector<util::Rng> rngs;
  // Lane streams exist only to make training-mode dropout masks reproducible
  // per (episode, call, lane); with dropout off, LaneDropout never draws from
  // them.  Returning unforked placeholders then keeps this path free of
  // writes to the shared Backbone, so concurrent eval-mode serving threads
  // never touch shared state (the tsan-labelled serving tests pin this).
  if (!training() || config_.dropout <= 0.0f) {
    rngs.resize(lanes);
    return rngs;
  }
  const uint64_t call = dropout_call_++;
  rngs.reserve(lanes);
  for (size_t b = 0; b < lanes; ++b) {
    rngs.push_back(dropout_episode_.Fork((call << 32) | static_cast<uint64_t>(b)));
  }
  return rngs;
}

int64_t Backbone::token_input_dim() const {
  int64_t dim = config_.word_dim;
  if (config_.use_char_cnn) {
    dim += static_cast<int64_t>(config_.filter_widths.size()) *
           config_.filters_per_width;
  }
  if (config_.conditioning == Conditioning::kConcat) dim += config_.context_dim;
  return dim;
}

Tensor Backbone::ZeroContext() const {
  if (config_.conditioning == Conditioning::kNone) return Tensor();
  return Tensor::Zeros(Shape{config_.context_dim}, /*requires_grad=*/true);
}

Tensor Backbone::LaneDropout(const Tensor& x, const EncodedBatch& batch,
                             const std::vector<util::Rng*>& lane_rngs) const {
  if (!training() || config_.dropout <= 0.0f) return x;
  const float p = config_.dropout;
  FEWNER_CHECK(p < 1.0f, "Dropout rate must be < 1");
  const float scale = 1.0f / (1.0f - p);
  const int64_t d = x.shape().dim(2);
  // Padding rows get a 0 mask (dropped) without consuming draws, so lane b's
  // draw sequence is exactly what tensor::Dropout draws for its [len, d]
  // per-sentence tensor — and garbage padding activations are zeroed for free.
  std::vector<float> mask(static_cast<size_t>(x.numel()), 0.0f);
  for (int64_t b = 0; b < batch.batch; ++b) {
    util::Rng* rng = lane_rngs[static_cast<size_t>(b)];
    float* lane_mask = mask.data() + b * batch.max_len * d;
    const int64_t lane_elems = batch.lengths[static_cast<size_t>(b)] * d;
    for (int64_t i = 0; i < lane_elems; ++i) {
      lane_mask[i] = rng->Bernoulli(p) ? 0.0f : scale;
    }
  }
  return tensor::Mul(x, Tensor::FromData(x.shape(), std::move(mask)));
}

Tensor Backbone::EncodeBatchImpl(const EncodedBatch& batch, const Tensor& phi,
                                 const std::vector<util::Rng*>& lane_rngs) const {
  const int64_t lanes = batch.batch;
  const int64_t max_len = batch.max_len;
  FEWNER_CHECK(lanes > 0 && max_len > 0, "EncodeBatch on empty batch");
  FEWNER_CHECK(static_cast<int64_t>(lane_rngs.size()) == lanes,
               "EncodeBatch lane rng count mismatch");

  // One embedding gather + one CharCnn pass over all B*Lmax tokens.  Every op
  // here is per-row (GEMM rows are bitwise-independent under the ascending-k
  // kernel contract), so lane b's rows match the per-sentence pipeline.
  Tensor words = word_embedding_->Forward(batch.word_ids);  // [B*L, word_dim]
  Tensor input = words;
  if (config_.use_char_cnn) {
    Tensor chars = char_cnn_->ForwardBatch(batch.char_ids);  // [B*L, char_feat]
    input = tensor::Concat({words, chars}, 1);
  }
  Tensor input3 = tensor::Reshape(
      input, Shape{lanes, max_len, input.shape().dim(1)});
  input3 = LaneDropout(input3, batch, lane_rngs);
  if (config_.conditioning == Conditioning::kConcat) {
    FEWNER_CHECK(phi.defined(), "kConcat conditioning requires a context vector");
    // Method A (paper Eq. 7): φ joins every token's input features.
    Tensor phi_rows = tensor::BroadcastTo(
        tensor::Reshape(phi, Shape{1, 1, config_.context_dim}),
        Shape{lanes, max_len, config_.context_dim});
    input3 = tensor::Concat({input3, phi_rows}, 2);
  }
  Tensor hidden3 = bigru_ ? bigru_->ForwardBatch(input3, batch.lengths)
                          : bilstm_->ForwardBatch(input3, batch.lengths);
  if (config_.conditioning == Conditioning::kFilm) {
    FEWNER_CHECK(phi.defined(), "kFilm conditioning requires a context vector");
    // Method B (paper Eq. 8-9): modulate the BiGRU output so adapted hidden
    // states feed task-specific label dependencies into the CRF.  FiLM's γ/η
    // broadcast is per-row, so flattening lanes is exact.
    Tensor hidden2 = film_->Forward(
        tensor::Reshape(hidden3, Shape{lanes * max_len, 2 * config_.hidden_dim}),
        phi);
    hidden3 = tensor::Reshape(hidden2,
                              Shape{lanes, max_len, 2 * config_.hidden_dim});
  }
  return LaneDropout(hidden3, batch, lane_rngs);
}

Tensor Backbone::EmissionsBatchImpl(const EncodedBatch& batch, const Tensor& phi,
                                    const std::vector<util::Rng*>& lane_rngs) const {
  Tensor encoded = EncodeBatchImpl(batch, phi, lane_rngs);  // [B, L, 2H]
  Tensor emissions2 = emission_->Forward(tensor::Reshape(
      encoded, Shape{batch.batch * batch.max_len, 2 * config_.hidden_dim}));
  return tensor::Reshape(
      emissions2, Shape{batch.batch, batch.max_len, config_.max_tags});
}

Tensor Backbone::Encode(const EncodedSentence& sentence, const Tensor& phi) const {
  FEWNER_CHECK(sentence.length() > 0, "Encode on empty sentence");
  // B=1 wrapper over the batched pipeline, continuing the standalone member
  // dropout stream.  A single-lane batch has no padding, so this is the
  // sentence-at-a-time computation verbatim.
  EncodedBatch single = PackBatch({sentence});
  Tensor encoded = EncodeBatchImpl(single, phi, {&dropout_rng_});
  return tensor::Reshape(encoded,
                         Shape{sentence.length(), 2 * config_.hidden_dim});
}

Tensor Backbone::EncodeBatch(const EncodedBatch& batch, const Tensor& phi) const {
  std::vector<util::Rng> owned = ForkLaneRngs(static_cast<size_t>(batch.batch));
  std::vector<util::Rng*> lane_rngs;
  lane_rngs.reserve(owned.size());
  for (util::Rng& rng : owned) lane_rngs.push_back(&rng);
  return EncodeBatchImpl(batch, phi, lane_rngs);
}

Tensor Backbone::Emissions(const EncodedSentence& sentence, const Tensor& phi) const {
  FEWNER_CHECK(sentence.length() > 0, "Emissions on empty sentence");
  EncodedBatch single = PackBatch({sentence});
  Tensor emissions = EmissionsBatchImpl(single, phi, {&dropout_rng_});
  return tensor::Reshape(emissions, Shape{sentence.length(), config_.max_tags});
}

Tensor Backbone::EmissionsBatch(const EncodedBatch& batch, const Tensor& phi) const {
  std::vector<util::Rng> owned = ForkLaneRngs(static_cast<size_t>(batch.batch));
  std::vector<util::Rng*> lane_rngs;
  lane_rngs.reserve(owned.size());
  for (util::Rng& rng : owned) lane_rngs.push_back(&rng);
  return EmissionsBatchImpl(batch, phi, lane_rngs);
}

Tensor Backbone::SentenceLoss(const EncodedSentence& sentence, const Tensor& phi,
                              const std::vector<bool>& valid_tags) const {
  return crf_->NegLogLikelihood(Emissions(sentence, phi), sentence.tags, &valid_tags);
}

Tensor Backbone::BatchLoss(const std::vector<EncodedSentence>& sentences,
                           const Tensor& phi,
                           const std::vector<bool>& valid_tags) const {
  FEWNER_CHECK(!sentences.empty(), "BatchLoss on zero sentences");
  // The paper's task loss is the SUM of sentence NLLs (L = -Σ p(y|h), §3.2.3);
  // the inner learning rate α = 0.1 is calibrated against this scale, so a
  // mean here would silently shrink every inner step by the support size.
  //
  // Sentence i draws dropout from the (episode, call, lane i) stream — the
  // stream the batched overload hands lane i — which is what makes the two
  // overloads bitwise-interchangeable.
  std::vector<util::Rng> lane_rngs = ForkLaneRngs(sentences.size());
  Tensor total;
  for (size_t i = 0; i < sentences.size(); ++i) {
    dropout_rng_ = lane_rngs[i];
    Tensor loss = SentenceLoss(sentences[i], phi, valid_tags);
    total = total.defined() ? tensor::Add(total, loss) : loss;
  }
  return total;
}

Tensor Backbone::BatchLoss(const EncodedBatch& batch, const Tensor& phi,
                           const std::vector<bool>& valid_tags) const {
  FEWNER_CHECK(batch.batch > 0, "BatchLoss on empty batch");
  std::vector<util::Rng> owned = ForkLaneRngs(static_cast<size_t>(batch.batch));
  // Length-bucketed execution: each near-homogeneous lane run gets its own
  // padded forward, so a ragged batch does not pay every lane at the longest
  // lane's length.  Lane values are identical under any partition.
  const std::vector<std::pair<int64_t, int64_t>> runs = LaneRuns(batch.lengths);
  std::vector<Tensor> per_run;
  per_run.reserve(runs.size());
  for (const auto& [begin, count] : runs) {
    EncodedBatch storage;
    const EncodedBatch* sub = &batch;
    if (runs.size() > 1) {
      storage = SubBatch(batch, begin, count);
      sub = &storage;
    }
    std::vector<util::Rng*> lane_rngs;
    lane_rngs.reserve(static_cast<size_t>(count));
    for (int64_t b = begin; b < begin + count; ++b) {
      lane_rngs.push_back(&owned[static_cast<size_t>(b)]);
    }
    Tensor emissions = EmissionsBatchImpl(*sub, phi, lane_rngs);
    per_run.push_back(crf_->NegLogLikelihoodBatch(emissions, sub->tags,
                                                  sub->lengths, &valid_tags));
  }
  // Runs are contiguous and ascending, so the concatenated lane NLLs sit in
  // batch order; SumAllFloat folds them with the same left-associated scalar
  // float adds as the per-sentence overload, so the totals agree bitwise,
  // not just to rounding.
  Tensor per_lane = per_run.size() == 1 ? per_run.front()
                                        : tensor::Concat(per_run, 0);
  return tensor::SumAllFloat(per_lane);
}

std::vector<int64_t> Backbone::Decode(const EncodedSentence& sentence,
                                      const Tensor& phi,
                                      const std::vector<bool>& valid_tags) const {
  Tensor emissions = Emissions(sentence, phi);
  // The Detach exists to cut decode out of a live autodiff graph; under
  // EvalMode no graph was built, so the copy would only burn an allocation.
  if (!tensor::EvalMode::active()) emissions = emissions.Detach();
  return crf_->Viterbi(emissions, &valid_tags);
}

std::vector<std::vector<int64_t>> Backbone::DecodeBatch(
    const EncodedBatch& batch, const Tensor& phi,
    const std::vector<bool>& valid_tags) const {
  FEWNER_CHECK(batch.batch > 0, "DecodeBatch on empty batch");
  std::vector<util::Rng> owned = ForkLaneRngs(static_cast<size_t>(batch.batch));
  const std::vector<std::pair<int64_t, int64_t>> runs = LaneRuns(batch.lengths);
  std::vector<std::vector<int64_t>> paths;
  paths.reserve(static_cast<size_t>(batch.batch));
  for (const auto& [begin, count] : runs) {
    EncodedBatch storage;
    const EncodedBatch* sub = &batch;
    if (runs.size() > 1) {
      storage = SubBatch(batch, begin, count);
      sub = &storage;
    }
    std::vector<util::Rng*> lane_rngs;
    lane_rngs.reserve(static_cast<size_t>(count));
    for (int64_t b = begin; b < begin + count; ++b) {
      lane_rngs.push_back(&owned[static_cast<size_t>(b)]);
    }
    Tensor emissions = EmissionsBatchImpl(*sub, phi, lane_rngs);
    // As in Decode: cut the decode out of a live autodiff graph; under
    // EvalMode no graph was built, so the copy would only burn an allocation.
    if (!tensor::EvalMode::active()) emissions = emissions.Detach();
    std::vector<std::vector<int64_t>> run_paths =
        crf_->ViterbiBatch(emissions, sub->lengths, &valid_tags);
    for (auto& path : run_paths) paths.push_back(std::move(path));
  }
  return paths;
}

bool Backbone::CanCachePrefix() const {
  // Mirrors the LaneDropout/ForkLaneRngs no-op condition: when this holds,
  // the θ-head draws nothing and touches no shared RNG state, so reusing its
  // output across calls is exactly what re-running it would compute.
  return !training() || config_.dropout <= 0.0f;
}

uint64_t Backbone::ParameterVersion() const {
  // FNV-1a fold over every slot's (node id, mutation version), in slot order.
  // In-place optimizer steps bump the version, slot replacement (fresh leaf,
  // ParameterPatch) swaps the id — either way the fold changes.  Parameters()
  // is non-const because it exposes mutable slots; this walk only reads.
  uint64_t h = 14695981039346656037ull;
  const auto fold = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (tensor::Tensor* slot : const_cast<Backbone*>(this)->Parameters()) {
    fold(slot->node()->id);
    fold(slot->node()->version);
  }
  return h;
}

Tensor Backbone::EncodePrefixImpl(const EncodedBatch& batch) const {
  const int64_t lanes = batch.batch;
  const int64_t max_len = batch.max_len;
  FEWNER_CHECK(lanes > 0 && max_len > 0, "EncodePrefix on empty batch");
  // The head of EncodeBatchImpl with the LaneDropout calls elided — legal
  // because EncodePrefix only runs in the regime where they are identities.
  Tensor words = word_embedding_->Forward(batch.word_ids);  // [B*L, word_dim]
  Tensor input = words;
  if (config_.use_char_cnn) {
    Tensor chars = char_cnn_->ForwardBatch(batch.char_ids);  // [B*L, char_feat]
    input = tensor::Concat({words, chars}, 1);
  }
  Tensor input3 =
      tensor::Reshape(input, Shape{lanes, max_len, input.shape().dim(1)});
  if (config_.conditioning == Conditioning::kConcat) {
    // Method A threads φ into the BiGRU input, so the recurrence is
    // φ-dependent and the cacheable prefix stops at the token features.
    return input3;
  }
  // kFilm/kNone: φ enters after the encoder (or never), so the full
  // recurrent pass — the expensive part — is θ-only and cacheable.
  return bigru_ ? bigru_->ForwardBatch(input3, batch.lengths)
                : bilstm_->ForwardBatch(input3, batch.lengths);
}

Tensor Backbone::SuffixEmissions(const CachedPrefix::Run& run,
                                 const Tensor& phi) const {
  const int64_t lanes = run.batch.batch;
  const int64_t max_len = run.batch.max_len;
  Tensor hidden3;
  if (config_.conditioning == Conditioning::kConcat) {
    FEWNER_CHECK(phi.defined(), "kConcat conditioning requires a context vector");
    Tensor phi_rows = tensor::BroadcastTo(
        tensor::Reshape(phi, Shape{1, 1, config_.context_dim}),
        Shape{lanes, max_len, config_.context_dim});
    Tensor input3 = tensor::Concat({run.features, phi_rows}, 2);
    hidden3 = bigru_ ? bigru_->ForwardBatch(input3, run.batch.lengths)
                     : bilstm_->ForwardBatch(input3, run.batch.lengths);
  } else if (config_.conditioning == Conditioning::kFilm) {
    FEWNER_CHECK(phi.defined(), "kFilm conditioning requires a context vector");
    Tensor hidden2 = film_->Forward(
        tensor::Reshape(run.features,
                        Shape{lanes * max_len, 2 * config_.hidden_dim}),
        phi);
    hidden3 =
        tensor::Reshape(hidden2, Shape{lanes, max_len, 2 * config_.hidden_dim});
  } else {
    hidden3 = run.features;  // kNone: the suffix is emission + CRF only
  }
  Tensor emissions2 = emission_->Forward(tensor::Reshape(
      hidden3, Shape{lanes * max_len, 2 * config_.hidden_dim}));
  return tensor::Reshape(emissions2, Shape{lanes, max_len, config_.max_tags});
}

void Backbone::CheckPrefix(const CachedPrefix& prefix) const {
  FEWNER_CHECK(prefix.defined(), "use of an undefined CachedPrefix");
  FEWNER_CHECK(prefix.conditioning == config_.conditioning,
               "CachedPrefix built for a different conditioning mode");
  FEWNER_CHECK(CanCachePrefix(),
               "CachedPrefix consumed in the training-dropout regime");
  FEWNER_CHECK(prefix.param_version == ParameterVersion(),
               "stale CachedPrefix: θ changed since EncodePrefix (optimizer "
               "step or parameter swap) — rebuild the prefix");
}

CachedPrefix Backbone::EncodePrefix(const EncodedBatch& batch) const {
  FEWNER_CHECK(batch.batch > 0, "EncodePrefix on empty batch");
  FEWNER_CHECK(CanCachePrefix(),
               "EncodePrefix in the training-dropout regime: per-step masks "
               "make a shared prefix incorrect; use the per-step forward");
  CachedPrefix prefix;
  prefix.batch = batch.batch;
  prefix.max_len = batch.max_len;
  prefix.conditioning = config_.conditioning;
  prefix.param_version = ParameterVersion();
  // Same LaneRuns partition as BatchLoss/DecodeBatch, so suffix results fold
  // back in the same lane order with the same padded shapes — bitwise parity
  // with the uncached paths needs nothing further.
  const std::vector<std::pair<int64_t, int64_t>> runs = LaneRuns(batch.lengths);
  prefix.runs.reserve(runs.size());
  for (const auto& [begin, count] : runs) {
    CachedPrefix::Run run;
    run.batch = runs.size() > 1 ? SubBatch(batch, begin, count) : batch;
    run.features = EncodePrefixImpl(run.batch);
    prefix.runs.push_back(std::move(run));
  }
  return prefix;
}

Tensor Backbone::BatchLossFromPrefix(const CachedPrefix& prefix,
                                     const Tensor& phi,
                                     const std::vector<bool>& valid_tags) const {
  CheckPrefix(prefix);
  std::vector<Tensor> per_run;
  per_run.reserve(prefix.runs.size());
  for (const CachedPrefix::Run& run : prefix.runs) {
    Tensor emissions = SuffixEmissions(run, phi);
    per_run.push_back(crf_->NegLogLikelihoodBatch(emissions, run.batch.tags,
                                                  run.batch.lengths, &valid_tags));
  }
  Tensor per_lane = per_run.size() == 1 ? per_run.front()
                                        : tensor::Concat(per_run, 0);
  return tensor::SumAllFloat(per_lane);
}

Tensor Backbone::EmissionsFromPrefix(const CachedPrefix& prefix,
                                     const Tensor& phi) const {
  CheckPrefix(prefix);
  std::vector<Tensor> per_run;
  per_run.reserve(prefix.runs.size());
  for (const CachedPrefix::Run& run : prefix.runs) {
    Tensor em = SuffixEmissions(run, phi);
    if (run.batch.max_len < prefix.max_len) {
      // Re-pad to the whole-batch Lmax so the result matches EmissionsBatch's
      // shape.  Padding rows are unspecified by that contract; zeros are as
      // good as recomputed garbage and cheaper.
      em = tensor::Concat(
          {em, Tensor::Zeros(Shape{run.batch.batch,
                                   prefix.max_len - run.batch.max_len,
                                   config_.max_tags})},
          1);
    }
    per_run.push_back(em);
  }
  return per_run.size() == 1 ? per_run.front() : tensor::Concat(per_run, 0);
}

std::vector<std::vector<int64_t>> Backbone::DecodeBatchFromPrefix(
    const CachedPrefix& prefix, const Tensor& phi,
    const std::vector<bool>& valid_tags) const {
  CheckPrefix(prefix);
  std::vector<std::vector<int64_t>> paths;
  paths.reserve(static_cast<size_t>(prefix.batch));
  for (const CachedPrefix::Run& run : prefix.runs) {
    Tensor emissions = SuffixEmissions(run, phi);
    // As in DecodeBatch: cut the decode out of a live autodiff graph; under
    // EvalMode no graph was built, so the copy would only burn an allocation.
    if (!tensor::EvalMode::active()) emissions = emissions.Detach();
    std::vector<std::vector<int64_t>> run_paths =
        crf_->ViterbiBatch(emissions, run.batch.lengths, &valid_tags);
    for (auto& path : run_paths) paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace fewner::models
