#include "models/lm_encoder.h"

#include <algorithm>

#include "nn/init.h"
#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"

namespace fewner::models {

using tensor::Shape;
using tensor::Tensor;

std::string LmKindName(LmKind kind) {
  switch (kind) {
    case LmKind::kGpt2:
      return "GPT2";
    case LmKind::kFlair:
      return "Flair";
    case LmKind::kElmo:
      return "ELMo";
    case LmKind::kBert:
      return "BERT";
    case LmKind::kXlnet:
      return "XLNet";
  }
  return "?";
}

std::vector<LmKind> AllLmKinds() {
  return {LmKind::kGpt2, LmKind::kFlair, LmKind::kElmo, LmKind::kBert,
          LmKind::kXlnet};
}

PretrainedLmEncoder::PretrainedLmEncoder(LmKind kind, const LmConfig& config,
                                         const text::Vocab* word_vocab,
                                         const text::Vocab* char_vocab,
                                         util::Rng* rng)
    : kind_(kind),
      config_(config),
      word_vocab_(word_vocab),
      char_vocab_(char_vocab),
      mask_rng_(rng->Fork(0xBE27u)) {
  FEWNER_CHECK(word_vocab_ != nullptr && char_vocab_ != nullptr,
               "LM encoder requires vocabularies");
  const bool is_transformer =
      kind == LmKind::kGpt2 || kind == LmKind::kBert || kind == LmKind::kXlnet;

  if (kind != LmKind::kFlair) {
    word_embedding_ = std::make_unique<nn::Embedding>(word_vocab_->size(),
                                                      config.model_dim, rng);
    RegisterModule("word_embedding", word_embedding_.get());
  }

  if (is_transformer) {
    position_embedding_ = std::make_unique<nn::Embedding>(config.max_len,
                                                          config.model_dim, rng);
    RegisterModule("position_embedding", position_embedding_.get());
    const nn::AttentionMask mask = (kind == LmKind::kBert)
                                       ? nn::AttentionMask::kNone
                                       : nn::AttentionMask::kCausal;
    for (int64_t i = 0; i < config.num_layers; ++i) {
      blocks_.push_back(std::make_unique<nn::TransformerBlock>(
          config.model_dim, config.ffn_dim, mask, rng));
      RegisterModule("block" + std::to_string(i), blocks_.back().get());
    }
    if (kind == LmKind::kXlnet) {
      for (int64_t i = 0; i < config.num_layers; ++i) {
        blocks_rev_.push_back(std::make_unique<nn::TransformerBlock>(
            config.model_dim, config.ffn_dim, nn::AttentionMask::kCausal, rng));
        RegisterModule("block_rev" + std::to_string(i), blocks_rev_.back().get());
      }
    }
    vocab_head_ = std::make_unique<nn::Linear>(config.model_dim, word_vocab_->size(),
                                               rng);
    RegisterModule("vocab_head", vocab_head_.get());
    if (kind == LmKind::kBert) {
      mask_embedding_ = nn::GaussianInit(Shape{1, config.model_dim}, 0.1f, rng);
      RegisterParameter("mask_embedding", &mask_embedding_);
    }
  } else if (kind == LmKind::kElmo) {
    forward_gru_ =
        std::make_unique<nn::GruCell>(config.model_dim, config.gru_hidden, rng);
    backward_gru_ =
        std::make_unique<nn::GruCell>(config.model_dim, config.gru_hidden, rng);
    RegisterModule("forward_gru", forward_gru_.get());
    RegisterModule("backward_gru", backward_gru_.get());
    vocab_head_ = std::make_unique<nn::Linear>(config.gru_hidden,
                                               word_vocab_->size(), rng);
    RegisterModule("vocab_head", vocab_head_.get());
  } else {  // kFlair
    char_embedding_ = std::make_unique<nn::Embedding>(char_vocab_->size(),
                                                      config.char_dim, rng);
    char_forward_gru_ =
        std::make_unique<nn::GruCell>(config.char_dim, config.gru_hidden, rng);
    char_backward_gru_ =
        std::make_unique<nn::GruCell>(config.char_dim, config.gru_hidden, rng);
    char_head_ = std::make_unique<nn::Linear>(config.gru_hidden, char_vocab_->size(),
                                              rng);
    RegisterModule("char_embedding", char_embedding_.get());
    RegisterModule("char_forward_gru", char_forward_gru_.get());
    RegisterModule("char_backward_gru", char_backward_gru_.get());
    RegisterModule("char_head", char_head_.get());
  }
}

int64_t PretrainedLmEncoder::feature_dim() const {
  switch (kind_) {
    case LmKind::kGpt2:
    case LmKind::kBert:
    case LmKind::kXlnet:
      return config_.model_dim;
    case LmKind::kElmo:
    case LmKind::kFlair:
      return 2 * config_.gru_hidden;
  }
  return config_.model_dim;
}

namespace {

/// Runs a word-level GRU LM over embedded inputs; returns per-position states
/// [L, H].  `reverse` runs right-to-left but returns states in textual order.
Tensor RunGruLm(const nn::GruCell& cell, const Tensor& embedded, bool reverse) {
  const int64_t length = embedded.shape().dim(0);
  Tensor projected = cell.ProjectInput(embedded);
  Tensor h = Tensor::Zeros(Shape{1, cell.hidden_dim()});
  std::vector<Tensor> states(static_cast<size_t>(length));
  for (int64_t step = 0; step < length; ++step) {
    const int64_t t = reverse ? length - 1 - step : step;
    h = cell.Step(tensor::Slice(projected, 0, t, 1), h);
    states[static_cast<size_t>(t)] = h;
  }
  return tensor::Concat(states, 0);
}

std::vector<int64_t> ReversedIndices(int64_t length) {
  std::vector<int64_t> idx(static_cast<size_t>(length));
  for (int64_t i = 0; i < length; ++i) idx[static_cast<size_t>(i)] = length - 1 - i;
  return idx;
}

}  // namespace

Tensor PretrainedLmEncoder::TransformerFeatures(
    const std::vector<int64_t>& word_ids,
    const std::vector<nn::TransformerBlock*>& blocks, bool reverse) const {
  std::vector<int64_t> ids = word_ids;
  if (reverse) std::reverse(ids.begin(), ids.end());
  const int64_t length = static_cast<int64_t>(ids.size());
  FEWNER_CHECK(length <= config_.max_len,
               "sentence of " << length << " tokens exceeds LM max_len "
                              << config_.max_len);
  std::vector<int64_t> positions(static_cast<size_t>(length));
  for (int64_t i = 0; i < length; ++i) positions[static_cast<size_t>(i)] = i;
  Tensor x = tensor::Add(word_embedding_->Forward(ids),
                         position_embedding_->Forward(positions));
  for (nn::TransformerBlock* block : blocks) x = block->Forward(x);
  if (reverse) x = tensor::IndexSelectRows(x, ReversedIndices(length));
  return x;
}

Tensor PretrainedLmEncoder::CrossEntropy(const Tensor& logits,
                                         const std::vector<int64_t>& targets,
                                         const std::vector<bool>* predict_mask) const {
  const int64_t length = logits.shape().dim(0);
  const int64_t vocab = logits.shape().dim(1);
  FEWNER_CHECK(static_cast<int64_t>(targets.size()) == length,
               "CrossEntropy target length mismatch");
  Tensor logp = tensor::LogSoftmaxLastDim(logits);
  std::vector<float> select(static_cast<size_t>(length * vocab), 0.0f);
  int64_t predicted = 0;
  for (int64_t t = 0; t < length; ++t) {
    if (predict_mask != nullptr && !(*predict_mask)[static_cast<size_t>(t)]) continue;
    select[static_cast<size_t>(t * vocab + targets[static_cast<size_t>(t)])] = 1.0f;
    ++predicted;
  }
  FEWNER_CHECK(predicted > 0, "CrossEntropy with no predicted positions");
  Tensor gold = tensor::SumAll(
      tensor::Mul(logp, Tensor::FromData(logits.shape(), std::move(select))));
  return tensor::MulScalar(tensor::Neg(gold), 1.0f / static_cast<float>(predicted));
}

Tensor PretrainedLmEncoder::Encode(const EncodedSentence& sentence) const {
  const int64_t length = sentence.length();
  FEWNER_CHECK(length > 0, "Encode on empty sentence");
  switch (kind_) {
    case LmKind::kGpt2:
    case LmKind::kBert: {
      std::vector<nn::TransformerBlock*> blocks;
      for (const auto& b : blocks_) blocks.push_back(b.get());
      return TransformerFeatures(sentence.word_ids, blocks, /*reverse=*/false);
    }
    case LmKind::kXlnet: {
      std::vector<nn::TransformerBlock*> fwd, rev;
      for (const auto& b : blocks_) fwd.push_back(b.get());
      for (const auto& b : blocks_rev_) rev.push_back(b.get());
      Tensor a = TransformerFeatures(sentence.word_ids, fwd, false);
      Tensor b = TransformerFeatures(sentence.word_ids, rev, true);
      return tensor::MulScalar(tensor::Add(a, b), 0.5f);
    }
    case LmKind::kElmo: {
      Tensor embedded = word_embedding_->Forward(sentence.word_ids);
      Tensor fwd = RunGruLm(*forward_gru_, embedded, false);
      Tensor bwd = RunGruLm(*backward_gru_, embedded, true);
      return tensor::Concat({fwd, bwd}, 1);
    }
    case LmKind::kFlair: {
      // Character stream with <pad> as the inter-word separator; word features
      // are forward states at word ends + backward states at word starts.
      std::vector<int64_t> stream;
      std::vector<int64_t> word_end, word_start;
      for (int64_t w = 0; w < length; ++w) {
        word_start.push_back(static_cast<int64_t>(stream.size()));
        const auto& chars = sentence.char_ids[static_cast<size_t>(w)];
        stream.insert(stream.end(), chars.begin(), chars.end());
        if (chars.empty()) stream.push_back(text::kPadId);
        word_end.push_back(static_cast<int64_t>(stream.size()) - 1);
        stream.push_back(text::kPadId);  // separator
      }
      Tensor embedded = char_embedding_->Forward(stream);
      Tensor fwd = RunGruLm(*char_forward_gru_, embedded, false);
      Tensor bwd = RunGruLm(*char_backward_gru_, embedded, true);
      return tensor::Concat({tensor::IndexSelectRows(fwd, word_end),
                             tensor::IndexSelectRows(bwd, word_start)},
                            1);
    }
  }
  FEWNER_CHECK(false, "unreachable");
  return Tensor();
}

Tensor PretrainedLmEncoder::LmLoss(const EncodedSentence& sentence) const {
  const int64_t length = sentence.length();
  FEWNER_CHECK(length >= 2, "LM loss needs at least two tokens");
  switch (kind_) {
    case LmKind::kGpt2: {
      std::vector<nn::TransformerBlock*> blocks;
      for (const auto& b : blocks_) blocks.push_back(b.get());
      Tensor features = TransformerFeatures(sentence.word_ids, blocks, false);
      Tensor context = tensor::Slice(features, 0, 0, length - 1);
      std::vector<int64_t> targets(sentence.word_ids.begin() + 1,
                                   sentence.word_ids.end());
      return CrossEntropy(vocab_head_->Forward(context), targets, nullptr);
    }
    case LmKind::kXlnet: {
      std::vector<nn::TransformerBlock*> fwd, rev;
      for (const auto& b : blocks_) fwd.push_back(b.get());
      for (const auto& b : blocks_rev_) rev.push_back(b.get());
      Tensor f = TransformerFeatures(sentence.word_ids, fwd, false);
      Tensor next_ctx = tensor::Slice(f, 0, 0, length - 1);
      std::vector<int64_t> next(sentence.word_ids.begin() + 1,
                                sentence.word_ids.end());
      Tensor loss_f = CrossEntropy(vocab_head_->Forward(next_ctx), next, nullptr);
      Tensor r = TransformerFeatures(sentence.word_ids, rev, true);
      Tensor prev_ctx = tensor::Slice(r, 0, 1, length - 1);
      std::vector<int64_t> prev(sentence.word_ids.begin(),
                                sentence.word_ids.end() - 1);
      Tensor loss_r = CrossEntropy(vocab_head_->Forward(prev_ctx), prev, nullptr);
      return tensor::MulScalar(tensor::Add(loss_f, loss_r), 0.5f);
    }
    case LmKind::kBert: {
      // Mask ~15% of tokens (at least one) and predict them bidirectionally.
      std::vector<bool> masked(static_cast<size_t>(length), false);
      int64_t count = 0;
      for (int64_t t = 0; t < length; ++t) {
        if (mask_rng_.Bernoulli(0.15)) {
          masked[static_cast<size_t>(t)] = true;
          ++count;
        }
      }
      if (count == 0) {
        masked[mask_rng_.UniformInt(static_cast<uint64_t>(length))] = true;
      }
      std::vector<int64_t> positions(static_cast<size_t>(length));
      for (int64_t i = 0; i < length; ++i) positions[static_cast<size_t>(i)] = i;
      Tensor embedded = word_embedding_->Forward(sentence.word_ids);
      std::vector<float> keep(static_cast<size_t>(length), 1.0f);
      std::vector<float> use_mask(static_cast<size_t>(length), 0.0f);
      for (int64_t t = 0; t < length; ++t) {
        if (masked[static_cast<size_t>(t)]) {
          keep[static_cast<size_t>(t)] = 0.0f;
          use_mask[static_cast<size_t>(t)] = 1.0f;
        }
      }
      Tensor keep_col = Tensor::FromData(Shape{length, 1}, std::move(keep));
      Tensor mask_col = Tensor::FromData(Shape{length, 1}, std::move(use_mask));
      Tensor x = tensor::Add(
          tensor::Add(tensor::Mul(embedded, keep_col),
                      tensor::Mul(tensor::BroadcastTo(mask_embedding_,
                                                      Shape{length,
                                                            config_.model_dim}),
                                  mask_col)),
          position_embedding_->Forward(positions));
      for (const auto& block : blocks_) x = block->Forward(x);
      return CrossEntropy(vocab_head_->Forward(x), sentence.word_ids, &masked);
    }
    case LmKind::kElmo: {
      Tensor embedded = word_embedding_->Forward(sentence.word_ids);
      Tensor fwd = RunGruLm(*forward_gru_, embedded, false);
      Tensor bwd = RunGruLm(*backward_gru_, embedded, true);
      std::vector<int64_t> next(sentence.word_ids.begin() + 1,
                                sentence.word_ids.end());
      std::vector<int64_t> prev(sentence.word_ids.begin(),
                                sentence.word_ids.end() - 1);
      Tensor loss_f = CrossEntropy(
          vocab_head_->Forward(tensor::Slice(fwd, 0, 0, length - 1)), next, nullptr);
      Tensor loss_b = CrossEntropy(
          vocab_head_->Forward(tensor::Slice(bwd, 0, 1, length - 1)), prev, nullptr);
      return tensor::MulScalar(tensor::Add(loss_f, loss_b), 0.5f);
    }
    case LmKind::kFlair: {
      std::vector<int64_t> stream;
      for (const auto& chars : sentence.char_ids) {
        stream.insert(stream.end(), chars.begin(), chars.end());
        stream.push_back(text::kPadId);
      }
      const int64_t t_len = static_cast<int64_t>(stream.size());
      FEWNER_CHECK(t_len >= 2, "Flair LM loss needs two characters");
      Tensor embedded = char_embedding_->Forward(stream);
      Tensor fwd = RunGruLm(*char_forward_gru_, embedded, false);
      std::vector<int64_t> next(stream.begin() + 1, stream.end());
      return CrossEntropy(
          char_head_->Forward(tensor::Slice(fwd, 0, 0, t_len - 1)), next, nullptr);
    }
  }
  FEWNER_CHECK(false, "unreachable");
  return Tensor();
}

void PretrainedLmEncoder::Pretrain(const std::vector<EncodedSentence>& sentences,
                                   int64_t steps, float lr, util::Rng* rng) {
  FEWNER_CHECK(!sentences.empty(), "Pretrain on empty corpus");
  SetTraining(true);
  nn::Adam optimizer(Parameters(), lr);
  for (int64_t step = 0; step < steps; ++step) {
    const EncodedSentence& sentence = sentences[rng->UniformInt(sentences.size())];
    if (sentence.length() < 2) continue;
    Tensor loss = LmLoss(sentence);
    std::vector<Tensor> params = nn::ParameterTensors(this);
    std::vector<Tensor> grads = tensor::autodiff::Grad(loss, params);
    nn::ClipGradNorm(&grads, 5.0f);
    optimizer.Step(grads);
  }
  SetTraining(false);  // frozen from here on
}

}  // namespace fewner::models
