// Numeric encoding of sentences and episodes for the neural models.

#pragma once

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "data/episode_sampler.h"
#include "text/vocab.h"

namespace fewner::models {

/// A sentence resolved to word ids, per-word character ids, and episode tags.
struct EncodedSentence {
  std::vector<int64_t> word_ids;
  std::vector<std::vector<int64_t>> char_ids;
  std::vector<int64_t> tags;  ///< BIO slot tags under the episode's type order
  const data::Sentence* source = nullptr;

  int64_t length() const { return static_cast<int64_t>(word_ids.size()); }
};

/// An episode with all sentences encoded and the tag-validity mask resolved.
struct EncodedEpisode {
  std::vector<EncodedSentence> support;
  std::vector<EncodedSentence> query;
  int64_t n_way = 0;
  std::vector<bool> valid_tags;  ///< mask over the model's max_tags inventory
};

/// A padded, length-masked batch of sentences in `[B, Lmax]` layout — the unit
/// of work for the batch-first pipeline (Backbone::EncodeBatch and friends).
/// Lane b occupies flat positions [b*max_len, b*max_len + lengths[b]); the
/// tail of each lane is padding (word id 0, empty char sequence, tag 0) that
/// every consumer masks by `lengths`.
struct EncodedBatch {
  int64_t batch = 0;                            ///< B, number of lanes
  int64_t max_len = 0;                          ///< Lmax, padded length
  std::vector<int64_t> lengths;                 ///< [B] real sentence lengths
  std::vector<int64_t> word_ids;                ///< [B * Lmax], pad id 0
  std::vector<std::vector<int64_t>> char_ids;   ///< [B * Lmax], pad token empty
  std::vector<int64_t> tags;                    ///< [B * Lmax], pad tag 0

  int64_t flat_size() const { return batch * max_len; }
};

/// Packs sentences into a padded batch, lane i = sentences[i].  Pure layout —
/// lane order is the caller's sentence order, so a per-lane consumer sees
/// exactly the same token/tag streams as the sentence-at-a-time path.
EncodedBatch PackBatch(const std::vector<EncodedSentence>& sentences);

/// Encodes sentences/episodes against fixed vocabularies.  Word lookup is
/// lowercased, characters are cased (paper §4.1.3); test-time words missing
/// from the training vocabulary map to <unk>, which is what makes the
/// character CNN load-bearing for novel entity types.
class EpisodeEncoder {
 public:
  EpisodeEncoder(const text::Vocab* word_vocab, const text::Vocab* char_vocab,
                 int64_t max_tags);

  EncodedSentence EncodeSentence(const data::Sentence& sentence,
                                 const std::vector<std::string>& types) const;

  EncodedEpisode Encode(const data::Episode& episode) const;

  int64_t max_tags() const { return max_tags_; }

 private:
  const text::Vocab* word_vocab_;
  const text::Vocab* char_vocab_;
  int64_t max_tags_;
};

}  // namespace fewner::models
