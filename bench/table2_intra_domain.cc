// Reproduces Table 2: intra-domain cross-type adaptation on NNE, FG-NER and
// GENIA — 5-way 1-shot and 5-shot, ten methods, average F1 with 95% CI over a
// fixed list of held-out tasks.
//
//   ./build/bench/table2_intra_domain [--datasets NNE,GENIA] [--methods ...]
//   Full-paper settings: --episodes 1000 --scale 1.0 --iterations 2500

#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/reporting.h"

using namespace fewner;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("methods", "BERT,FineTune,ProtoNet,SNAIL,FewNER",
                  "methods in the default sweep; MAML appears in tables 3/4 and\n"
                  "the second-order ablation (pass --methods all for all ten)");
  flags.AddString("datasets", "FG-NER,GENIA",
                  "comma list of datasets (paper: NNE,FG-NER,GENIA)");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  const auto methods = bench::ParseMethods(flags.GetString("methods"));
  const auto shots = bench::ParseShots(flags.GetString("shots"));
  const auto datasets = util::Split(flags.GetString("datasets"), ',');

  // results[method][dataset:shot] = formatted cell
  std::map<std::string, std::map<std::string, std::string>> cells;
  std::vector<std::string> columns;

  for (const std::string& dataset : datasets) {
    for (int64_t k : shots) {
      const std::string column = dataset + " " + std::to_string(k) + "-shot";
      columns.push_back(column);
      eval::ExperimentConfig config = bench::ConfigFromFlags(flags);
      config.k_shot = k;
      eval::Scenario scenario =
          eval::MakeIntraDomainScenario(dataset, config.data_scale, config.seed);
      eval::ExperimentRunner runner(std::move(scenario), config);
      for (eval::MethodId id : methods) {
        eval::EvalResult result = runner.Run(id);
        cells[eval::MethodName(id)][column] = eval::FormatCell(result.f1);
        std::cout << "[" << column << "] " << eval::MethodName(id) << ": "
                  << eval::FormatCell(result.f1) << std::endl;
      }
    }
  }

  std::vector<std::string> headers = {"Methods"};
  headers.insert(headers.end(), columns.begin(), columns.end());
  eval::Table table(headers);
  bool dynamic_section = false, static_section = false;
  for (eval::MethodId id : methods) {
    const std::string name = eval::MethodName(id);
    const bool is_lm = id == eval::MethodId::kGpt2 || id == eval::MethodId::kFlair ||
                       id == eval::MethodId::kElmo || id == eval::MethodId::kBert ||
                       id == eval::MethodId::kXlnet;
    if (is_lm && !dynamic_section) {
      table.AddSection("Dynamic Token Representation: Frozen LM Embeddings + CRF");
      dynamic_section = true;
    }
    if (!is_lm && !static_section) {
      table.AddSection("Static Token Representation: HashEmb + CNN");
      static_section = true;
    }
    std::vector<std::string> row = {name};
    for (const std::string& column : columns) row.push_back(cells[name][column]);
    table.AddRow(std::move(row));
  }
  std::cout << "\nTable 2: intra-domain cross-type adaptation (5-way)\n"
            << table.Render();
  return 0;
}
