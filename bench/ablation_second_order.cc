// Design-choice ablation (DESIGN.md §4.1): exact second-order meta-gradients
// vs. the first-order approximation (FOMAML-style detached inner gradients),
// for both FEWNER and MAML on NNE intra-domain cross-type adaptation.  The
// paper's Eq. 6 explicitly requires the gradient-through-gradient term; this
// bench quantifies what it buys and what it costs in training time.
//
//   ./build/bench/ablation_second_order [--episodes N] [--iterations N] ...

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/reporting.h"

using namespace fewner;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("shots", "1", "comma list of K values");
  flags.AddInt("iterations", 50, "training outer iterations");
  flags.AddInt("episodes", 4, "evaluation episodes");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  const auto shots = bench::ParseShots(flags.GetString("shots"));
  eval::Table table({"Method", "Order", "F1", "train seconds"});

  for (int64_t k : shots) {
    for (eval::MethodId id : {eval::MethodId::kFewner, eval::MethodId::kMaml}) {
      for (bool first_order : {false, true}) {
        eval::ExperimentConfig config = bench::ConfigFromFlags(flags);
        config.k_shot = k;
        config.train.first_order = first_order;
        eval::Scenario scenario = eval::MakeIntraDomainScenario(
            data::kNne, config.data_scale, config.seed);
        eval::ExperimentRunner runner(std::move(scenario), config);
        const auto start = std::chrono::steady_clock::now();
        eval::EvalResult result = runner.Run(id);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        table.AddRow({eval::MethodName(id) + " " + std::to_string(k) + "-shot",
                      first_order ? "first" : "second",
                      eval::FormatCell(result.f1),
                      util::FormatDouble(seconds, 1)});
        std::cout << eval::MethodName(id) << " " << k << "-shot "
                  << (first_order ? "first" : "second")
                  << "-order: " << eval::FormatCell(result.f1) << " ("
                  << util::FormatDouble(seconds, 1) << "s)" << std::endl;
      }
    }
  }
  std::cout << "\nDesign ablation: second-order vs first-order meta-gradients\n"
            << table.Render();
  return 0;
}
