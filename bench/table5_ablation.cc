// Reproduces Table 5: ablation study of FEWNER on intra-domain cross-type
// adaptation with the NNE data.  Variants: conditioning method A (concat)
// instead of B (FiLM); removing the character CNN; 4/6/8 inner gradient steps
// during training; half/double context dimensions; 3/10/15 training ways.
// Reports absolute F1 and the delta against the FEWNER default.
//
//   ./build/bench/table5_ablation [--episodes N] [--iterations N] ...

#include <functional>
#include <iostream>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/reporting.h"

using namespace fewner;  // NOLINT: bench brevity

namespace {

struct Variant {
  std::string name;
  std::function<void(eval::ExperimentConfig*)> apply;
};

eval::ScoreSummary RunVariant(const Variant& variant,
                              const eval::ExperimentConfig& base_config,
                              uint64_t seed) {
  eval::ExperimentConfig config = base_config;
  variant.apply(&config);
  eval::Scenario scenario =
      eval::MakeIntraDomainScenario(data::kNne, config.data_scale, seed);
  eval::ExperimentRunner runner(std::move(scenario), config);
  return runner.Run(eval::MethodId::kFewner).f1;
}

std::string Delta(const eval::ScoreSummary& variant,
                  const eval::ScoreSummary& reference) {
  const double diff = (variant.mean - reference.mean) * 100.0;
  std::string out = util::FormatDouble(diff, 2) + "%";
  if (diff >= 0) out = "+" + out;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("shots", "1", "comma list of K values (paper: 1,5)");
  flags.AddInt("iterations", 35, "training outer iterations per variant");
  flags.AddInt("episodes", 3, "evaluation episodes per variant");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  const auto shots = bench::ParseShots(flags.GetString("shots"));
  eval::ExperimentConfig base = bench::ConfigFromFlags(flags);
  const int64_t default_context = base.backbone.context_dim;

  std::vector<Variant> variants = {
      {"FewNER (default: FiLM, 2 inner steps)", [](eval::ExperimentConfig*) {}},
      {"Conditioning method A (concat)",
       [](eval::ExperimentConfig* c) {
         c->backbone.conditioning = models::Conditioning::kConcat;
       }},
      {"Remove character CNN",
       [](eval::ExperimentConfig* c) { c->backbone.use_char_cnn = false; }},
      {"Inner gradient steps: 4",
       [](eval::ExperimentConfig* c) { c->train.inner_steps_train = 4; }},
      {"Inner gradient steps: 6",
       [](eval::ExperimentConfig* c) { c->train.inner_steps_train = 6; }},
      {"Inner gradient steps: 8",
       [](eval::ExperimentConfig* c) { c->train.inner_steps_train = 8; }},
      {"Dimensions of phi: half",
       [default_context](eval::ExperimentConfig* c) {
         c->backbone.context_dim = default_context / 2;
       }},
      {"Dimensions of phi: double",
       [default_context](eval::ExperimentConfig* c) {
         c->backbone.context_dim = default_context * 2;
       }},
      {"Training way: 3", [](eval::ExperimentConfig* c) { c->train_way = 3; }},
      {"Training way: 10", [](eval::ExperimentConfig* c) { c->train_way = 10; }},
      {"Training way: 15", [](eval::ExperimentConfig* c) { c->train_way = 15; }},
  };

  std::vector<std::string> headers = {"Variant"};
  for (int64_t k : shots) {
    headers.push_back(std::to_string(k) + "-shot");
    headers.push_back("delta");
  }
  eval::Table table(headers);

  std::vector<eval::ScoreSummary> reference(shots.size());
  std::vector<std::vector<std::string>> rows;
  for (size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row = {variants[v].name};
    for (size_t s = 0; s < shots.size(); ++s) {
      eval::ExperimentConfig config = base;
      config.k_shot = shots[s];
      eval::ScoreSummary summary = RunVariant(variants[v], config, config.seed);
      if (v == 0) reference[s] = summary;
      row.push_back(eval::FormatCell(summary));
      row.push_back(v == 0 ? "--" : Delta(summary, reference[s]));
      std::cout << "[" << shots[s] << "-shot] " << variants[v].name << ": "
                << eval::FormatCell(summary) << std::endl;
    }
    table.AddRow(std::move(row));
  }
  std::cout << "\nTable 5: ablation study on NNE intra-domain cross-type\n"
            << table.Render();
  return 0;
}
