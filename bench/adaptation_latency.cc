// Per-task adapt+serve latency with and without the frozen-θ prefix cache.
//
// FEWNER's test-time loop (paper Algorithm 1) freezes θ and descends only the
// low-dimensional φ — but the uncached implementation re-runs the whole
// θ-encoder (embeddings + CharCNN + BiGRU) over the support batch at every
// inner step, and again over the query batch at serve time.  The cached path
// (DESIGN.md §8) encodes each batch's θ-prefix once and runs all inner steps
// and the decode on the φ-suffix only, so S−1 support encodes plus the
// redundant query work disappear.
//
// Each cell adapts a task from scratch and tags its query set, both ways:
//
//   uncached — per-step Backbone::BatchLoss forwards (the pre-cache
//              AdaptContextOn), then DecodeBatch under EvalMode.
//   cached   — Fewner::AdaptContextOn (θ-prefix once, φ-suffix per step),
//              then EncodePrefix + DecodeBatchFromPrefix under EvalMode.
//
// Correctness is gated before any timing: the cached φ* must be bitwise-equal
// to the uncached φ* and the served tag sequences identical, so a speedup can
// never be bought with a numerics regression.  Swept over inner_steps and K;
// `--json <path>` writes the table for the in-repo perf trajectory
// (BENCH_adaptation.json) and CI artifacts.
//
//   ./adaptation_latency --inner-steps 1,5,10 --shots 1,5 --json out.json

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "data/episode_sampler.h"
#include "data/synthetic.h"
#include "meta/fewner.h"
#include "models/backbone.h"
#include "models/encoding.h"
#include "tensor/autodiff.h"
#include "tensor/eval_mode.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fewner {
namespace {

using Clock = std::chrono::steady_clock;
using tensor::Tensor;

/// The pre-cache test-time inner loop: one full BatchLoss forward per step.
/// Mirrors Fewner::AdaptContextOn's descent exactly (clip 5.0, re-leaf) so
/// the two paths are comparable step for step.
Tensor AdaptUncached(const models::Backbone& net,
                     const models::EncodedBatch& support,
                     const std::vector<bool>& valid_tags, int64_t steps,
                     float inner_lr) {
  Tensor phi = net.ZeroContext();
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss = net.BatchLoss(support, phi, valid_tags);
    Tensor grad = tensor::autodiff::Grad(loss, {phi})[0];
    double norm_sq = 0.0;
    for (float v : grad.data()) norm_sq += static_cast<double>(v) * v;
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    const float clip_scale = norm > 5.0f ? 5.0f / norm : 1.0f;
    phi = tensor::Sub(phi, tensor::MulScalar(grad, inner_lr * clip_scale));
    Tensor leaf = phi.Detach();
    leaf.set_requires_grad(true);
    phi = leaf;
  }
  return phi;
}

/// Runs `task` repeatedly until `min_seconds` of wall time; returns ms/task.
template <typename F>
double MeasureMsPerTask(double min_seconds, F task) {
  task();  // warm-up: one-time allocations and arena growth
  int64_t count = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    task();
    ++count;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return elapsed * 1000.0 / static_cast<double>(count);
}

std::vector<int64_t> ParseIntList(const std::string& value, const char* flag) {
  std::vector<int64_t> out;
  for (const std::string& s : util::Split(value, ',')) {
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (s.empty() || *end != '\0' || v < 1) {
      std::cerr << "invalid " << flag << " entry '" << s << "'\n";
      std::exit(1);
    }
    out.push_back(v);
  }
  return out;
}

int Main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("inner-steps", "1,5,10", "comma list of adaptation steps");
  flags.AddString("shots", "1,5", "comma list of K (support shots per type)");
  flags.AddInt("query-size", 6,
               "query sentences served per task (the default matches the "
               "harness-wide eval episode size)");
  flags.AddInt("n-way", 5, "entity types per task (paper episodes: 5-way)");
  flags.AddInt("sentences", 300, "synthetic corpus size");
  flags.AddString("profile", "paper",
                  "backbone size: 'paper' (300d GloVe-scale, hidden 128 — the "
                  "model one actually serves) or 'cpu' (BackboneConfig's "
                  "CPU-scale defaults, matching the table benches)");
  flags.AddInt("hidden-dim", 0, "override the profile's hidden dimension");
  flags.AddDouble("inner-lr", 0.2, "adaptation learning rate");
  flags.AddDouble("min-seconds", 0.5, "minimum measured wall time per cell");
  flags.AddInt("seed", 42, "global seed");
  flags.AddBool("verbose", false, "log progress");
  bench::AddJsonFlag(&flags);
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  const std::vector<int64_t> step_grid =
      ParseIntList(flags.GetString("inner-steps"), "--inner-steps");
  const std::vector<int64_t> shot_grid =
      ParseIntList(flags.GetString("shots"), "--shots");
  const int64_t query_size = flags.GetInt("query-size");
  const float inner_lr = static_cast<float>(flags.GetDouble("inner-lr"));
  const double min_seconds = flags.GetDouble("min-seconds");

  data::SyntheticSpec spec;
  spec.name = "adaptation";
  spec.genre = "newswire";
  spec.num_types = 8;
  spec.num_sentences = flags.GetInt("sentences");
  spec.mentions_per_sentence = 2.0;
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  // Adaptation latency is a serving number, so the default profile is the
  // paper-scale backbone (BackboneConfig's inline "paper:" annotations) — the
  // model one actually deploys — not the shrunken dims the CPU-scale table
  // benches train with.
  const int64_t n_way = flags.GetInt("n-way");
  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.max_tags = text::NumTags(n_way);
  const std::string profile = flags.GetString("profile");
  if (profile == "paper") {
    config.word_dim = 300;
    config.char_dim = 100;
    config.filters_per_width = 50;
    config.hidden_dim = 128;
    config.context_dim = 256;
  } else if (profile != "cpu") {
    std::cerr << "invalid --profile '" << profile << "' (paper|cpu)\n";
    return 1;
  }
  if (flags.GetInt("hidden-dim") > 0) {
    config.hidden_dim = flags.GetInt("hidden-dim");
  }

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  util::Rng rng(spec.seed);
  meta::Fewner fewner(config, &rng);
  models::Backbone* net = fewner.backbone();
  net->SetTraining(false);  // test-time regime: dropout off, prefix cacheable

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.Value("adaptation_latency");
  json.Key("profile");
  json.Value(profile);
  json.Key("hidden_dim");
  json.Value(static_cast<int64_t>(config.hidden_dim));
  json.Key("n_way");
  json.Value(n_way);
  json.Key("query_size");
  json.Value(query_size);
  json.Key("results");
  json.BeginArray();

  std::cout << "      K  steps   uncached ms/task     cached ms/task    speedup\n";
  // Aggregate adapt+serve time across the K sweep at the deepest inner-step
  // setting — the headline number.  Per-cell ratios above it show the spread:
  // small-support tasks are diluted by query encoding, which no cache can
  // remove (the queries have never been seen), while typical-support tasks
  // approach the per-step ratio.
  int64_t max_steps = 0;
  for (int64_t steps : step_grid) max_steps = std::max(max_steps, steps);
  double uncached_total = 0.0;
  double cached_total = 0.0;
  for (int64_t k_shot : shot_grid) {
    data::EpisodeSampler sampler(&corpus, corpus.entity_types, n_way, k_shot,
                                 query_size, spec.seed ^ 0xADA9ull);
    models::EncodedEpisode episode = encoder.Encode(sampler.Sample(0));
    const models::EncodedBatch support = models::PackBatch(episode.support);
    const models::EncodedBatch query = models::PackBatch(episode.query);

    for (int64_t steps : step_grid) {
      // Correctness gate: bitwise φ* parity and identical served tags.
      Tensor uncached_phi =
          AdaptUncached(*net, support, episode.valid_tags, steps, inner_lr);
      Tensor cached_phi = meta::Fewner::AdaptContextOn(
          *net, episode.support, episode.valid_tags, steps, inner_lr,
          /*create_graph=*/false);
      const auto& a = uncached_phi.data();
      const auto& b = cached_phi.data();
      if (a.size() != b.size() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
        std::cerr << "ERROR: cached phi* diverges from uncached phi* (K="
                  << k_shot << ", steps=" << steps << ")\n";
        return 1;
      }
      std::vector<std::vector<int64_t>> uncached_tags, cached_tags;
      {
        tensor::EvalMode eval;
        uncached_tags = net->DecodeBatch(query, uncached_phi, episode.valid_tags);
        cached_tags = net->DecodeBatchFromPrefix(net->EncodePrefix(query),
                                                 cached_phi, episode.valid_tags);
      }
      if (uncached_tags != cached_tags) {
        std::cerr << "ERROR: cached tags diverge from uncached tags (K="
                  << k_shot << ", steps=" << steps << ")\n";
        return 1;
      }

      const double uncached_ms = MeasureMsPerTask(min_seconds, [&] {
        Tensor phi =
            AdaptUncached(*net, support, episode.valid_tags, steps, inner_lr);
        tensor::EvalMode eval;
        net->DecodeBatch(query, phi, episode.valid_tags);
      });
      const double cached_ms = MeasureMsPerTask(min_seconds, [&] {
        Tensor phi = meta::Fewner::AdaptContextOn(*net, episode.support,
                                                  episode.valid_tags, steps,
                                                  inner_lr,
                                                  /*create_graph=*/false);
        tensor::EvalMode eval;
        net->DecodeBatchFromPrefix(net->EncodePrefix(query), phi,
                                   episode.valid_tags);
      });
      const double speedup = uncached_ms / cached_ms;
      if (steps == max_steps) {
        uncached_total += uncached_ms;
        cached_total += cached_ms;
      }
      std::printf("%7lld %6lld %18.3f %18.3f %9.2fx\n",
                  static_cast<long long>(k_shot),
                  static_cast<long long>(steps), uncached_ms, cached_ms,
                  speedup);

      json.BeginObject();
      json.Key("k_shot");
      json.Value(k_shot);
      json.Key("inner_steps");
      json.Value(steps);
      json.Key("uncached_ms_per_task");
      json.Value(uncached_ms);
      json.Key("cached_ms_per_task");
      json.Value(cached_ms);
      json.Key("speedup");
      json.Value(speedup);
      json.EndObject();
    }
  }
  json.EndArray();
  const double speedup_at_max_steps =
      cached_total > 0.0 ? uncached_total / cached_total : 0.0;
  json.Key("speedup_at_max_steps");
  json.Value(speedup_at_max_steps);
  json.EndObject();

  std::printf("adapt+serve speedup at inner_steps=%lld (across K sweep): %.2fx\n",
              static_cast<long long>(max_steps), speedup_at_max_steps);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::cerr << "ERROR: could not write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fewner

int main(int argc, char** argv) { return fewner::Main(argc, argv); }
