// Reproduces Table 1: statistics of the six datasets (genre, #types,
// #sentences, #mentions).  At --scale 1.0 the synthetic corpora match the
// paper's type and sentence counts exactly and the mention counts to within
// sampling noise of the calibrated per-sentence density.
//
//   ./build/bench/table1_datasets [--scale 1.0]

#include <iostream>

#include "data/datasets.h"
#include "eval/reporting.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace fewner;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddDouble("scale", 1.0, "corpus scale in (0, 1]");
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  util::SetLogLevel(util::LogLevel::kWarning);

  const double scale = flags.GetDouble("scale");
  eval::Table table({"Dataset", "Genre", "#Types", "#Sentences", "#Mentions"});
  for (const std::string& name : data::AllDatasetNames()) {
    data::Corpus corpus = data::MakeDataset(name, scale);
    std::string genre = corpus.genre;
    if (genre == "newswire") genre = "Newswire";
    if (genre == "medical") genre = "Medical";
    if (genre == "various") genre = "Various";
    table.AddRow({corpus.name, genre,
                  std::to_string(corpus.entity_types.size()),
                  std::to_string(corpus.sentences.size()),
                  std::to_string(corpus.MentionCount())});
  }
  std::cout << "Table 1: statistics of datasets (scale " << scale << ")\n"
            << table.Render();
  std::cout << "\nPaper reference (scale 1.0): NNE 114/39932/185925, FG-NER "
               "200/3941/7384, GENIA 36/18546/76625, ACE2005 54/17399/48397, "
               "OntoNotes 18/42224/104248, BioNLP13CG 16/5939/21315\n";
  return 0;
}
