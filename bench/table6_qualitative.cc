// Reproduces Table 6: qualitative examples — tagged query sentences produced
// by FEWNER under the 5-way 1-shot setting for each adaptation family, with
// gold/predicted markup and a correctness verdict per sentence.
//
//   ./build/bench/table6_qualitative [--iterations N] [--sentences N]

#include <iostream>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/error_analysis.h"
#include "eval/evaluator.h"
#include "text/bio.h"

using namespace fewner;  // NOLINT: bench brevity

namespace {

/// Renders a sentence with bracketed predicted entities "[...]_{TypeName}" and
/// marks gold mentions the prediction missed with "<<...>>_{TypeName}".
void PrintTagged(const models::EncodedSentence& sentence,
                 const std::vector<int64_t>& predicted,
                 const std::vector<std::string>& types) {
  auto predicted_spans = text::TagsToSpans(predicted);
  auto gold_spans = text::TagsToSpans(sentence.tags);
  bool all_correct = true;
  for (const auto& g : gold_spans) {
    bool hit = false;
    for (const auto& p : predicted_spans) hit = hit || p == g;
    all_correct = all_correct && hit;
  }
  for (const auto& p : predicted_spans) {
    bool hit = false;
    for (const auto& g : gold_spans) hit = hit || p == g;
    all_correct = all_correct && hit;
  }

  std::cout << "  ";
  for (int64_t t = 0; t < sentence.length(); ++t) {
    for (const auto& p : predicted_spans) {
      if (p.start == t) std::cout << "[";
    }
    bool missed_start = false;
    for (const auto& g : gold_spans) {
      bool predicted_too = false;
      for (const auto& p : predicted_spans) predicted_too = predicted_too || p == g;
      if (!predicted_too && g.start == t) missed_start = true;
    }
    if (missed_start) std::cout << "<<";
    std::cout << sentence.source->tokens[static_cast<size_t>(t)];
    for (const auto& g : gold_spans) {
      bool predicted_too = false;
      for (const auto& p : predicted_spans) predicted_too = predicted_too || p == g;
      if (!predicted_too && g.end == t + 1) {
        std::cout << ">>_" << types[static_cast<size_t>(std::stoll(g.label))];
      }
    }
    for (const auto& p : predicted_spans) {
      if (p.end == t + 1) {
        std::cout << "]_" << types[static_cast<size_t>(std::stoll(p.label))];
      }
    }
    std::cout << " ";
  }
  std::cout << "   " << (all_correct ? "[correct]" : "[incorrect]") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddInt("sentences", 2, "query sentences shown per adaptation");
  flags.AddInt("iterations", 40, "training outer iterations per adaptation");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  struct Case {
    std::string label;
    eval::Scenario scenario;
  };
  eval::ExperimentConfig base = bench::ConfigFromFlags(flags);
  base.k_shot = 1;
  std::vector<Case> cases;
  cases.push_back({"NNE -> NNE (intra-domain cross-type)",
                   eval::MakeIntraDomainScenario(data::kNne, base.data_scale,
                                                 base.seed)});
  cases.push_back({"GENIA -> GENIA (intra-domain cross-type)",
                   eval::MakeIntraDomainScenario(data::kGenia, base.data_scale,
                                                 base.seed)});
  cases.push_back({"BN -> CTS (cross-domain intra-type)",
                   eval::MakeCrossDomainIntraType("BN", "CTS", base.data_scale,
                                                  base.seed)});
  cases.push_back({"GENIA -> BioNLP13CG (cross-domain cross-type)",
                   eval::MakeCrossDomainCrossType(data::kGenia, data::kBioNlp13Cg,
                                                  base.data_scale, base.seed)});

  std::cout << "Table 6: qualitative 5-way 1-shot examples produced by FEWNER\n"
            << "([...]_Type = predicted span; <<...>>_Type = missed gold span)\n\n";
  eval::ErrorProfile profile;
  for (auto& c : cases) {
    eval::ExperimentRunner runner(std::move(c.scenario), base);
    auto method = runner.CreateTrained(eval::MethodId::kFewner);
    data::Episode episode = runner.eval_sampler().Sample(0);
    if (static_cast<int64_t>(episode.query.size()) > flags.GetInt("sentences")) {
      episode.query.resize(static_cast<size_t>(flags.GetInt("sentences")));
    }
    models::EncodedEpisode enc = runner.encoder().Encode(episode);
    auto predictions = method->AdaptAndPredict(enc);
    std::cout << c.label << "\n  task types:";
    for (const auto& type : episode.types) std::cout << " " << type;
    std::cout << "\n";
    for (size_t q = 0; q < enc.query.size(); ++q) {
      PrintTagged(enc.query[q], predictions[q], episode.types);
      eval::AccumulateErrors(enc.query[q].tags, predictions[q], &profile);
    }
    std::cout << "\n";
  }
  std::cout << "Error profile over all shown sentences (paper SS4.5.3 taxonomy):\n  "
            << profile.ToString() << "\n";
  return 0;
}
