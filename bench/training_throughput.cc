// Inner-loop training throughput of batch-first episode execution.
//
// Runs the FEWNER inner loop (K gradient steps on φ over a B-sentence support
// set) two ways and reports episodes/second for each:
//
//   serial  — the pre-existing path: one forward/backward pipeline per
//             sentence, losses summed.
//   batched — one padded [B, Lmax] forward and one batched CRF NLL per step
//             (models::Backbone::BatchLoss on an EncodedBatch).
//
// The two paths are bitwise-interchangeable (DESIGN.md §7): before any timing,
// every (K, B) cell re-seeds dropout and checks that the serial and batched
// task losses agree to the last bit; cells are only timed — and the table only
// printed — when the parity checksum holds, so a speedup can never be bought
// with a correctness regression.
//
//   ./training_throughput --inner-steps 1,5 --batch-sizes 1,8,32
//
// --second-order keeps the inner-step graph (create_graph) the way
// meta-training does; the default measures the cheaper test-time adaptation.
// `--json <path>` writes the table for the in-repo perf trajectory
// (BENCH_training.json) and CI artifacts.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "data/episode_sampler.h"
#include "data/synthetic.h"
#include "meta/fewner.h"
#include "models/backbone.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fewner {
namespace {

using Clock = std::chrono::steady_clock;
using tensor::Tensor;

bool ParseSizes(const std::string& csv, std::vector<int64_t>* out) {
  for (const std::string& s : util::Split(csv, ',')) {
    char* end = nullptr;
    const long long value = std::strtoll(s.c_str(), &end, 10);
    if (s.empty() || *end != '\0' || value < 1) return false;
    out->push_back(value);
  }
  return !out->empty();
}

/// One inner-loop adaptation: K clipped gradient steps on φ, mirroring
/// Fewner::AdaptContextOn.  `packed == nullptr` selects the per-sentence path.
Tensor Adapt(const models::Backbone& net,
             const std::vector<models::EncodedSentence>& support,
             const models::EncodedBatch* packed,
             const std::vector<bool>& valid_tags, int64_t steps, float inner_lr,
             bool create_graph) {
  Tensor phi = net.ZeroContext();
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss = packed ? net.BatchLoss(*packed, phi, valid_tags)
                         : net.BatchLoss(support, phi, valid_tags);
    Tensor grad = tensor::autodiff::Grad(loss, {phi}, create_graph)[0];
    double norm_sq = 0.0;
    for (float v : grad.data()) norm_sq += static_cast<double>(v) * v;
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    const float clip_scale = norm > 5.0f ? 5.0f / norm : 1.0f;
    phi = tensor::Sub(phi, tensor::MulScalar(grad, inner_lr * clip_scale));
    if (!create_graph) {
      Tensor leaf = phi.Detach();
      leaf.set_requires_grad(true);
      phi = leaf;
    }
  }
  return phi;
}

/// Runs `episode_fn` until `min_seconds` of wall time elapses; returns
/// adaptations per second.
template <typename F>
double MeasureEpisodes(double min_seconds, F episode_fn) {
  episode_fn();  // warm-up
  int64_t episodes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    episode_fn();
    ++episodes;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(episodes) / elapsed;
}

int Main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("inner-steps", "1,5", "comma list of inner-loop step counts K");
  flags.AddString("batch-sizes", "1,8,32", "comma list of support sizes B");
  flags.AddInt("sentences", 300, "synthetic corpus size");
  flags.AddInt("hidden-dim", 16, "backbone hidden dimension");
  flags.AddDouble("inner-lr", 0.1, "inner-loop learning rate");
  flags.AddDouble("min-seconds", 1.0, "minimum measured wall time per cell");
  flags.AddBool("second-order", false, "keep the inner-step graph (training mode)");
  flags.AddInt("seed", 42, "global seed");
  flags.AddBool("verbose", false, "log progress");
  bench::AddJsonFlag(&flags);
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  std::vector<int64_t> step_counts, batch_sizes;
  if (!ParseSizes(flags.GetString("inner-steps"), &step_counts) ||
      !ParseSizes(flags.GetString("batch-sizes"), &batch_sizes)) {
    std::cerr << "invalid --inner-steps / --batch-sizes\n";
    return 1;
  }
  int64_t max_batch = 1;
  for (int64_t b : batch_sizes) max_batch = b > max_batch ? b : max_batch;

  data::SyntheticSpec spec;
  spec.name = "innerloop";
  spec.genre = "newswire";
  spec.num_sentences = flags.GetInt("sentences");
  spec.num_types = 8;
  spec.mentions_per_sentence = 2.0;
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 16;
  config.char_dim = 8;
  config.filters_per_width = 6;
  config.hidden_dim = flags.GetInt("hidden-dim");
  config.max_tags = text::NumTags(3);
  config.context_dim = 8;
  config.dropout = 0.3f;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, max_batch,
                               spec.seed ^ 0x7124ull);

  util::Rng rng(spec.seed);
  meta::Fewner fewner(config, &rng);
  models::Backbone* net = fewner.backbone();
  net->SetTraining(true);  // inner-loop training: dropout on

  // Support pool: enough distinct sentences to fill the largest B.  Sorted
  // longest-first like every sampled episode (data::EpisodeSampler), so a
  // B-sentence workload is length-homogeneous and padding stays representative
  // of real inner loops rather than of a worst-case ragged batch.
  models::EncodedEpisode episode = encoder.Encode(sampler.Sample(0));
  std::vector<models::EncodedSentence> pool = episode.support;
  for (const auto& sentence : episode.query) pool.push_back(sentence);
  std::stable_sort(pool.begin(), pool.end(),
                   [](const models::EncodedSentence& a,
                      const models::EncodedSentence& b) {
                     return a.length() > b.length();
                   });

  const float inner_lr = static_cast<float>(flags.GetDouble("inner-lr"));
  const bool second_order = flags.GetBool("second-order");
  const double min_seconds = flags.GetDouble("min-seconds");

  // Correctness gate: for every cell's workload, the serial and batched task
  // losses must agree bitwise under identical dropout streams.
  double checksum = 0.0;
  for (int64_t batch : batch_sizes) {
    std::vector<models::EncodedSentence> support;
    for (int64_t i = 0; i < batch; ++i) {
      support.push_back(
          pool[static_cast<size_t>(i % static_cast<int64_t>(pool.size()))]);
    }
    const models::EncodedBatch packed = models::PackBatch(support);
    Tensor phi = net->ZeroContext();
    net->ReseedDropout(static_cast<uint64_t>(batch));
    const float serial = net->BatchLoss(support, phi, episode.valid_tags).item();
    net->ReseedDropout(static_cast<uint64_t>(batch));
    const float fused = net->BatchLoss(packed, phi, episode.valid_tags).item();
    if (std::memcmp(&serial, &fused, sizeof(float)) != 0) {
      std::cerr << "ERROR: batched task loss diverges from per-sentence loss at"
                << " B=" << batch << " (" << serial << " vs " << fused << ")\n";
      return 1;
    }
    checksum += static_cast<double>(serial);
  }

  std::printf("parity checksum %.6f (serial == batched, bitwise)\n", checksum);

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.Value("training_throughput");
  json.Key("hidden_dim");
  json.Value(flags.GetInt("hidden-dim"));
  json.Key("second_order");
  json.Value(second_order);
  json.Key("parity_checksum");
  json.Value(checksum);
  json.Key("results");
  json.BeginArray();

  std::printf("      K       B   serial ep/s  batched ep/s    speedup\n");
  double worst_gated = 1e30;  // min speedup over K=5, B>=8 — the contract cells
  for (int64_t steps : step_counts) {
    for (int64_t batch : batch_sizes) {
      std::vector<models::EncodedSentence> support;
      for (int64_t i = 0; i < batch; ++i) {
        support.push_back(
            pool[static_cast<size_t>(i % static_cast<int64_t>(pool.size()))]);
      }
      const models::EncodedBatch packed = models::PackBatch(support);
      uint64_t episode_id = 0;
      const double serial_rate = MeasureEpisodes(min_seconds, [&] {
        net->ReseedDropout(episode_id++);
        Adapt(*net, support, nullptr, episode.valid_tags, steps, inner_lr,
              second_order);
      });
      episode_id = 0;
      const double batched_rate = MeasureEpisodes(min_seconds, [&] {
        net->ReseedDropout(episode_id++);
        Adapt(*net, support, &packed, episode.valid_tags, steps, inner_lr,
              second_order);
      });
      const double speedup = batched_rate / serial_rate;
      if (steps >= 5 && batch >= 8) {
        worst_gated = speedup < worst_gated ? speedup : worst_gated;
      }
      std::printf("%7lld %7lld %13.1f %13.1f %9.2fx\n",
                  static_cast<long long>(steps), static_cast<long long>(batch),
                  serial_rate, batched_rate, speedup);

      json.BeginObject();
      json.Key("inner_steps");
      json.Value(steps);
      json.Key("batch");
      json.Value(batch);
      json.Key("serial_episodes_per_s");
      json.Value(serial_rate);
      json.Key("batched_episodes_per_s");
      json.Value(batched_rate);
      json.Key("speedup");
      json.Value(speedup);
      json.EndObject();
    }
  }
  json.EndArray();
  if (worst_gated < 1e30) {
    std::printf("minimum speedup at K>=5, B>=8: %.2fx\n", worst_gated);
    json.Key("min_speedup_gated");
    json.Value(worst_gated);
  }
  json.EndObject();

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::cerr << "ERROR: could not write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fewner

int main(int argc, char** argv) { return fewner::Main(argc, argv); }
