// Shared flag plumbing for the table-reproduction benches.

#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fewner::bench {

/// Registers the flags shared by every table bench.
// Default scales are chosen so the WHOLE bench suite (all seven binaries,
// default flags) completes in about an hour on one CPU core while still
// exhibiting the paper's orderings.  Paper-protocol runs: --episodes 1000
// --scale 1.0 --iterations 2500 --methods all --shots 1,5.
inline void AddCommonFlags(util::FlagParser* flags) {
  flags->AddInt("episodes", 4, "evaluation episodes per cell (paper: 1000)");
  flags->AddInt("iterations", 50, "training outer iterations per method");
  flags->AddDouble("scale", 0.08, "corpus scale in (0,1] (paper: 1.0)");
  flags->AddInt("seed", 42, "global seed (fixes the evaluation task list)");
  flags->AddString("methods", "all",
                   "comma list of methods (GPT2,Flair,ELMo,BERT,XLNet,FineTune,"
                   "ProtoNet,MAML,SNAIL,FewNER) or 'all'");
  flags->AddString("shots", "1,5", "comma list of K values");
  flags->AddInt("lm-pretrain-steps", 150,
                "pre-training sentence-updates per LM baseline");
  flags->AddDouble("meta-lr", 0.004,
                   "outer-loop learning rate; the paper's 0.0008 assumes "
                   "convergence-scale training (use it with --iterations 2500+)");
  flags->AddInt("query-size", 6, "query sentences per evaluation episode");
  flags->AddDouble("inner-lr", 0.2,
                   "inner/adaptation learning rate alpha (paper: 0.1; the larger "
                   "CPU-scale default compensates for shorter meta-training)");
  flags->AddInt("inner-steps-test", 12,
                "adaptation gradient steps at test time (paper: 8)");
  flags->AddInt("inner-steps-train", 3,
                "inner gradient steps during training (paper: 2)");
  flags->AddBool("verbose", false, "log training progress");
}

/// Parses the --methods flag.
inline std::vector<eval::MethodId> ParseMethods(const std::string& value) {
  if (util::ToLower(value) == "all") return eval::AllMethods();
  std::vector<eval::MethodId> methods;
  for (const std::string& name : util::Split(value, ',')) {
    methods.push_back(eval::MethodFromName(name));
  }
  return methods;
}

/// Parses the --shots flag.
inline std::vector<int64_t> ParseShots(const std::string& value) {
  std::vector<int64_t> shots;
  for (const std::string& s : util::Split(value, ',')) {
    shots.push_back(std::stoll(s));
  }
  return shots;
}

/// Builds the experiment config shared by the table benches.
inline eval::ExperimentConfig ConfigFromFlags(const util::FlagParser& flags) {
  eval::ExperimentConfig config;
  config.eval_episodes = flags.GetInt("episodes");
  config.data_scale = flags.GetDouble("scale");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.train.iterations = flags.GetInt("iterations");
  config.train.verbose = flags.GetBool("verbose");
  config.train.meta_lr = static_cast<float>(flags.GetDouble("meta-lr"));
  // Smaller meta-batches give more outer updates per task seen — the right
  // trade at CPU-scale iteration counts (paper: 8 with convergence-scale runs).
  config.train.meta_batch = 4;
  config.lm_pretrain_steps = flags.GetInt("lm-pretrain-steps");
  config.eval_query_size = flags.GetInt("query-size");
  config.train.inner_lr = static_cast<float>(flags.GetDouble("inner-lr"));
  config.train.inner_steps_test = flags.GetInt("inner-steps-test");
  config.train.inner_steps_train = flags.GetInt("inner-steps-train");
  return config;
}

/// Standard preamble: parse flags or exit; returns false if --help was shown.
inline bool ParseOrDie(util::FlagParser* flags, int argc, char** argv) {
  util::Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags->Usage(argv[0]);
    std::exit(1);
  }
  if (flags->help_requested()) return false;
  if (!flags->GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);
  return true;
}

}  // namespace fewner::bench
