// Machine-readable bench output.
//
// Benches print human-oriented tables to stdout; passing `--json <path>`
// additionally writes the same numbers as a JSON document so the perf
// trajectory can accumulate in-repo (BENCH_*.json) and CI can upload the
// file as an artifact.  The writer is deliberately tiny: objects, arrays,
// strings, numbers, bools — everything a bench result needs, nothing more.

#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.h"

namespace fewner::bench {

/// Streaming JSON writer with comma/quote management.  Calls must nest
/// correctly (Begin/End pairs, Key before each value inside an object);
/// misuse shows up as malformed output, not UB.
class JsonWriter {
 public:
  void BeginObject() {
    Prefix();
    out_ << '{';
    stack_.push_back(true);
  }
  void EndObject() {
    out_ << '}';
    stack_.pop_back();
  }
  void BeginArray() {
    Prefix();
    out_ << '[';
    stack_.push_back(true);
  }
  void EndArray() {
    out_ << ']';
    stack_.pop_back();
  }
  void Key(const std::string& name) {
    Prefix();
    Quote(name);
    out_ << ':';
    key_pending_ = true;
  }
  void Value(const std::string& v) {
    Prefix();
    Quote(v);
  }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    Prefix();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.10g", v);
    out_ << buffer;
  }
  void Value(int64_t v) {
    Prefix();
    out_ << v;
  }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(bool v) {
    Prefix();
    out_ << (v ? "true" : "false");
  }

  std::string str() const { return out_.str() + "\n"; }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::ofstream file(path);
    if (!file) return false;
    file << str();
    return file.good();
  }

 private:
  void Prefix() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (!stack_.back()) out_ << ',';
      stack_.back() = false;
    }
  }
  void Quote(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ << buffer;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<bool> stack_;  ///< per open scope: "no element emitted yet"
  bool key_pending_ = false;
};

/// Registers the harness-wide `--json` flag.
inline void AddJsonFlag(util::FlagParser* flags) {
  flags->AddString("json", "",
                   "also write machine-readable results to this path");
}

}  // namespace fewner::bench
