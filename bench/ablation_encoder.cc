// Design-choice ablation (paper §3.2.2): the paper picks CNN-BiGRU-CRF for its
// cost/quality trade-off and notes the approach is model-agnostic.  This bench
// swaps the context encoder (BiGRU vs. BiLSTM) under FEWNER and reports both
// quality and training cost, substantiating the "model-agnostic" claim.
//
//   ./build/bench/ablation_encoder [--episodes N] [--iterations N] ...

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/reporting.h"

using namespace fewner;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("shots", "1", "comma list of K values");
  flags.AddInt("iterations", 50, "training outer iterations");
  flags.AddInt("episodes", 4, "evaluation episodes");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  const auto shots = bench::ParseShots(flags.GetString("shots"));
  eval::Table table({"Encoder", "Shots", "F1", "train seconds"});

  for (int64_t k : shots) {
    for (models::EncoderKind encoder :
         {models::EncoderKind::kBiGru, models::EncoderKind::kBiLstm}) {
      eval::ExperimentConfig config = bench::ConfigFromFlags(flags);
      config.k_shot = k;
      config.backbone.encoder = encoder;
      eval::Scenario scenario = eval::MakeIntraDomainScenario(
          data::kNne, config.data_scale, config.seed);
      eval::ExperimentRunner runner(std::move(scenario), config);
      const auto start = std::chrono::steady_clock::now();
      eval::EvalResult result = runner.Run(eval::MethodId::kFewner);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const std::string name =
          encoder == models::EncoderKind::kBiGru ? "CNN-BiGRU-CRF" : "CNN-BiLSTM-CRF";
      table.AddRow({name, std::to_string(k) + "-shot", eval::FormatCell(result.f1),
                    util::FormatDouble(seconds, 1)});
      std::cout << name << " " << k << "-shot: " << eval::FormatCell(result.f1)
                << " (" << util::FormatDouble(seconds, 1) << "s)" << std::endl;
    }
  }
  std::cout << "\nDesign ablation: context encoder choice under FEWNER\n"
            << table.Render();
  return 0;
}
