// Reproduces §4.5.2 (time-consuming analysis) with google-benchmark: the cost
// of one inner loop during training (second-order graph), a full outer-loop
// update over a meta batch, one test-time inner loop (first-order, φ only),
// evaluating a task, and — for contrast — MAML's full-network test-time inner
// loop.  Also prints |θ| vs |φ| to substantiate the paper's efficiency claim.
//
// Absolute numbers are CPU-bound and differ from the paper's V100; the claims
// that transfer are relative: FEWNER's test-time adaptation updates a small
// set of parameters, needs no second-order computation, and is much cheaper
// per step than MAML's.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "data/datasets.h"
#include "eval/experiment.h"
#include "meta/fewner.h"
#include "meta/maml.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace {

using namespace fewner;  // NOLINT: bench brevity

/// Shared fixture: a small trained-ish world reused across benchmarks.
struct World {
  World() {
    util::SetLogLevel(util::LogLevel::kWarning);
    eval::ExperimentConfig config;
    config.data_scale = 0.02;
    config.eval_episodes = 1;
    // Timing does not need converged models; a couple of outer iterations
    // produce representative graph sizes.
    config.train.iterations = 2;
    eval::Scenario scenario =
        eval::MakeIntraDomainScenario(data::kNne, config.data_scale, 3);
    runner = std::make_unique<eval::ExperimentRunner>(std::move(scenario), config);

    // Build through the runner so vocab sizes are consistent with the corpus.
    auto fewner_generic = runner->CreateTrained(eval::MethodId::kFewner);
    fewner_method.reset(static_cast<meta::Fewner*>(fewner_generic.release()));
    auto maml_generic = runner->CreateTrained(eval::MethodId::kMaml);
    maml_method.reset(static_cast<meta::Maml*>(maml_generic.release()));
    episode_1shot = Encode(1);
    episode_5shot = Encode(5);
  }

  models::EncodedEpisode Encode(int64_t k_shot) {
    data::EpisodeSampler sampler(&runner->scenario().target,
                                 runner->scenario().target_types, 5, k_shot, 4,
                                 777);
    data::Episode episode = sampler.Sample(0);
    if (episode.query.size() > 4) episode.query.resize(4);
    return runner->encoder().Encode(episode);
  }

  std::unique_ptr<eval::ExperimentRunner> runner;
  std::unique_ptr<meta::Fewner> fewner_method;
  std::unique_ptr<meta::Maml> maml_method;
  models::EncodedEpisode episode_1shot;
  models::EncodedEpisode episode_5shot;
};

World& TheWorld() {
  static World world;
  return world;
}

void BM_FewnerInnerLoopTraining(benchmark::State& state) {
  World& world = TheWorld();
  const models::EncodedEpisode& episode =
      state.range(0) == 1 ? world.episode_1shot : world.episode_5shot;
  for (auto _ : state) {
    tensor::Tensor phi = world.fewner_method->AdaptContext(
        episode.support, episode.valid_tags, /*steps=*/1, 0.1f,
        /*create_graph=*/true);
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_FewnerInnerLoopTraining)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_FewnerInnerLoopAdaptation(benchmark::State& state) {
  World& world = TheWorld();
  const models::EncodedEpisode& episode =
      state.range(0) == 1 ? world.episode_1shot : world.episode_5shot;
  for (auto _ : state) {
    tensor::Tensor phi = world.fewner_method->AdaptContext(
        episode.support, episode.valid_tags, /*steps=*/1, 0.1f,
        /*create_graph=*/false);
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_FewnerInnerLoopAdaptation)
    ->Arg(1)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_MamlInnerLoopAdaptation(benchmark::State& state) {
  World& world = TheWorld();
  const models::EncodedEpisode& episode =
      state.range(0) == 1 ? world.episode_1shot : world.episode_5shot;
  for (auto _ : state) {
    auto adapted = world.maml_method->InnerAdapt(episode.support,
                                                 episode.valid_tags,
                                                 /*steps=*/1, 0.1f,
                                                 /*create_graph=*/false);
    benchmark::DoNotOptimize(adapted);
  }
}
BENCHMARK(BM_MamlInnerLoopAdaptation)
    ->Arg(1)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_FewnerEvaluateTask(benchmark::State& state) {
  World& world = TheWorld();
  const models::EncodedEpisode& episode =
      state.range(0) == 1 ? world.episode_1shot : world.episode_5shot;
  for (auto _ : state) {
    auto predictions = world.fewner_method->AdaptAndPredict(episode);
    benchmark::DoNotOptimize(predictions);
  }
}
BENCHMARK(BM_FewnerEvaluateTask)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_FewnerOuterLoopBatch(benchmark::State& state) {
  World& world = TheWorld();
  meta::TrainConfig config;
  config.iterations = 1;
  config.meta_batch = 8;
  for (auto _ : state) {
    world.fewner_method->Train(world.runner->train_sampler(),
                               world.runner->encoder(), config);
  }
}
BENCHMARK(BM_FewnerOuterLoopBatch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  World& world = TheWorld();
  const int64_t theta = world.fewner_method->backbone()->ParameterCount();
  const int64_t phi = world.fewner_method->backbone()->config().context_dim;
  std::cout << "Parameter counts: |theta| = " << theta << ", |phi| = " << phi
            << "  (adaptation updates " << (100.0 * phi / (theta + phi))
            << "% of parameters)\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
