// Intra-op GEMM scaling across thread budgets (DESIGN.md §10).
//
// Times the three dispatched GEMM kernels — NN forward, NT (A·Bᵀ) and
// TN (Aᵀ·B) backward — on paper-scale shapes (the [B·L, dim] blocks a
// hidden-128 backbone pushes through training steps) under increasing
// intra-op budgets, and reports GFLOP/s plus the speedup over the serial
// run at each budget.
//
// Correctness gate: for every shape and every budget, the sharded result
// must be BITWISE-identical (memcmp) to the budget-1 result before that
// cell is timed — a scaling number can never be bought with a determinism
// regression.  On a single-core container the speedups will sit near 1.0x
// (the slab pool has no spare cores); the bitwise gate still verifies the
// dispatch, and multi-core CI measures the real scaling.
//
//   ./gemm_scaling --threads 1,2,4 --min-seconds 0.5 --json out.json

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "tensor/intraop.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace fewner {
namespace {

using Clock = std::chrono::steady_clock;

struct GemmCase {
  const char* op;    // "nn" | "nt" | "tn"
  const char* role;  // which training-step GEMM this shape stands in for
  int64_t m, k, n;
};

// Shapes from a hidden-128, 5-way FEWNER step at B·L = 160 padded tokens:
// encoder input projection [B·L, token] x [token, 3H], its NT/TN backward,
// and the emission head over the [B·L, 2H] encoder output.
constexpr GemmCase kCases[] = {
    {"nn", "encoder input projection", 160, 124, 384},
    {"nt", "d(activations) of the projection", 160, 384, 124},
    {"tn", "d(weights) of the projection", 124, 160, 384},
    {"nn", "emission head", 160, 256, 128},
    {"tn", "d(weights) of the emission head", 256, 160, 128},
};

std::vector<float> RandomVec(int64_t numel, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(numel));
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

void RunCase(const GemmCase& c, const std::vector<float>& a,
             const std::vector<float>& b, std::vector<float>* out) {
  if (std::strcmp(c.op, "nn") == 0) {
    tensor::kernel::GemmNN(a.data(), b.data(), out->data(), c.m, c.k, c.n);
  } else if (std::strcmp(c.op, "nt") == 0) {
    tensor::kernel::GemmNT(a.data(), b.data(), out->data(), c.m, c.k, c.n);
  } else {
    tensor::kernel::GemmTN(a.data(), b.data(), out->data(), c.m, c.k, c.n);
  }
}

/// Repeats `fn` until `min_seconds` elapses; returns iterations per second.
template <typename F>
double MeasureRate(double min_seconds, F fn) {
  fn();  // warm-up: slab pool spin-up, scratch growth
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(iters) / elapsed;
}

int Main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("threads", "1,2,4", "comma list of intra-op budgets");
  flags.AddDouble("min-seconds", 0.5, "minimum measured wall time per cell");
  bench::AddJsonFlag(&flags);
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;

  std::vector<int64_t> budgets;
  for (const std::string& s : util::Split(flags.GetString("threads"), ',')) {
    char* end = nullptr;
    const long long value = std::strtoll(s.c_str(), &end, 10);
    if (s.empty() || *end != '\0' || value < 1) {
      std::cerr << "invalid --threads entry '" << s << "'\n";
      return 1;
    }
    budgets.push_back(value);
  }
  int64_t max_budget = 1;
  for (int64_t t : budgets) max_budget = t > max_budget ? t : max_budget;
  const double min_seconds = flags.GetDouble("min-seconds");

  // Correctness gate: every budget must reproduce the serial result bitwise.
  uint64_t seed = 0x6E44;
  for (const GemmCase& c : kCases) {
    // a is [m, k] for nn/nt ([k, m] for tn); b is [k, n] ([n, k] for nt).
    const std::vector<float> a = RandomVec(c.m * c.k, seed++);
    const std::vector<float> b = RandomVec(c.k * c.n, seed++);
    std::vector<float> reference(static_cast<size_t>(c.m * c.n));
    {
      const tensor::ParallelismBudget serial(1);
      RunCase(c, a, b, &reference);
    }
    for (int64_t t : budgets) {
      const tensor::ParallelismBudget budget(t);
      std::vector<float> sharded(static_cast<size_t>(c.m * c.n));
      RunCase(c, a, b, &sharded);
      if (std::memcmp(reference.data(), sharded.data(),
                      reference.size() * sizeof(float)) != 0) {
        std::cerr << "ERROR: " << c.op << " " << c.m << "x" << c.k << "x"
                  << c.n << " diverges from the serial result at budget " << t
                  << "\n";
        return 1;
      }
    }
  }
  std::printf("parity: all shapes bitwise-equal across budgets\n");

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.Value("gemm_scaling");
  json.Key("max_threads");
  json.Value(max_budget);
  json.Key("results");
  json.BeginArray();

  std::printf("  op     m    k    n  threads   GFLOP/s  speedup\n");
  double speedup_sum_at_max = 0.0;
  double worst_at_max = 1e30;
  for (const GemmCase& c : kCases) {
    const std::vector<float> a = RandomVec(c.m * c.k, seed++);
    const std::vector<float> b = RandomVec(c.k * c.n, seed++);
    std::vector<float> out(static_cast<size_t>(c.m * c.n));
    const double flops = 2.0 * static_cast<double>(c.m) *
                         static_cast<double>(c.k) * static_cast<double>(c.n);
    double serial_rate = 0.0;
    for (int64_t t : budgets) {
      const tensor::ParallelismBudget budget(t);
      const double rate =
          MeasureRate(min_seconds, [&] { RunCase(c, a, b, &out); });
      if (t == 1) serial_rate = rate;
      const double speedup = serial_rate > 0.0 ? rate / serial_rate : 1.0;
      if (t == max_budget) {
        speedup_sum_at_max += speedup;
        worst_at_max = speedup < worst_at_max ? speedup : worst_at_max;
      }
      std::printf("%4s %5lld %4lld %4lld %8lld %9.2f %7.2fx\n", c.op,
                  static_cast<long long>(c.m), static_cast<long long>(c.k),
                  static_cast<long long>(c.n), static_cast<long long>(t),
                  rate * flops * 1e-9, speedup);

      json.BeginObject();
      json.Key("op");
      json.Value(c.op);
      json.Key("role");
      json.Value(c.role);
      json.Key("m");
      json.Value(c.m);
      json.Key("k");
      json.Value(c.k);
      json.Key("n");
      json.Value(c.n);
      json.Key("threads");
      json.Value(t);
      json.Key("gflops");
      json.Value(rate * flops * 1e-9);
      json.Key("speedup_vs_serial");
      json.Value(speedup);
      json.EndObject();
    }
  }
  json.EndArray();
  const double num_cases =
      static_cast<double>(sizeof(kCases) / sizeof(kCases[0]));
  json.Key("mean_speedup_at_max_threads");
  json.Value(speedup_sum_at_max / num_cases);
  json.Key("min_speedup_at_max_threads");
  json.Value(worst_at_max);
  json.EndObject();

  std::printf("speedup at %lld threads: mean %.2fx, min %.2fx\n",
              static_cast<long long>(max_budget),
              speedup_sum_at_max / num_cases, worst_at_max);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::cerr << "ERROR: could not write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fewner

int main(int argc, char** argv) { return fewner::Main(argc, argv); }
