// Reproduces Table 3: cross-domain intra-type adaptation on ACE-2005 —
// BC→UN, BN→CTS and NW→WL, 5-way 1-shot and 5-shot, ten methods.
//
//   ./build/bench/table3_cross_domain [--adaptations BC:UN,BN:CTS,NW:WL] ...

#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "eval/reporting.h"

using namespace fewner;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("shots", "1", "comma list of K values (paper: 1,5)");
  flags.AddString("methods", "FineTune,ProtoNet,MAML,SNAIL,FewNER",
                  "methods to run (paper adds the frozen-LM group: pass "
                  "--methods all)");
  flags.AddString("adaptations", "BC:UN,BN:CTS",
                  "comma list of source:target ACE-2005 domain pairs (paper adds NW:WL)");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  const auto methods = bench::ParseMethods(flags.GetString("methods"));
  const auto shots = bench::ParseShots(flags.GetString("shots"));

  std::map<std::string, std::map<std::string, std::string>> cells;
  std::vector<std::string> columns;

  for (const std::string& pair : util::Split(flags.GetString("adaptations"), ',')) {
    const auto parts = util::Split(pair, ':');
    FEWNER_CHECK(parts.size() == 2, "adaptation '" << pair << "' must be SRC:TGT");
    for (int64_t k : shots) {
      const std::string column =
          parts[0] + "->" + parts[1] + " " + std::to_string(k) + "-shot";
      columns.push_back(column);
      eval::ExperimentConfig config = bench::ConfigFromFlags(flags);
      config.k_shot = k;
      eval::Scenario scenario = eval::MakeCrossDomainIntraType(
          parts[0], parts[1], config.data_scale, config.seed);
      eval::ExperimentRunner runner(std::move(scenario), config);
      for (eval::MethodId id : methods) {
        eval::EvalResult result = runner.Run(id);
        cells[eval::MethodName(id)][column] = eval::FormatCell(result.f1);
        std::cout << "[" << column << "] " << eval::MethodName(id) << ": "
                  << eval::FormatCell(result.f1) << std::endl;
      }
    }
  }

  std::vector<std::string> headers = {"Methods"};
  headers.insert(headers.end(), columns.begin(), columns.end());
  eval::Table table(headers);
  for (eval::MethodId id : methods) {
    std::vector<std::string> row = {eval::MethodName(id)};
    for (const std::string& column : columns) {
      row.push_back(cells[eval::MethodName(id)][column]);
    }
    table.AddRow(std::move(row));
  }
  std::cout << "\nTable 3: cross-domain intra-type adaptation (ACE-2005, 5-way)\n"
            << table.Render();
  return 0;
}
