// Serving throughput of the graph-free inference fast path.
//
// Adapts one FEWNER task, then tags the same query workload three ways:
//
//   graph mode — the pre-existing path: every op allocates a graph node,
//                computes requires_grad, and builds a backward closure that
//                decode immediately throws away.
//   eval mode  — AdaptedTagger::Tag per sentence: ops skip all autodiff
//                bookkeeping and write into arena-recycled buffers
//                (tensor/eval_mode.h).
//   batched    — AdaptedTagger::TagAll: one padded [B, Lmax] eval-mode pass
//                over the whole workload (DESIGN.md §7).
//
// Reports sentences/second for each at several batch sizes plus the
// eval-vs-graph speedup, and verifies eval-mode and graph-mode decoding emit
// identical tag sequences on every sentence — the throughput number is only
// printed if the outputs agree, so a speedup can never be bought with a
// correctness regression.  (TagAll's tags are pinned to the per-sentence
// path's by tests/batch_test.cc.)
//
//   ./inference_throughput --batch-sizes 1,8,32 --min-seconds 1.0
//
// `--json <path>` writes the table for the in-repo perf trajectory
// (BENCH_inference.json) and CI artifacts.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "data/episode_sampler.h"
#include "data/synthetic.h"
#include "meta/adapted_tagger.h"
#include "meta/fewner.h"
#include "tensor/eval_mode.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fewner {
namespace {

using Clock = std::chrono::steady_clock;

/// Runs `tag_batch` until `min_seconds` of wall time has elapsed; returns
/// sentences per second.
template <typename F>
double MeasureThroughput(int64_t batch, double min_seconds, F tag_batch) {
  tag_batch();  // warm-up: one-time allocations and arena growth
  int64_t batches = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    tag_batch();
    ++batches;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(batches * batch) / elapsed;
}

int Main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("batch-sizes", "1,8,32", "comma list of sentences per batch");
  flags.AddInt("sentences", 300, "synthetic corpus size");
  flags.AddInt("hidden-dim", 16, "backbone hidden dimension");
  flags.AddInt("inner-steps", 8, "adaptation gradient steps");
  flags.AddDouble("min-seconds", 1.0, "minimum measured wall time per cell");
  flags.AddInt("seed", 42, "global seed");
  flags.AddBool("verbose", false, "log progress");
  bench::AddJsonFlag(&flags);
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  std::vector<int64_t> batch_sizes;
  for (const std::string& s : util::Split(flags.GetString("batch-sizes"), ',')) {
    char* end = nullptr;
    const long long value = std::strtoll(s.c_str(), &end, 10);
    if (s.empty() || *end != '\0' || value < 1) {
      std::cerr << "invalid --batch-sizes entry '" << s << "'\n";
      return 1;
    }
    batch_sizes.push_back(value);
  }
  int64_t max_batch = 1;
  for (int64_t b : batch_sizes) max_batch = b > max_batch ? b : max_batch;

  data::SyntheticSpec spec;
  spec.name = "serving";
  spec.genre = "newswire";
  spec.num_types = 8;
  spec.num_sentences = flags.GetInt("sentences");
  spec.mentions_per_sentence = 2.0;
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 16;
  config.char_dim = 8;
  config.filters_per_width = 6;
  config.hidden_dim = flags.GetInt("hidden-dim");
  config.max_tags = text::NumTags(3);
  config.context_dim = 8;
  config.dropout = 0.1f;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  // Query pool large enough to fill the biggest batch with distinct sentences.
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, max_batch,
                               spec.seed ^ 0x5E44Eull);

  util::Rng rng(spec.seed);
  meta::Fewner fewner(config, &rng);
  models::EncodedEpisode episode = encoder.Encode(sampler.Sample(0));

  // One adaptation, shared by both modes: the comparison isolates decode cost.
  meta::AdaptedTagger tagger(&fewner, episode);
  models::Backbone* net = fewner.backbone();
  const tensor::Tensor& phi = tagger.phi();

  // Correctness gate: both paths must emit identical tag sequences.
  for (const auto& sentence : episode.query) {
    std::vector<int64_t> graph_tags = net->Decode(sentence, phi, episode.valid_tags);
    if (tagger.Tag(sentence) != graph_tags) {
      std::cerr << "ERROR: eval-mode tags diverge from graph-mode tags\n";
      return 1;
    }
  }

  const double min_seconds = flags.GetDouble("min-seconds");

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.Value("inference_throughput");
  json.Key("hidden_dim");
  json.Value(flags.GetInt("hidden-dim"));
  json.Key("inner_steps");
  json.Value(flags.GetInt("inner-steps"));
  json.Key("results");
  json.BeginArray();

  std::cout << "  batch    graph sent/s     eval sent/s  batched sent/s    speedup\n";
  double worst_speedup = 1e30;
  for (int64_t batch : batch_sizes) {
    std::vector<models::EncodedSentence> workload;
    for (int64_t i = 0; i < batch; ++i) {
      workload.push_back(episode.query[static_cast<size_t>(
          i % static_cast<int64_t>(episode.query.size()))]);
    }
    const double graph_rate = MeasureThroughput(batch, min_seconds, [&] {
      for (const auto& sentence : workload) {
        net->Decode(sentence, phi, episode.valid_tags);
      }
    });
    const double eval_rate = MeasureThroughput(batch, min_seconds, [&] {
      for (const auto& sentence : workload) tagger.Tag(sentence);
    });
    const double batched_rate =
        MeasureThroughput(batch, min_seconds, [&] { tagger.TagAll(workload); });
    const double speedup = eval_rate / graph_rate;
    worst_speedup = speedup < worst_speedup ? speedup : worst_speedup;
    std::printf("%7lld %15.1f %15.1f %15.1f %9.2fx\n",
                static_cast<long long>(batch), graph_rate, eval_rate,
                batched_rate, speedup);

    json.BeginObject();
    json.Key("batch");
    json.Value(batch);
    json.Key("graph_sentences_per_s");
    json.Value(graph_rate);
    json.Key("eval_sentences_per_s");
    json.Value(eval_rate);
    json.Key("batched_sentences_per_s");
    json.Value(batched_rate);
    json.Key("speedup");
    json.Value(speedup);
    json.EndObject();
  }
  json.EndArray();
  json.Key("min_speedup");
  json.Value(worst_speedup);
  json.EndObject();

  const auto& arena = tensor::WorkspaceArena::ThreadLocal();
  std::printf("arena: %zu pooled nodes, %llu reuses / %llu allocations\n",
              arena.pool_size(), static_cast<unsigned long long>(arena.reuse_count()),
              static_cast<unsigned long long>(arena.alloc_count()));
  std::printf("minimum speedup across batch sizes: %.2fx\n", worst_speedup);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::cerr << "ERROR: could not write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fewner

int main(int argc, char** argv) { return fewner::Main(argc, argv); }
