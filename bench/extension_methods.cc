// Extension bench: two meta-learning baselines beyond the paper's table —
// Reptile (first-order initialization learning) and MatchingNet (the metric
// method that introduced N-way K-shot) — against FEWNER, ProtoNet and MAML on
// the NNE intra-domain scenario.  Fills out the optimization-based vs.
// metric-based landscape of the paper's §2.2.
//
//   ./build/bench/extension_methods [--episodes N] [--iterations N] ...

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/reporting.h"
#include "meta/matching_net.h"
#include "meta/reptile.h"

using namespace fewner;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  bench::AddCommonFlags(&flags);
  flags.AddString("shots", "1", "comma list of K values");
  flags.AddInt("iterations", 50, "training outer iterations");
  flags.AddInt("episodes", 4, "evaluation episodes");
  if (!bench::ParseOrDie(&flags, argc, argv)) return 0;

  const auto shots = bench::ParseShots(flags.GetString("shots"));
  eval::Table table({"Method", "Shots", "F1"});

  for (int64_t k : shots) {
    eval::ExperimentConfig config = bench::ConfigFromFlags(flags);
    config.k_shot = k;
    eval::Scenario scenario =
        eval::MakeIntraDomainScenario(data::kNne, config.data_scale, config.seed);
    eval::ExperimentRunner runner(std::move(scenario), config);

    // Paper-table methods through the registry.
    for (eval::MethodId id :
         {eval::MethodId::kProtoNet, eval::MethodId::kMaml, eval::MethodId::kFewner}) {
      eval::EvalResult result = runner.Run(id);
      table.AddRow({result.method, std::to_string(k) + "-shot",
                    eval::FormatCell(result.f1)});
      std::cout << result.method << " " << k << "-shot: "
                << eval::FormatCell(result.f1) << std::endl;
    }

    // Extension methods, trained/evaluated on the identical task lists.
    auto run_extension = [&](std::unique_ptr<meta::FewShotMethod> method) {
      method->Train(runner.train_sampler(), runner.encoder(), config.train);
      eval::EvalResult result =
          eval::EvaluateMethod(method.get(), runner.eval_sampler(), runner.encoder(),
                               config.eval_episodes, config.eval_query_size);
      table.AddRow({result.method, std::to_string(k) + "-shot",
                    eval::FormatCell(result.f1)});
      std::cout << result.method << " " << k << "-shot: "
                << eval::FormatCell(result.f1) << std::endl;
    };
    models::BackboneConfig ext_config = runner.ResolvedBackboneConfig();
    util::Rng reptile_rng(util::Mix64(config.seed ^ util::HashString("Reptile")));
    run_extension(std::make_unique<meta::Reptile>(ext_config, &reptile_rng));
    util::Rng matching_rng(util::Mix64(config.seed ^ util::HashString("MatchingNet")));
    run_extension(std::make_unique<meta::MatchingNet>(ext_config, &matching_rng));
  }
  std::cout << "\nExtension methods vs paper methods (NNE intra-domain)\n"
            << table.Render();
  return 0;
}
