// Meta-batch throughput scaling of the episode-parallel trainer.
//
// Trains the same FEWNER model at several worker counts (see meta/parallel.h)
// and reports tasks/second plus speedup over the serial run.  Because the
// parallel reduction is deterministic, every run must also end at bit-identical
// parameters — the bench verifies that too, so a scaling number can never be
// bought with a correctness regression.
//
//   ./parallel_scaling --threads 1,2,4,8 --iterations 8 --meta-batch 8

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "meta/fewner.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fewner {
namespace {

struct RunResult {
  double seconds = 0.0;
  std::vector<std::vector<float>> params;
};

int Main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("threads", "1,2,4,8", "comma list of worker counts to time");
  flags.AddInt("iterations", 8, "outer-loop iterations per run");
  flags.AddInt("meta-batch", 8, "tasks per outer iteration (paper: 8)");
  flags.AddInt("sentences", 400, "synthetic corpus size");
  flags.AddInt("hidden-dim", 16, "backbone hidden dimension");
  flags.AddInt("seed", 42, "global seed");
  flags.AddBool("verbose", false, "log training progress");
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  data::SyntheticSpec spec;
  spec.name = "scaling";
  spec.genre = "newswire";
  spec.num_types = 8;
  spec.num_sentences = flags.GetInt("sentences");
  spec.mentions_per_sentence = 2.0;
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 16;
  config.char_dim = 8;
  config.filters_per_width = 6;
  config.hidden_dim = flags.GetInt("hidden-dim");
  config.max_tags = text::NumTags(3);
  config.context_dim = 8;
  config.dropout = 0.1f;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, 4,
                               spec.seed ^ 0x5CA11ull);

  meta::TrainConfig train;
  train.iterations = flags.GetInt("iterations");
  train.meta_batch = flags.GetInt("meta-batch");
  train.verbose = flags.GetBool("verbose");
  const int64_t tasks = train.iterations * train.meta_batch;

  std::vector<RunResult> results;
  std::vector<int64_t> thread_counts;
  for (const std::string& s : util::Split(flags.GetString("threads"), ',')) {
    char* end = nullptr;
    const long long value = std::strtoll(s.c_str(), &end, 10);
    if (s.empty() || *end != '\0' || value < 1) {
      std::cerr << "invalid --threads entry '" << s
                << "' (expected a comma list of positive integers)\n";
      return 1;
    }
    thread_counts.push_back(value);
  }
  if (thread_counts.empty()) {
    std::cerr << "--threads is empty\n";
    return 1;
  }

  std::cout << "threads    seconds    tasks/s    speedup    parity\n";
  for (int64_t threads : thread_counts) {
    util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    meta::Fewner fewner(config, &rng);
    meta::TrainConfig run = train;
    run.num_threads = threads;

    const auto start = std::chrono::steady_clock::now();
    fewner.Train(sampler, encoder, run);
    const auto end = std::chrono::steady_clock::now();

    RunResult result;
    result.seconds = std::chrono::duration<double>(end - start).count();
    result.params = nn::SnapshotParameterValues(fewner.backbone());

    const bool parity = results.empty() || result.params == results.front().params;
    const double speedup =
        results.empty() ? 1.0 : results.front().seconds / result.seconds;
    std::printf("%7lld %10.3f %10.1f %9.2fx %9s\n",
                static_cast<long long>(threads), result.seconds,
                static_cast<double>(tasks) / result.seconds, speedup,
                parity ? "exact" : "MISMATCH");
    if (!parity) {
      std::cerr << "ERROR: " << threads
                << "-thread run diverged from the serial parameters\n";
      return 1;
    }
    results.push_back(std::move(result));
  }
  return 0;
}

}  // namespace
}  // namespace fewner

int main(int argc, char** argv) { return fewner::Main(argc, argv); }
