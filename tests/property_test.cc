// Property-based parameterized sweeps (TEST_P) over randomized inputs:
// broadcasting semantics vs. a reference implementation, gradient checks for
// random graphs, CRF invariants across tag-set/length grids, BIO round-trips,
// and episode-sampler guarantees across (N, K) configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "crf/linear_chain_crf.h"
#include "data/episode_sampler.h"
#include "data/synthetic.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/rng.h"

namespace fewner {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------- broadcasting

struct BroadcastCase {
  std::vector<int64_t> a;
  std::vector<int64_t> b;
};

class BroadcastProperty : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastProperty, AddMatchesReferenceLoop) {
  const auto& param = GetParam();
  Shape sa{std::vector<int64_t>(param.a)};
  Shape sb{std::vector<int64_t>(param.b)};
  util::Rng rng(17 + sa.numel() * 31 + sb.numel());
  Tensor a = Tensor::Randn(sa, &rng);
  Tensor b = Tensor::Randn(sb, &rng);
  Tensor out = Add(a, b);

  Shape expected = tensor::Shape::Broadcast(sa, sb).value();
  ASSERT_EQ(out.shape(), expected);
  // Reference: index arithmetic per element.
  const auto out_dims = expected.dims();
  for (int64_t flat = 0; flat < expected.numel(); ++flat) {
    // Decompose flat index into coordinates.
    std::vector<int64_t> coords(out_dims.size());
    int64_t rest = flat;
    for (int64_t d = static_cast<int64_t>(out_dims.size()) - 1; d >= 0; --d) {
      coords[static_cast<size_t>(d)] = rest % out_dims[static_cast<size_t>(d)];
      rest /= out_dims[static_cast<size_t>(d)];
    }
    auto value_of = [&](const Tensor& t) {
      const Shape& shape = t.shape();
      const int64_t offset = expected.rank() - shape.rank();
      int64_t index = 0;
      for (int64_t d = 0; d < shape.rank(); ++d) {
        const int64_t coord =
            shape.dim(d) == 1 ? 0 : coords[static_cast<size_t>(d + offset)];
        index = index * shape.dim(d) + coord;
      }
      return t.at(index);
    };
    EXPECT_NEAR(out.at(flat), value_of(a) + value_of(b), 1e-5) << "flat " << flat;
  }
}

TEST_P(BroadcastProperty, SumToIsAdjointOfBroadcastTo) {
  // <BroadcastTo(x, S), y> == <x, SumTo(y, shape(x))> for all x, y — the
  // defining adjoint identity that makes broadcasting backward correct.
  const auto& param = GetParam();
  Shape small{std::vector<int64_t>(param.b)};
  Shape big = tensor::Shape::Broadcast(Shape{std::vector<int64_t>(param.a)}, small)
                  .value();
  if (!small.BroadcastableTo(big)) GTEST_SKIP();
  util::Rng rng(23);
  Tensor x = Tensor::Randn(small, &rng);
  Tensor y = Tensor::Randn(big, &rng);
  const float lhs = SumAll(Mul(BroadcastTo(x, big), y)).item();
  const float rhs = SumAll(Mul(x, SumTo(y, small))).item();
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastProperty,
    ::testing::Values(BroadcastCase{{3, 4}, {4}}, BroadcastCase{{3, 4}, {3, 1}},
                      BroadcastCase{{2, 3, 4}, {3, 4}},
                      BroadcastCase{{2, 3, 4}, {1, 4}}, BroadcastCase{{5}, {}},
                      BroadcastCase{{2, 1, 4}, {1, 3, 1}},
                      BroadcastCase{{4, 4}, {4, 4}}));

// ---------------------------------------------------------------- grad checks

class RandomGraphGradProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphGradProperty, NumericalGradientAgrees) {
  // Builds a random smooth expression from a fixed op menu and finite-diffs it.
  const int seed = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed));
  Tensor x = Tensor::Randn(Shape{3, 4}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn(Shape{4, 2}, &rng, 0.5f);

  auto loss_fn = [&](const Tensor& input) {
    Tensor h = MatMul(input, w);                     // [3, 2]
    switch (seed % 4) {
      case 0:
        h = Sigmoid(h);
        break;
      case 1:
        h = Tanh(h);
        break;
      case 2:
        h = Exp(MulScalar(h, 0.3f));
        break;
      default:
        h = Mul(h, Sigmoid(h));
        break;
    }
    Tensor pooled = (seed % 2 == 0) ? SumAxis(h, 0, false) : MaxAxis(h, 0, false);
    return SumAll(Square(pooled));
  };

  Tensor loss = loss_fn(x);
  auto grads = tensor::autodiff::Grad(loss, {x});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data(), minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    const float numeric = (loss_fn(Tensor::FromData(x.shape(), plus)).item() -
                           loss_fn(Tensor::FromData(x.shape(), minus)).item()) /
                          (2 * eps);
    EXPECT_NEAR(grads[0].at(i), numeric, 5e-2f) << "seed " << seed << " elt " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGradProperty, ::testing::Range(0, 8));

// ---------------------------------------------------------------- CRF grid

struct CrfCase {
  int64_t num_tags;
  int64_t length;
};

class CrfProperty : public ::testing::TestWithParam<CrfCase> {};

TEST_P(CrfProperty, NllNonNegativeAndViterbiIsModal) {
  const auto& param = GetParam();
  crf::LinearChainCrf crf(param.num_tags);
  util::Rng rng(static_cast<uint64_t>(param.num_tags * 100 + param.length));
  for (tensor::Tensor* p : crf.Parameters()) {
    for (float& v : *p->mutable_data()) v = static_cast<float>(rng.Gaussian(0, 0.5));
  }
  Tensor emissions =
      Tensor::Randn(Shape{param.length, param.num_tags}, &rng, 1.0f);

  std::vector<int64_t> decoded = crf.Viterbi(emissions);
  ASSERT_EQ(static_cast<int64_t>(decoded.size()), param.length);
  const float decoded_nll = crf.NegLogLikelihood(emissions, decoded).item();
  EXPECT_GE(decoded_nll, -1e-3);

  // The Viterbi path's NLL must lower-bound any random path's NLL.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<int64_t> random_path(static_cast<size_t>(param.length));
    for (auto& tag : random_path) {
      tag = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(param.num_tags)));
    }
    const float random_nll = crf.NegLogLikelihood(emissions, random_path).item();
    EXPECT_GE(random_nll, decoded_nll - 1e-3);
  }
}

TEST_P(CrfProperty, ProbabilitiesOfAllPathsSumToOneOnTinyInstances) {
  const auto& param = GetParam();
  if (std::pow(static_cast<double>(param.num_tags), static_cast<double>(param.length)) >
      400.0) {
    GTEST_SKIP() << "enumeration too large";
  }
  crf::LinearChainCrf crf(param.num_tags);
  util::Rng rng(99);
  Tensor emissions =
      Tensor::Randn(Shape{param.length, param.num_tags}, &rng, 1.0f);
  // Enumerate all paths; sum of exp(-NLL) must be 1.
  double total = 0.0;
  std::vector<int64_t> path(static_cast<size_t>(param.length), 0);
  for (;;) {
    total += std::exp(-crf.NegLogLikelihood(emissions, path).item());
    int64_t pos = param.length - 1;
    while (pos >= 0) {
      if (++path[static_cast<size_t>(pos)] < param.num_tags) break;
      path[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Grid, CrfProperty,
                         ::testing::Values(CrfCase{2, 1}, CrfCase{2, 5},
                                           CrfCase{3, 3}, CrfCase{3, 5},
                                           CrfCase{5, 3}, CrfCase{7, 2},
                                           CrfCase{11, 6}));

// ---------------------------------------------------------------- BIO scheme

class BioProperty : public ::testing::TestWithParam<int> {};

TEST_P(BioProperty, SpansToTagsToSpansIsIdentityOnWellFormed) {
  // Random non-overlapping spans survive the round trip exactly.
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const int64_t length = 6 + static_cast<int64_t>(rng.UniformInt(10));
  std::vector<text::Span> spans;
  std::vector<int64_t> slots;
  int64_t cursor = 0;
  while (cursor < length) {
    if (rng.Bernoulli(0.4)) {
      const int64_t width =
          1 + static_cast<int64_t>(rng.UniformInt(3));
      const int64_t end = std::min(length, cursor + width);
      const int64_t slot = static_cast<int64_t>(rng.UniformInt(4));
      spans.push_back(text::Span{cursor, end, std::to_string(slot)});
      slots.push_back(slot);
      cursor = end + 1;  // gap so adjacent spans stay distinguishable
    } else {
      ++cursor;
    }
  }
  auto tags = text::SpansToTags(spans, slots, length);
  auto recovered = text::TagsToSpans(tags);
  ASSERT_EQ(recovered.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(recovered[i].start, spans[i].start);
    EXPECT_EQ(recovered[i].end, spans[i].end);
    EXPECT_EQ(recovered[i].label, std::to_string(slots[i]));
  }
}

TEST_P(BioProperty, TagsToSpansProducesSortedDisjointSpans) {
  // ANY tag sequence (even ill-formed) yields sorted, non-overlapping spans.
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  const int64_t length = 4 + static_cast<int64_t>(rng.UniformInt(12));
  std::vector<int64_t> tags(static_cast<size_t>(length));
  for (auto& tag : tags) {
    tag = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(text::NumTags(3))));
  }
  auto spans = text::TagsToSpans(tags);
  int64_t previous_end = 0;
  for (const auto& span : spans) {
    EXPECT_GE(span.start, previous_end);
    EXPECT_LT(span.start, span.end);
    EXPECT_LE(span.end, length);
    previous_end = span.end;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BioProperty, ::testing::Range(0, 12));

// ---------------------------------------------------------------- sampler grid

struct SamplerCase {
  int64_t n_way;
  int64_t k_shot;
};

class SamplerProperty : public ::testing::TestWithParam<SamplerCase> {
 protected:
  static const data::Corpus& Corpus() {
    static const data::Corpus corpus = [] {
      data::SyntheticSpec spec;
      spec.name = "prop";
      spec.genre = "various";
      spec.num_types = 10;
      spec.num_sentences = 600;
      spec.mentions_per_sentence = 2.5;
      spec.seed = 31;
      spec.type_pool_offset = 7800;
      return data::GenerateCorpus(spec);
    }();
    return corpus;
  }
};

TEST_P(SamplerProperty, EveryEpisodeSatisfiesNWayKShot) {
  const auto& param = GetParam();
  data::EpisodeSampler sampler(&Corpus(), Corpus().entity_types, param.n_way,
                               param.k_shot, 4, 123);
  for (uint64_t id = 0; id < 5; ++id) {
    data::Episode episode = sampler.Sample(id);
    EXPECT_EQ(episode.n_way(), param.n_way);
    std::map<std::string, int64_t> counts;
    for (const data::Sentence* sentence : episode.support) {
      for (const auto& entity : sentence->entities) counts[entity.label] += 1;
    }
    for (const auto& way : episode.types) {
      EXPECT_GE(counts[way], param.k_shot);
    }
    // Minimality: some way must drop below K when any sentence is removed.
    for (size_t drop = 0; drop < episode.support.size(); ++drop) {
      std::map<std::string, int64_t> without;
      for (size_t i = 0; i < episode.support.size(); ++i) {
        if (i == drop) continue;
        for (const auto& entity : episode.support[i]->entities) {
          without[entity.label] += 1;
        }
      }
      bool below = false;
      for (const auto& way : episode.types) {
        below = below || without[way] < param.k_shot;
      }
      EXPECT_TRUE(below);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SamplerProperty,
                         ::testing::Values(SamplerCase{2, 1}, SamplerCase{3, 1},
                                           SamplerCase{5, 1}, SamplerCase{5, 2},
                                           SamplerCase{3, 5}, SamplerCase{5, 5},
                                           SamplerCase{7, 1}, SamplerCase{10, 1}));

}  // namespace
}  // namespace fewner
