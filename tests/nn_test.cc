// Tests for the neural-net layer library: module registration, parameter
// patching, layer forwards (with finite-difference gradient checks through
// composite layers), and optimizers.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/char_cnn.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"

namespace fewner::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::autodiff::Grad;

TEST(ModuleTest, RegistersParametersHierarchically) {
  util::Rng rng(1);
  Linear inner(3, 2, &rng);
  EXPECT_EQ(inner.Parameters().size(), 2u);  // weight + bias
  EXPECT_EQ(inner.ParameterCount(), 3 * 2 + 2);

  auto named = inner.NamedParameters();
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, TrainingFlagPropagates) {
  util::Rng rng(1);
  BiGru gru(4, 3, &rng);
  gru.SetTraining(false);
  EXPECT_FALSE(gru.training());
}

TEST(ModuleTest, CopyParametersFrom) {
  util::Rng rng(1), rng2(2);
  Linear a(3, 2, &rng), b(3, 2, &rng2);
  EXPECT_NE(a.Parameters()[0]->at(0), b.Parameters()[0]->at(0));
  a.CopyParametersFrom(&b);
  EXPECT_FLOAT_EQ(a.Parameters()[0]->at(0), b.Parameters()[0]->at(0));
}

TEST(ParameterPatchTest, ReplacesAndRestores) {
  util::Rng rng(1);
  Linear layer(2, 2, &rng);
  Tensor* weight_slot = layer.Parameters()[0];
  const float original = weight_slot->at(0);
  {
    std::vector<Tensor> replacement = {Tensor::Full(Shape{2, 2}, 9.0f),
                                       Tensor::Zeros(Shape{2})};
    ParameterPatch patch(layer.Parameters(), replacement);
    EXPECT_FLOAT_EQ(layer.Parameters()[0]->at(0), 9.0f);
    Tensor out = layer.Forward(Tensor::Ones(Shape{1, 2}));
    EXPECT_FLOAT_EQ(out.at(0), 18.0f);
  }
  EXPECT_FLOAT_EQ(layer.Parameters()[0]->at(0), original);
}

TEST(ParameterValuesTest, SnapshotRestoreRoundTrip) {
  util::Rng rng(1);
  Linear layer(2, 2, &rng);
  auto snapshot = SnapshotParameterValues(&layer);
  (*layer.Parameters()[0]->mutable_data())[0] += 5.0f;
  RestoreParameterValues(&layer, snapshot);
  EXPECT_FLOAT_EQ(layer.Parameters()[0]->at(0), snapshot[0][0]);
}

TEST(LinearTest, ForwardMatchesManual) {
  util::Rng rng(3);
  Linear layer(2, 1, &rng);
  std::vector<float>* w = layer.Parameters()[0]->mutable_data();
  (*w)[0] = 2.0f;
  (*w)[1] = -1.0f;
  (*layer.Parameters()[1]->mutable_data())[0] = 0.5f;
  Tensor out = layer.Forward(Tensor::FromData(Shape{1, 2}, {3.0f, 4.0f}));
  EXPECT_FLOAT_EQ(out.at(0), 3.0f * 2.0f + 4.0f * (-1.0f) + 0.5f);
}

TEST(LinearTest, GradFlowsToWeights) {
  util::Rng rng(3);
  Linear layer(3, 2, &rng);
  Tensor x = Tensor::Ones(Shape{2, 3});
  Tensor loss = tensor::SumAll(tensor::Square(layer.Forward(x)));
  auto grads = Grad(loss, ParameterTensors(&layer));
  EXPECT_EQ(grads.size(), 2u);
  double norm = 0;
  for (float v : grads[0].data()) norm += std::abs(v);
  EXPECT_GT(norm, 0.0);
}

TEST(EmbeddingTest, LookupAndPretrained) {
  util::Rng rng(5);
  Embedding embedding(4, 3, &rng);
  embedding.LoadPretrained({{0, 0, 0}, {1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Tensor out = embedding.Forward({2, 0, 2});
  EXPECT_EQ(out.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(out.at(0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(3), 0.0f);
  EXPECT_FLOAT_EQ(out.at(8), 6.0f);
}

TEST(EmbeddingTest, GradAccumulatesOnRepeatedIds) {
  util::Rng rng(5);
  Embedding embedding(3, 2, &rng);
  Tensor out = embedding.Forward({1, 1});
  auto grads = Grad(tensor::SumAll(out), ParameterTensors(&embedding));
  EXPECT_FLOAT_EQ(grads[0].at(2), 2.0f);  // row 1 selected twice
  EXPECT_FLOAT_EQ(grads[0].at(0), 0.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm(4);
  Tensor x = Tensor::FromData(Shape{2, 4}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor out = norm.Forward(x);
  // First row: mean 2.5 removed, unit variance.
  double mean = 0;
  for (int i = 0; i < 4; ++i) mean += out.at(i);
  EXPECT_NEAR(mean, 0.0, 1e-4);
  // Constant row stays ~0 (variance eps guard, no NaN).
  EXPECT_NEAR(out.at(4), 0.0f, 1e-2);
  EXPECT_FALSE(std::isnan(out.at(4)));
}

TEST(FilmTest, ZeroContextIsIdentity) {
  util::Rng rng(7);
  FilmGenerator film(4, 3, &rng);
  Tensor h = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor out = film.Forward(h, Tensor::Zeros(Shape{4}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_NEAR(out.at(i), h.at(i), 1e-6);
}

TEST(FilmTest, NonZeroContextModulates) {
  util::Rng rng(7);
  FilmGenerator film(4, 3, &rng);
  Tensor h = Tensor::Ones(Shape{2, 3});
  Tensor out = film.Forward(h, Tensor::Ones(Shape{4}));
  bool changed = false;
  for (int64_t i = 0; i < 6; ++i) changed = changed || std::abs(out.at(i) - 1.0f) > 1e-4;
  EXPECT_TRUE(changed);
}

TEST(FilmTest, GradReachesContext) {
  util::Rng rng(7);
  FilmGenerator film(4, 3, &rng);
  Tensor h = Tensor::Ones(Shape{2, 3});
  Tensor phi = Tensor::Zeros(Shape{4}, /*requires_grad=*/true);
  Tensor loss = tensor::SumAll(tensor::Square(film.Forward(h, phi)));
  auto g = Grad(loss, {phi});
  double norm = 0;
  for (float v : g[0].data()) norm += std::abs(v);
  EXPECT_GT(norm, 0.0);
}

TEST(CharCnnTest, ShapesAndShortWordPadding) {
  util::Rng rng(9);
  CharCnnConfig config;
  config.char_vocab_size = 20;
  config.char_dim = 6;
  config.filter_widths = {2, 3};
  config.filters_per_width = 4;
  CharCnn cnn(config, &rng);
  EXPECT_EQ(cnn.output_dim(), 8);
  // Words shorter than the widest filter must still encode (padding).
  Tensor out = cnn.Forward({{5}, {3, 4, 5, 6, 7}, {2, 2}});
  EXPECT_EQ(out.shape(), (Shape{3, 8}));
}

TEST(CharCnnTest, SuffixSensitivity) {
  // Two words sharing a suffix should be closer in CNN space than unrelated
  // words, since max-pooled filters fire on the shared window.
  util::Rng rng(11);
  CharCnnConfig config;
  config.char_vocab_size = 30;
  config.char_dim = 8;
  config.filters_per_width = 8;
  CharCnn cnn(config, &rng);
  auto encode = [&](std::vector<int64_t> word) {
    return cnn.Forward({std::move(word)});
  };
  Tensor a = encode({4, 5, 10, 11, 12});   // stem A + suffix
  Tensor b = encode({7, 8, 10, 11, 12});   // stem B + same suffix
  Tensor c = encode({14, 15, 16, 17, 18});  // unrelated
  auto dist = [&](const Tensor& x, const Tensor& y) {
    double d = 0;
    for (int64_t i = 0; i < x.numel(); ++i) {
      d += (x.at(i) - y.at(i)) * (x.at(i) - y.at(i));
    }
    return d;
  };
  EXPECT_LT(dist(a, b), dist(a, c));
}

TEST(GruTest, ShapesAndStatePropagation) {
  util::Rng rng(13);
  GruCell cell(4, 3, &rng);
  Tensor x = Tensor::Ones(Shape{5, 4});
  Tensor projected = cell.ProjectInput(x);
  EXPECT_EQ(projected.shape(), (Shape{5, 9}));
  Tensor h = Tensor::Zeros(Shape{1, 3});
  Tensor h1 = cell.Step(tensor::Slice(projected, 0, 0, 1), h);
  EXPECT_EQ(h1.shape(), (Shape{1, 3}));
  // State must change from zero on non-trivial input.
  double norm = 0;
  for (float v : h1.data()) norm += std::abs(v);
  EXPECT_GT(norm, 1e-4);
}

TEST(BiGruTest, OutputShapeAndDirectionality) {
  util::Rng rng(15);
  BiGru gru(3, 4, &rng);
  Tensor x = Tensor::Randn(Shape{6, 3}, &rng);
  Tensor out = gru.Forward(x);
  EXPECT_EQ(out.shape(), (Shape{6, 8}));

  // Changing the LAST token must change the backward features of the FIRST
  // token (information flows right-to-left) but not its forward features.
  std::vector<float> perturbed = x.data();
  perturbed[15] += 1.0f;  // last row, first feature
  Tensor out2 = gru.Forward(Tensor::FromData(Shape{6, 3}, perturbed));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(j), out2.at(j)) << "forward feature " << j;
  }
  double backward_delta = 0;
  for (int64_t j = 4; j < 8; ++j) backward_delta += std::abs(out.at(j) - out2.at(j));
  EXPECT_GT(backward_delta, 1e-5);
}

TEST(BiGruTest, GradCheckThroughTime) {
  util::Rng rng(17);
  BiGru gru(2, 2, &rng);
  Tensor x = Tensor::Randn(Shape{3, 2}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor loss = tensor::SumAll(tensor::Square(gru.Forward(x)));
  auto g = Grad(loss, {x});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data(), minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    const float lp = tensor::SumAll(tensor::Square(gru.Forward(
                                        Tensor::FromData(x.shape(), plus))))
                         .item();
    const float lm = tensor::SumAll(tensor::Square(gru.Forward(
                                        Tensor::FromData(x.shape(), minus))))
                         .item();
    EXPECT_NEAR(g[0].at(i), (lp - lm) / (2 * eps), 5e-2) << "element " << i;
  }
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  util::Rng rng(19);
  SelfAttention attention(4, AttentionMask::kCausal, &rng);
  Tensor x = Tensor::Randn(Shape{5, 4}, &rng);
  Tensor out = attention.Forward(x);
  // Perturbing the last token must not change the first token's output.
  std::vector<float> perturbed = x.data();
  perturbed[16] += 2.0f;
  Tensor out2 = attention.Forward(Tensor::FromData(Shape{5, 4}, perturbed));
  for (int64_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(out.at(j), out2.at(j));
}

TEST(AttentionTest, BidirectionalSeesFuture) {
  util::Rng rng(19);
  SelfAttention attention(4, AttentionMask::kNone, &rng);
  Tensor x = Tensor::Randn(Shape{5, 4}, &rng);
  Tensor out = attention.Forward(x);
  std::vector<float> perturbed = x.data();
  perturbed[16] += 2.0f;
  Tensor out2 = attention.Forward(Tensor::FromData(Shape{5, 4}, perturbed));
  double delta = 0;
  for (int64_t j = 0; j < 4; ++j) delta += std::abs(out.at(j) - out2.at(j));
  EXPECT_GT(delta, 1e-6);
}

TEST(TransformerBlockTest, ShapePreservingAndDifferentiable) {
  util::Rng rng(21);
  TransformerBlock block(4, 8, AttentionMask::kCausal, &rng);
  Tensor x = Tensor::Randn(Shape{3, 4}, &rng, 1.0f, true);
  Tensor out = block.Forward(x);
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  auto g = Grad(tensor::SumAll(tensor::Square(out)), {x});
  EXPECT_EQ(g[0].shape(), x.shape());
}

TEST(DilatedCausalConvTest, CausalityAndGrowth) {
  util::Rng rng(23);
  DilatedCausalConv conv(3, 2, 2, &rng);
  Tensor x = Tensor::Randn(Shape{5, 3}, &rng);
  Tensor out = conv.Forward(x);
  EXPECT_EQ(out.shape(), (Shape{5, 5}));
  // Perturb the last position: outputs at position 0 must not change.
  std::vector<float> perturbed = x.data();
  perturbed[12] += 1.0f;
  Tensor out2 = conv.Forward(Tensor::FromData(Shape{5, 3}, perturbed));
  for (int64_t j = 0; j < 5; ++j) EXPECT_FLOAT_EQ(out.at(j), out2.at(j));
}

TEST(OptimTest, ClipGradNorm) {
  std::vector<Tensor> grads = {Tensor::Full(Shape{4}, 3.0f)};  // norm 6
  float norm = ClipGradNorm(&grads, 3.0f);
  EXPECT_NEAR(norm, 6.0f, 1e-4);
  double new_norm = 0;
  for (float v : grads[0].data()) new_norm += v * v;
  EXPECT_NEAR(std::sqrt(new_norm), 3.0f, 1e-3);

  std::vector<Tensor> small = {Tensor::Full(Shape{4}, 0.1f)};
  ClipGradNorm(&small, 3.0f);
  EXPECT_FLOAT_EQ(small[0].at(0), 0.1f);  // untouched below the cap
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  Tensor w = Tensor::FromData(Shape{2}, {5.0f, -3.0f}, true);
  Sgd sgd({&w}, 0.2f);
  for (int step = 0; step < 60; ++step) {
    Tensor loss = tensor::SumAll(tensor::Square(w));
    sgd.Step(Grad(loss, {w}));
  }
  EXPECT_NEAR(w.at(0), 0.0f, 1e-3);
  EXPECT_NEAR(w.at(1), 0.0f, 1e-3);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  Tensor w = Tensor::FromData(Shape{2}, {5.0f, -3.0f}, true);
  Adam adam({&w}, 0.3f);
  for (int step = 0; step < 200; ++step) {
    Tensor loss = tensor::SumAll(tensor::Square(w));
    adam.Step(Grad(loss, {w}));
  }
  EXPECT_NEAR(w.at(0), 0.0f, 1e-2);
  EXPECT_NEAR(w.at(1), 0.0f, 1e-2);
}

TEST(OptimTest, AdamLrDecay) {
  Tensor w = Tensor::Zeros(Shape{1}, true);
  Adam adam({&w}, 1.0f);
  adam.DecayLr(0.9f);
  EXPECT_NEAR(adam.lr(), 0.9f, 1e-6);
}

TEST(OptimTest, WeightDecayShrinksParameters) {
  Tensor w = Tensor::FromData(Shape{1}, {10.0f}, true);
  Sgd sgd({&w}, 0.1f, /*weight_decay=*/0.5f);
  sgd.Step({Tensor::Zeros(Shape{1})});
  EXPECT_LT(w.at(0), 10.0f);
}

}  // namespace
}  // namespace fewner::nn

// Serialization tests live here since they operate on Module parameters.
#include <cstdio>
#include <fstream>

#include "nn/serialization.h"

namespace fewner::nn {
namespace {

TEST(SerializationTest, SaveLoadRoundTrip) {
  util::Rng rng(1), rng2(2);
  BiGru a(4, 3, &rng);
  BiGru b(4, 3, &rng2);
  const std::string path = ::testing::TempDir() + "/fewner_ckpt.bin";
  ASSERT_TRUE(SaveParameters(&a, path).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->data(), pb[i]->data()) << "slot " << i;
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchIsRejected) {
  util::Rng rng(1);
  Linear a(3, 2, &rng);
  Linear b(3, 4, &rng);
  const std::string path = ::testing::TempDir() + "/fewner_bad.bin";
  ASSERT_TRUE(SaveParameters(&a, path).ok());
  EXPECT_FALSE(LoadParameters(&b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  util::Rng rng(1);
  Linear a(2, 2, &rng);
  util::Status status = LoadParameters(&a, "/nonexistent/fewner.bin");
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(SerializationTest, GarbageFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/fewner_garbage.bin";
  { std::ofstream out(path); out << "this is not a checkpoint"; }
  util::Rng rng(1);
  Linear a(2, 2, &rng);
  EXPECT_FALSE(LoadParameters(&a, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fewner::nn
