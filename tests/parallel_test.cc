// Serial-vs-parallel correctness suite for episode-parallel meta-batch
// training (meta/parallel.h).  The determinism contract under test: training
// any method with 1, 2, or 8 worker threads produces BIT-IDENTICAL parameters
// — the parallel path is the serial path, only faster.  Also checks that the
// parallel second-order meta-gradient is a real gradient (finite differences)
// and that the double-precision reduction buffers match bitwise.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>

#include "data/synthetic.h"
#include "meta/fewner.h"
#include "meta/finetune.h"
#include "meta/grad_accumulator.h"
#include "meta/maml.h"
#include "meta/matching_net.h"
#include "meta/parallel.h"
#include "meta/protonet.h"
#include "meta/reptile.h"
#include "meta/snail.h"
#include "tensor/autodiff.h"
#include "tensor/intraop.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/thread_pool.h"

namespace fewner::meta {
namespace {

using tensor::Tensor;

/// Same tiny world as MetaTest, but meta_batch 8 so a parallel run actually
/// spreads tasks across workers.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.name = "tiny";
    spec.genre = "newswire";
    spec.num_types = 8;
    spec.num_sentences = 260;
    spec.mentions_per_sentence = 2.0;
    spec.seed = 3;
    spec.type_pool_offset = 7500;
    corpus_ = data::GenerateCorpus(spec);

    text::VocabBuilder builder;
    for (const auto& sentence : corpus_.sentences) builder.AddSentence(sentence.tokens);
    words_ = builder.BuildWordVocab();
    chars_ = builder.BuildCharVocab();

    config_.word_vocab_size = words_.size();
    config_.char_vocab_size = chars_.size();
    config_.word_dim = 10;
    config_.char_dim = 6;
    config_.filters_per_width = 4;
    config_.hidden_dim = 10;
    config_.max_tags = text::NumTags(3);
    config_.context_dim = 8;
    // Dropout ON: the parity contract must hold for stochastic forward passes
    // too (per-task dropout streams are re-forked from the episode id).
    config_.dropout = 0.1f;

    encoder_ = std::make_unique<models::EpisodeEncoder>(&words_, &chars_,
                                                        config_.max_tags);
    sampler_ = std::make_unique<data::EpisodeSampler>(
        &corpus_, corpus_.entity_types, 3, 1, 4, 17);

    train_config_.iterations = 2;
    train_config_.meta_batch = 8;
    train_config_.train_query_size = 2;
  }

  /// `run(threads)` trains a fresh identically-seeded method with `threads`
  /// workers and returns its final parameter values.  All three thread counts
  /// must produce exactly equal floats (0 ULP).
  void CheckThreadCountParity(
      const std::function<std::vector<std::vector<float>>(int64_t)>& run) {
    const std::vector<std::vector<float>> serial = run(1);
    const std::vector<std::vector<float>> two = run(2);
    const std::vector<std::vector<float>> eight = run(8);
    ASSERT_EQ(serial.size(), two.size());
    ASSERT_EQ(serial.size(), eight.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], two[i]) << "slot " << i << " differs at 2 threads";
      EXPECT_EQ(serial[i], eight[i]) << "slot " << i << " differs at 8 threads";
    }
  }

  TrainConfig WithThreads(int64_t threads) const {
    TrainConfig config = train_config_;
    config.num_threads = threads;
    return config;
  }

  data::Corpus corpus_;
  text::Vocab words_, chars_;
  models::BackboneConfig config_;
  std::unique_ptr<models::EpisodeEncoder> encoder_;
  std::unique_ptr<data::EpisodeSampler> sampler_;
  TrainConfig train_config_;
};

// --------------------------------------------- per-method gradient parity

TEST_F(ParallelTest, FewnerParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    Fewner method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.backbone());
  });
}

TEST_F(ParallelTest, MamlParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    Maml method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.backbone());
  });
}

TEST_F(ParallelTest, FirstOrderMamlParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    Maml method(config_, &rng);
    TrainConfig config = WithThreads(threads);
    config.first_order = true;
    method.Train(*sampler_, *encoder_, config);
    return nn::SnapshotParameterValues(method.backbone());
  });
}

TEST_F(ParallelTest, ReptileParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    Reptile method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.backbone());
  });
}

TEST_F(ParallelTest, ProtoNetParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    ProtoNet method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.backbone());
  });
}

TEST_F(ParallelTest, MatchingNetParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    MatchingNet method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.backbone());
  });
}

TEST_F(ParallelTest, SnailParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    Snail method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.model());
  });
}

TEST_F(ParallelTest, FineTuneParityAcrossThreadCounts) {
  CheckThreadCountParity([&](int64_t threads) {
    util::Rng rng(1);
    FineTune method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(threads));
    return nn::SnapshotParameterValues(method.backbone());
  });
}

// ------------------------------------------------ reduction-level parity

TEST_F(ParallelTest, AccumulatorBuffersBitIdenticalAcrossThreadCounts) {
  // Compare the raw double reduction buffers (pre-scaling) across thread
  // counts, not just the final parameters: this pins down WHERE determinism
  // lives — in the ordered double-precision Add sequence.
  models::BackboneConfig plain = config_;
  plain.conditioning = models::Conditioning::kNone;
  plain.context_dim = 0;
  const int64_t kTasks = 8;
  auto run = [&](int64_t threads) {
    util::Rng rng(7);
    models::Backbone master(plain, &rng);
    master.SetTraining(true);
    ParallelMetaBatch batch = BackboneMetaBatch(threads, &master);
    GradAccumulator accumulator(nn::ParameterTensors(&master));
    const double loss_sum = batch.Run(
        kTasks,
        [&](int64_t t, nn::Module* model,
            const std::vector<Tensor>& replica_params,
            std::vector<Tensor>* grads) -> double {
          auto* net = static_cast<models::Backbone*>(model);
          models::EncodedEpisode enc = PrepareTrainingTask(
              *sampler_, *encoder_, train_config_, static_cast<uint64_t>(t), net);
          Tensor loss = net->BatchLoss(enc.support, Tensor(), enc.valid_tags);
          *grads = tensor::autodiff::Grad(loss, replica_params);
          return loss.item();
        },
        &accumulator);
    return std::make_pair(accumulator.buffers(), loss_sum);
  };
  const auto serial = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  EXPECT_EQ(serial.first, two.first);
  EXPECT_EQ(serial.first, eight.first);
  EXPECT_EQ(serial.second, two.second);
  EXPECT_EQ(serial.second, eight.second);
  // And the buffers are not trivially zero.
  double magnitude = 0.0;
  for (const auto& buffer : serial.first) {
    for (double v : buffer) magnitude += std::abs(v);
  }
  EXPECT_GT(magnitude, 1e-6);
}

// ------------------------------------- second-order gradient, threaded

TEST_F(ParallelTest, SecondOrderMetaGradientMatchesFiniteDifferenceThreaded) {
  // The FEWNER meta-gradient differentiates the query loss through the inner
  // φ updates (create_graph).  Computed on 8 worker replicas and reduced, it
  // must still be the true gradient of the (serially evaluated) meta-loss:
  // the directional derivative along the normalized meta-gradient equals its
  // norm.  Dropout off so the objective is deterministic and smooth.
  models::BackboneConfig smooth = config_;
  smooth.dropout = 0.0f;
  util::Rng rng(3);
  Fewner fewner(smooth, &rng);
  models::Backbone* master = fewner.backbone();
  master->SetTraining(true);

  const int64_t kSteps = 2;
  const float kInnerLr = 0.05f;
  TrainConfig bounds = train_config_;
  // Small support sets keep the summed support loss's φ-gradient below the
  // clip threshold (the clip factor is intentionally detached from the graph,
  // so a clipping task would perturb the finite-difference comparison).
  bounds.train_support_cap = 2;

  // Select tasks that sit safely on the clip-inactive branch.
  std::vector<uint64_t> tasks;
  for (uint64_t candidate = 0; candidate < 16 && tasks.size() < 4; ++candidate) {
    models::EncodedEpisode enc = PrepareTrainingTask(*sampler_, *encoder_,
                                                     bounds, candidate, master);
    Tensor phi = master->ZeroContext();
    Tensor loss = master->BatchLoss(enc.support, phi, enc.valid_tags);
    Tensor grad = tensor::autodiff::Grad(loss, {phi})[0];
    double norm_sq = 0.0;
    for (float v : grad.data()) norm_sq += static_cast<double>(v) * v;
    if (std::sqrt(norm_sq) < 4.0) tasks.push_back(candidate);
  }
  ASSERT_GE(tasks.size(), 2u) << "not enough clip-inactive tasks at this seed";
  const auto num_tasks = static_cast<double>(tasks.size());

  auto meta_loss = [&]() -> double {
    double total = 0.0;
    for (uint64_t task : tasks) {
      models::EncodedEpisode enc =
          PrepareTrainingTask(*sampler_, *encoder_, bounds, task, master);
      Tensor phi =
          Fewner::AdaptContextOn(*master, enc.support, enc.valid_tags, kSteps,
                                 kInnerLr, /*create_graph=*/false);
      total += master->BatchLoss(enc.query, phi, enc.valid_tags).item();
    }
    return total / num_tasks;
  };

  // Meta-gradient via the 8-thread parallel path.
  ParallelMetaBatch batch = BackboneMetaBatch(8, master);
  GradAccumulator accumulator(nn::ParameterTensors(master));
  batch.Run(
      static_cast<int64_t>(tasks.size()),
      [&](int64_t t, nn::Module* model,
          const std::vector<Tensor>& replica_params,
          std::vector<Tensor>* grads) -> double {
        auto* net = static_cast<models::Backbone*>(model);
        models::EncodedEpisode enc = PrepareTrainingTask(
            *sampler_, *encoder_, bounds, tasks[static_cast<size_t>(t)], net);
        Tensor phi =
            Fewner::AdaptContextOn(*net, enc.support, enc.valid_tags, kSteps,
                                   kInnerLr, /*create_graph=*/true);
        Tensor loss = net->BatchLoss(enc.query, phi, enc.valid_tags);
        *grads = tensor::autodiff::Grad(loss, replica_params);
        return loss.item();
      },
      &accumulator);
  std::vector<Tensor> grad = accumulator.Finish(1.0 / num_tasks);

  double norm_sq = 0.0;
  for (const Tensor& g : grad) {
    for (float v : g.data()) norm_sq += static_cast<double>(v) * v;
  }
  const double norm = std::sqrt(norm_sq);
  ASSERT_GT(norm, 1e-5);

  // Central difference along d = g / ‖g‖: (L(θ+hd) − L(θ−hd)) / 2h ≈ ‖g‖.
  std::vector<Tensor*> slots = master->Parameters();
  auto shift = [&](double step) {
    for (size_t i = 0; i < slots.size(); ++i) {
      std::vector<float>* values = slots[i]->mutable_data();
      const auto& g = grad[i].data();
      for (size_t j = 0; j < values->size(); ++j) {
        (*values)[j] += static_cast<float>(step * g[j] / norm);
      }
    }
  };
  const double h = 5e-3;
  shift(+h);
  const double up = meta_loss();
  shift(-2.0 * h);
  const double down = meta_loss();
  shift(+h);  // restore θ

  const double fd = (up - down) / (2.0 * h);
  EXPECT_NEAR(fd, norm, 0.08 * norm + 1e-4)
      << "parallel second-order meta-gradient disagrees with finite "
         "differences";
}

// ------------------------------------------------- thread-count plumbing

TEST_F(ParallelTest, ResolveThreadCountHonorsRequestAndEnvironment) {
  EXPECT_EQ(ParallelMetaBatch::ResolveThreadCount(3), 3);
  EXPECT_EQ(ParallelMetaBatch::ResolveThreadCount(1), 1);

  unsetenv("FEWNER_THREADS");
  EXPECT_EQ(ParallelMetaBatch::ResolveThreadCount(0), 1);
  setenv("FEWNER_THREADS", "5", 1);
  EXPECT_EQ(ParallelMetaBatch::ResolveThreadCount(0), 5);
  setenv("FEWNER_THREADS", "0", 1);
  EXPECT_GE(ParallelMetaBatch::ResolveThreadCount(0), 1);  // all hardware threads
  setenv("FEWNER_THREADS", "not-a-number", 1);
  EXPECT_EQ(ParallelMetaBatch::ResolveThreadCount(0), 1);
  unsetenv("FEWNER_THREADS");
}

TEST_F(ParallelTest, TrainingBitwiseInvariantUnderAmbientIntraOpBudget) {
  // Nesting contract (tensor/intraop.h): pooled episode workers pin their
  // GEMMs to a serial intra-op budget, and whatever ambient budget surrounds
  // Train() must never change trained parameters.  Serial trainer under
  // budgets 1 and 4, and a 2-worker trainer nested under an ambient budget of
  // 4, must all land on bit-identical floats.  Under -DFEWNER_SANITIZE=thread
  // this also exercises episode workers coexisting with the intra-op slab
  // pool in one process.
  auto run = [&](int64_t workers, int64_t intraop) {
    tensor::ParallelismBudget budget(intraop);
    util::Rng rng(1);
    Fewner method(config_, &rng);
    method.Train(*sampler_, *encoder_, WithThreads(workers));
    return nn::SnapshotParameterValues(method.backbone());
  };
  const std::vector<std::vector<float>> reference = run(1, 1);
  EXPECT_EQ(reference, run(1, 4)) << "serial trainer under ambient budget 4";
  EXPECT_EQ(reference, run(2, 4)) << "2 workers nested under ambient budget 4";
}

TEST_F(ParallelTest, MoreWorkersThanTasksIsSafe) {
  // 8 threads, 2 tasks: the pool must not deadlock or touch unused replicas.
  util::Rng rng(1);
  Fewner method(config_, &rng);
  TrainConfig config = WithThreads(8);
  config.meta_batch = 2;
  method.Train(*sampler_, *encoder_, config);

  util::Rng serial_rng(1);
  Fewner serial(config_, &serial_rng);
  TrainConfig serial_config = config;
  serial_config.num_threads = 1;
  serial.Train(*sampler_, *encoder_, serial_config);

  const auto a = nn::SnapshotParameterValues(method.backbone());
  const auto b = nn::SnapshotParameterValues(serial.backbone());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace fewner::meta
