// Edge-case robustness tests across subsystems: degenerate shapes, minimal
// configurations, boundary conditions and failure paths that the main suites
// do not exercise.

#include <gtest/gtest.h>

#include <cmath>

#include "crf/linear_chain_crf.h"
#include "data/episode_sampler.h"
#include "data/synthetic.h"
#include "meta/grad_accumulator.h"
#include "models/backbone.h"
#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "text/hash_embeddings.h"
#include "util/flags.h"
#include "util/status.h"

namespace fewner {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ------------------------------------------------------------------ tensors

TEST(TensorEdgeTest, RankZeroArithmetic) {
  Tensor a = Tensor::Scalar(3.0f, true);
  Tensor b = Tensor::Scalar(4.0f);
  Tensor c = tensor::Mul(a, b);
  EXPECT_EQ(c.rank(), 0);
  EXPECT_FLOAT_EQ(c.item(), 12.0f);
  auto g = tensor::autodiff::Grad(c, {a});
  EXPECT_FLOAT_EQ(g[0].item(), 4.0f);
}

TEST(TensorEdgeTest, OneByOneMatMul) {
  Tensor a = Tensor::FromData(Shape{1, 1}, {2.0f}, true);
  Tensor b = Tensor::FromData(Shape{1, 1}, {5.0f});
  Tensor c = tensor::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.item(), 10.0f);
}

TEST(TensorEdgeTest, SliceFullRangeAndConcatSingle) {
  Tensor t = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  Tensor full = tensor::Slice(t, 0, 0, 2);
  EXPECT_EQ(full.shape(), t.shape());
  Tensor single = tensor::Concat({t}, 0);
  EXPECT_EQ(single.node(), t.node());  // pass-through, no copy
}

TEST(TensorEdgeTest, ChainedBroadcasts) {
  Tensor scalar = Tensor::Scalar(2.0f, true);
  Tensor row = Tensor::FromData(Shape{3}, {1, 2, 3});
  Tensor grid = Tensor::Ones(Shape{4, 3});
  Tensor out = tensor::Mul(tensor::Add(grid, row), scalar);
  EXPECT_EQ(out.shape(), (Shape{4, 3}));
  auto g = tensor::autodiff::Grad(tensor::SumAll(out), {scalar});
  // d/ds sum((grid+row)*s) = sum(grid+row) = 12 + 4*6 = 36.
  EXPECT_FLOAT_EQ(g[0].item(), 36.0f);
}

TEST(TensorEdgeTest, UnfoldWindowEqualsLength) {
  Tensor t = Tensor::FromData(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor u = tensor::Unfold1d(t, 3);
  EXPECT_EQ(u.shape(), (Shape{1, 6}));
  EXPECT_FLOAT_EQ(u.at(5), 6.0f);
}

TEST(TensorEdgeTest, MaxAxisOnSingletonAxis) {
  Tensor t = Tensor::FromData(Shape{1, 3}, {5, 1, 9});
  Tensor m = tensor::MaxAxis(t, 0, /*keepdim=*/false);
  EXPECT_EQ(m.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(m.at(2), 9.0f);
}

TEST(TensorEdgeTest, SecondOrderThroughLogSumExp) {
  Tensor x = Tensor::FromData(Shape{1, 3}, {0.1f, -0.2f, 0.3f}, true);
  Tensor lse = tensor::SumAll(tensor::LogSumExpLastDim(x));
  auto g1 = tensor::autodiff::Grad(lse, {x}, /*create_graph=*/true);
  // Sum of softmax = 1, so grad sums to 1; second derivative of that sum is 0.
  float total = 0;
  for (float v : g1[0].data()) total += v;
  EXPECT_NEAR(total, 1.0f, 1e-5);
  auto g2 = tensor::autodiff::Grad(tensor::SumAll(g1[0]), {x});
  for (float v : g2[0].data()) EXPECT_NEAR(v, 0.0f, 1e-4);
}

// --------------------------------------------------------------------- CRF

TEST(CrfEdgeTest, SingleTagInventory) {
  crf::LinearChainCrf crf(1);
  Tensor emissions = Tensor::FromData(Shape{4, 1}, {1, 2, 3, 4});
  Tensor nll = crf.NegLogLikelihood(emissions, {0, 0, 0, 0});
  EXPECT_NEAR(nll.item(), 0.0f, 1e-4);  // only one path exists
  EXPECT_EQ(crf.Viterbi(emissions), (std::vector<int64_t>{0, 0, 0, 0}));
}

TEST(CrfEdgeTest, KBestWithKOne) {
  crf::LinearChainCrf crf(3);
  util::Rng rng(3);
  Tensor emissions = Tensor::Randn(Shape{3, 3}, &rng);
  auto paths = crf.ViterbiKBest(emissions, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].tags, crf.Viterbi(emissions));
}

TEST(CrfEdgeTest, MarginalsSingleToken) {
  crf::LinearChainCrf crf(2);
  Tensor emissions = Tensor::FromData(Shape{1, 2}, {1.0f, 3.0f});
  auto marginals = crf.Marginals(emissions);
  ASSERT_EQ(marginals.size(), 1u);
  EXPECT_GT(marginals[0][1], marginals[0][0]);
  EXPECT_NEAR(marginals[0][0] + marginals[0][1], 1.0, 1e-6);
}

// ------------------------------------------------------------------- optim

TEST(OptimEdgeTest, ClipZeroGradientsIsNoOp) {
  std::vector<Tensor> grads = {Tensor::Zeros(Shape{3})};
  const float norm = nn::ClipGradNorm(&grads, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.0f);
  EXPECT_FLOAT_EQ(grads[0].at(0), 0.0f);
}

TEST(OptimEdgeTest, GradAccumulatorSumsAndScales) {
  std::vector<Tensor> params = {Tensor::Zeros(Shape{2}, true)};
  meta::GradAccumulator accumulator(params);
  accumulator.Add({Tensor::FromData(Shape{2}, {1.0f, 2.0f})});
  accumulator.Add({Tensor::FromData(Shape{2}, {3.0f, 4.0f})});
  auto out = accumulator.Finish(0.5f);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0].at(0), 2.0f);
  EXPECT_FLOAT_EQ(out[0].at(1), 3.0f);
}

// ------------------------------------------------------------------- flags

TEST(FlagsEdgeTest, EqualsFormBooleansAndNegativeNumbers) {
  util::FlagParser parser;
  parser.AddBool("flag", true, "b");
  parser.AddInt("n", 0, "i");
  parser.AddDouble("x", 0.0, "d");
  const char* argv[] = {"p", "--flag=false", "--n", "-5", "--x=-0.25"};
  ASSERT_TRUE(parser.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(parser.GetBool("flag"));
  EXPECT_EQ(parser.GetInt("n"), -5);
  EXPECT_DOUBLE_EQ(parser.GetDouble("x"), -0.25);
}

TEST(FlagsEdgeTest, MissingValueIsError) {
  util::FlagParser parser;
  parser.AddInt("n", 0, "i");
  const char* argv[] = {"p", "--n"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

// ------------------------------------------------------------------ status

namespace {
util::Status FailsInner() { return util::Status::NotFound("inner"); }
util::Status Propagates() {
  FEWNER_RETURN_IF_ERROR(FailsInner());
  return util::Status::OK();
}
}  // namespace

TEST(StatusEdgeTest, ReturnIfErrorPropagates) {
  util::Status status = Propagates();
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

// ----------------------------------------------------------------- sampler

TEST(SamplerEdgeTest, NWayEqualsAvailableTypes) {
  data::SyntheticSpec spec;
  spec.name = "edge";
  spec.genre = "newswire";
  spec.num_types = 5;
  spec.num_sentences = 400;
  spec.seed = 4;
  spec.type_pool_offset = 8200;
  data::Corpus corpus = data::GenerateCorpus(spec);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 5, 1, 1, 9);
  data::Episode episode = sampler.Sample(0);
  EXPECT_EQ(episode.n_way(), 5);
  EXPECT_EQ(episode.query.size(), 1u);
}

// ---------------------------------------------------------------- backbone

TEST(BackboneEdgeTest, SingleTokenSentence) {
  text::Vocab words, chars;
  words.Add("hi");
  chars.Add("h");
  chars.Add("i");
  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 6;
  config.char_dim = 4;
  config.filters_per_width = 2;
  config.hidden_dim = 6;
  config.max_tags = 3;
  config.context_dim = 4;
  config.dropout = 0.0f;
  util::Rng rng(5);
  models::Backbone backbone(config, &rng);
  backbone.SetTraining(false);

  models::EncodedSentence sentence;
  sentence.word_ids = {2};
  sentence.char_ids = {{2, 3}};
  sentence.tags = {text::BeginTag(0)};
  auto valid = text::ValidTagMask(1, 3);
  Tensor loss = backbone.SentenceLoss(sentence, backbone.ZeroContext(), valid);
  EXPECT_TRUE(std::isfinite(loss.item()));
  auto decoded = backbone.Decode(sentence, backbone.ZeroContext(), valid);
  EXPECT_EQ(decoded.size(), 1u);
}

// ----------------------------------------------------------- hash embeddings

TEST(HashEmbeddingsEdgeTest, TinyDimension) {
  text::HashEmbeddings embeddings(1);
  auto v = embeddings.VectorFor("x");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NEAR(std::abs(v[0]), 1.0f, 1e-4);  // unit norm in 1-D
}

TEST(HashEmbeddingsEdgeTest, ShortWordsUseWholeWordAsPrefix) {
  text::HashEmbeddings embeddings(8);
  EXPECT_EQ(embeddings.VectorFor("ab"), embeddings.VectorFor("AB"));
}

}  // namespace
}  // namespace fewner
