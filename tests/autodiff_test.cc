// Tests for reverse-mode autodiff, including finite-difference gradient checks
// over every differentiable op and exact second-order (grad-of-grad) checks —
// the property FEWNER's meta-gradient depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace fewner::tensor {
namespace {

using autodiff::Grad;

/// Central finite-difference check of d(loss)/d(x) for every element of x.
void CheckGradient(const std::function<Tensor(const Tensor&)>& loss_fn, Tensor x,
                   float eps = 1e-3f, float tol = 2e-2f) {
  Tensor loss = loss_fn(x);
  std::vector<Tensor> grads = Grad(loss, {x});
  ASSERT_EQ(grads.size(), 1u);
  const Tensor& g = grads[0];
  ASSERT_EQ(g.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data();
    std::vector<float> minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    Tensor xp = Tensor::FromData(x.shape(), plus, true);
    Tensor xm = Tensor::FromData(x.shape(), minus, true);
    const float numeric = (loss_fn(xp).item() - loss_fn(xm).item()) / (2 * eps);
    EXPECT_NEAR(g.at(i), numeric, tol) << "element " << i;
  }
}

Tensor RandTensor(Shape shape, uint64_t seed, float stddev = 1.0f) {
  util::Rng rng(seed);
  return Tensor::Randn(std::move(shape), &rng, stddev, /*requires_grad=*/true);
}

TEST(AutodiffTest, SimpleChain) {
  // loss = sum((2x + 1)^2); dloss/dx = 4(2x + 1).
  Tensor x = Tensor::FromData(Shape{3}, {0.0f, 1.0f, -1.0f}, true);
  Tensor loss = SumAll(Square(AddScalar(MulScalar(x, 2.0f), 1.0f)));
  auto g = Grad(loss, {x});
  EXPECT_FLOAT_EQ(g[0].at(0), 4.0f);
  EXPECT_FLOAT_EQ(g[0].at(1), 12.0f);
  EXPECT_FLOAT_EQ(g[0].at(2), -4.0f);
}

TEST(AutodiffTest, GradOfIndependentInputIsZero) {
  Tensor x = Tensor::Ones(Shape{2}, true);
  Tensor y = Tensor::Ones(Shape{2}, true);
  Tensor loss = SumAll(x);
  auto g = Grad(loss, {x, y});
  EXPECT_FLOAT_EQ(g[0].at(0), 1.0f);
  EXPECT_FLOAT_EQ(g[1].at(0), 0.0f);
  EXPECT_FLOAT_EQ(g[1].at(1), 0.0f);
}

TEST(AutodiffTest, FanOutAccumulates) {
  // loss = sum(x * x) computed through two separate consumers of x.
  Tensor x = Tensor::FromData(Shape{2}, {3.0f, -2.0f}, true);
  Tensor a = MulScalar(x, 1.0f);
  Tensor loss = SumAll(Mul(a, x));
  auto g = Grad(loss, {x});
  EXPECT_FLOAT_EQ(g[0].at(0), 6.0f);
  EXPECT_FLOAT_EQ(g[0].at(1), -4.0f);
}

TEST(AutodiffTest, GradDetachedByDefault) {
  Tensor x = Tensor::Ones(Shape{2}, true);
  auto g = Grad(SumAll(Square(x)), {x}, /*create_graph=*/false);
  EXPECT_FALSE(g[0].requires_grad());
  auto g2 = Grad(SumAll(Square(x)), {x}, /*create_graph=*/true);
  EXPECT_TRUE(g2[0].requires_grad());
}

TEST(AutodiffTest, DetachBlocksFlow) {
  Tensor x = Tensor::FromData(Shape{2}, {1.0f, 2.0f}, true);
  Tensor loss = SumAll(Mul(x.Detach(), x));  // d/dx = detached(x)
  auto g = Grad(loss, {x});
  EXPECT_FLOAT_EQ(g[0].at(0), 1.0f);
  EXPECT_FLOAT_EQ(g[0].at(1), 2.0f);
}

// --- finite-difference sweeps over ops ---

TEST(GradCheckTest, AddMulSubDivBroadcast) {
  Tensor y = Tensor::FromData(Shape{3}, {0.5f, 1.5f, 2.5f});
  CheckGradient([&](const Tensor& x) { return SumAll(Add(x, y)); },
                RandTensor(Shape{2, 3}, 1));
  CheckGradient([&](const Tensor& x) { return SumAll(Mul(x, y)); },
                RandTensor(Shape{2, 3}, 2));
  CheckGradient([&](const Tensor& x) { return SumAll(Sub(y, x)); },
                RandTensor(Shape{2, 3}, 3));
  CheckGradient([&](const Tensor& x) { return SumAll(Div(y, AddScalar(Square(x), 1.0f))); },
                RandTensor(Shape{2, 3}, 4));
}

TEST(GradCheckTest, BroadcastFromSmallSide) {
  Tensor big = RandTensor(Shape{4, 3}, 10);
  big.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(Mul(big, x))); },
                RandTensor(Shape{3}, 11));
  CheckGradient([&](const Tensor& x) { return SumAll(Square(Add(big, x))); },
                RandTensor(Shape{4, 1}, 12));
}

TEST(GradCheckTest, Activations) {
  CheckGradient([](const Tensor& x) { return SumAll(Sigmoid(x)); },
                RandTensor(Shape{5}, 5));
  CheckGradient([](const Tensor& x) { return SumAll(Tanh(x)); },
                RandTensor(Shape{5}, 6));
  CheckGradient([](const Tensor& x) { return SumAll(Exp(x)); },
                RandTensor(Shape{5}, 7, 0.5f));
  CheckGradient([](const Tensor& x) { return SumAll(Log(AddScalar(Square(x), 1.0f))); },
                RandTensor(Shape{5}, 8));
  CheckGradient([](const Tensor& x) { return SumAll(Sqrt(AddScalar(Square(x), 1.0f))); },
                RandTensor(Shape{5}, 9));
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Values bounded away from 0 so finite differences are valid.
  Tensor x = Tensor::FromData(Shape{4}, {-2.0f, -0.5f, 0.5f, 2.0f}, true);
  CheckGradient([](const Tensor& t) { return SumAll(Square(Relu(t))); }, x);
}

TEST(GradCheckTest, MatMulBothSides) {
  Tensor b = RandTensor(Shape{3, 2}, 20);
  b.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(MatMul(x, b))); },
                RandTensor(Shape{2, 3}, 21));
  Tensor a = RandTensor(Shape{2, 3}, 22);
  a.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(MatMul(a, x))); },
                RandTensor(Shape{3, 2}, 23));
}

TEST(GradCheckTest, MatMulNTBothSides) {
  Tensor b = RandTensor(Shape{2, 3}, 24);  // [n, k]
  b.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(MatMulNT(x, b))); },
                RandTensor(Shape{4, 3}, 25));
  Tensor a = RandTensor(Shape{4, 3}, 26);
  a.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(MatMulNT(a, x))); },
                RandTensor(Shape{2, 3}, 27));
}

TEST(GradCheckTest, MatMulTNBothSides) {
  Tensor b = RandTensor(Shape{3, 2}, 28);  // [k, n]
  b.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(MatMulTN(x, b))); },
                RandTensor(Shape{3, 4}, 29));
  Tensor a = RandTensor(Shape{3, 4}, 35);
  a.set_requires_grad(false);
  CheckGradient([&](const Tensor& x) { return SumAll(Square(MatMulTN(a, x))); },
                RandTensor(Shape{3, 2}, 36));
}

TEST(AutodiffTest, MatMulFamilyMatchesTransposeCompositionBitwise) {
  // The NT/TN ops and MatMul's transpose-free backward must reproduce the
  // transpose-materializing formulations they replaced to the last bit —
  // forward values AND gradients, including through create_graph.  `s` seeds
  // a non-trivial incoming gradient for the product.
  Tensor a = RandTensor(Shape{5, 3}, 90);
  Tensor b = RandTensor(Shape{3, 4}, 91);
  Tensor s = RandTensor(Shape{5, 4}, 92);
  s.set_requires_grad(false);

  struct Formulation {
    Tensor value;
    std::vector<Tensor> grads;
  };
  auto run = [&](const std::function<Tensor()>& product) {
    Tensor c = product();
    auto grads = Grad(SumAll(Mul(c, s)), {a, b}, /*create_graph=*/true);
    return Formulation{c, std::move(grads)};
  };
  auto expect_same = [](const Formulation& got, const Formulation& want) {
    ASSERT_EQ(got.value.shape(), want.value.shape());
    for (int64_t i = 0; i < got.value.numel(); ++i) {
      ASSERT_EQ(std::memcmp(&got.value.data()[static_cast<size_t>(i)],
                            &want.value.data()[static_cast<size_t>(i)],
                            sizeof(float)),
                0)
          << "value elem " << i;
    }
    for (size_t gi = 0; gi < got.grads.size(); ++gi) {
      for (int64_t i = 0; i < got.grads[gi].numel(); ++i) {
        ASSERT_EQ(std::memcmp(&got.grads[gi].data()[static_cast<size_t>(i)],
                              &want.grads[gi].data()[static_cast<size_t>(i)],
                              sizeof(float)),
                  0)
            << "grad " << gi << " elem " << i;
      }
    }
  };

  // NN: a [5, 3] x b [3, 4].
  expect_same(run([&] { return MatMul(a, b); }),
              run([&] { return Transpose(Transpose(MatMul(a, b))); }));
  // NT: a [5, 3] x (bᵀ [3, 4])ᵀ — composition materializes Transpose(bᵀ).
  Tensor bt = Transpose(b);  // [4, 3], shares b's requires_grad chain
  expect_same(run([&] { return MatMulNT(a, bt); }),
              run([&] { return MatMul(a, Transpose(bt)); }));
  // TN: (aᵀ [3, 5])ᵀ x b — composition materializes Transpose(aᵀ).
  Tensor at = Transpose(a);  // [3, 5]
  expect_same(run([&] { return MatMulTN(at, b); }),
              run([&] { return MatMul(Transpose(at), b); }));
}

TEST(AutodiffTest, MatMulFamilySkipsGradExpressionsForConstantInputs) {
  // A backward invocation may return an undefined Tensor for an input with
  // requires_grad() == false (tensor.h's BackwardFn contract); the MatMul
  // family exploits that so a frozen operand — e.g. θ during test-time
  // adaptation — costs neither a transpose nor a GEMM on the tape.
  Tensor ones = Tensor::Ones(Shape{2, 4});
  {
    Tensor a = RandTensor(Shape{2, 3}, 93);
    Tensor b = RandTensor(Shape{3, 4}, 94);
    b.set_requires_grad(false);
    Tensor c = MatMul(a, b);
    auto grads = c.node()->backward(c, ones);
    ASSERT_EQ(grads.size(), 2u);
    EXPECT_TRUE(grads[0].defined());
    EXPECT_FALSE(grads[1].defined());
  }
  {
    Tensor a = RandTensor(Shape{2, 3}, 95);
    a.set_requires_grad(false);
    Tensor b = RandTensor(Shape{4, 3}, 96);
    Tensor c = MatMulNT(a, b);
    auto grads = c.node()->backward(c, ones);
    EXPECT_FALSE(grads[0].defined());
    EXPECT_TRUE(grads[1].defined());
  }
  {
    Tensor a = RandTensor(Shape{3, 2}, 97);
    Tensor b = RandTensor(Shape{3, 4}, 98);
    b.set_requires_grad(false);
    Tensor c = MatMulTN(a, b);
    auto grads = c.node()->backward(c, ones);
    EXPECT_TRUE(grads[0].defined());
    EXPECT_FALSE(grads[1].defined());
  }
  // End-to-end: Grad through a frozen-weight product still works and matches
  // the analytic value dL/da = 1·bᵀ for L = sum(a·b).
  Tensor a = RandTensor(Shape{2, 3}, 99);
  Tensor b = RandTensor(Shape{3, 4}, 100);
  b.set_requires_grad(false);
  auto g = Grad(SumAll(MatMul(a, b)), {a});
  Tensor expected = MatMulNT(Tensor::Ones(Shape{2, 4}), b);
  for (int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_FLOAT_EQ(g[0].at(i), expected.at(i)) << "element " << i;
  }
}

TEST(SecondOrderTest, ThroughMatMulNTChain) {
  // Same quadratic-in-w check as ThroughMatMulChain, but the product is
  // expressed with MatMulNT so the second-order path exercises the
  // NT -> {NN, TN} backward closure chain.
  Tensor x = RandTensor(Shape{4, 3}, 84);
  x.set_requires_grad(false);
  Tensor w = RandTensor(Shape{2, 3}, 85);  // [n, k] for NT

  auto first_grad_sum = [&](const Tensor& wt) {
    Tensor loss = SumAll(Square(MatMulNT(x, wt)));
    auto g = Grad(loss, {wt}, /*create_graph=*/true);
    return SumAll(g[0]);
  };

  Tensor gg_sum = first_grad_sum(w);
  auto second = Grad(gg_sum, {w});

  const float eps = 1e-3f;
  for (int64_t i = 0; i < w.numel(); ++i) {
    std::vector<float> plus = w.data(), minus = w.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    Tensor wp = Tensor::FromData(w.shape(), plus, true);
    Tensor wm = Tensor::FromData(w.shape(), minus, true);
    const float numeric =
        (first_grad_sum(wp).item() - first_grad_sum(wm).item()) / (2 * eps);
    EXPECT_NEAR(second[0].at(i), numeric, 5e-2f) << "element " << i;
  }
}

TEST(GradCheckTest, ShapeOps) {
  CheckGradient(
      [](const Tensor& x) { return SumAll(Square(Transpose(Reshape(x, Shape{2, 3})))); },
      RandTensor(Shape{6}, 30));
  CheckGradient(
      [](const Tensor& x) { return SumAll(Square(BroadcastTo(x, Shape{4, 3}))); },
      RandTensor(Shape{3}, 31));
  CheckGradient([](const Tensor& x) { return SumAll(Square(SumTo(x, Shape{3}))); },
                RandTensor(Shape{4, 3}, 32));
  CheckGradient(
      [](const Tensor& x) { return SumAll(Square(Slice(x, 0, 1, 2))); },
      RandTensor(Shape{4, 2}, 33));
  CheckGradient(
      [](const Tensor& x) {
        return SumAll(Square(Concat({x, MulScalar(x, 2.0f)}, 1)));
      },
      RandTensor(Shape{2, 2}, 34));
}

TEST(GradCheckTest, Reductions) {
  CheckGradient([](const Tensor& x) { return Square(SumAll(x)); },
                RandTensor(Shape{4}, 40));
  CheckGradient([](const Tensor& x) { return SumAll(Square(SumAxis(x, 0, false))); },
                RandTensor(Shape{3, 2}, 41));
  CheckGradient([](const Tensor& x) { return SumAll(Square(SumAxis(x, 1, true))); },
                RandTensor(Shape{3, 2}, 42));
  CheckGradient([](const Tensor& x) { return Square(MeanAll(x)); },
                RandTensor(Shape{5}, 43));
}

TEST(GradCheckTest, MaxAxisAwayFromTies) {
  Tensor x = Tensor::FromData(Shape{2, 3}, {1.0f, 5.0f, 2.0f, 9.0f, 3.0f, 4.0f}, true);
  CheckGradient([](const Tensor& t) { return SumAll(Square(MaxAxis(t, 1, false))); }, x);
}

TEST(GradCheckTest, GatherScatter) {
  CheckGradient(
      [](const Tensor& x) {
        return SumAll(Square(IndexSelectRows(x, {0, 2, 2, 1})));
      },
      RandTensor(Shape{3, 2}, 50));
  CheckGradient(
      [](const Tensor& x) { return SumAll(Square(ScatterAddRows(x, {1, 1, 0}, 4))); },
      RandTensor(Shape{3, 2}, 51));
}

TEST(GradCheckTest, UnfoldFold) {
  CheckGradient([](const Tensor& x) { return SumAll(Square(Unfold1d(x, 3))); },
                RandTensor(Shape{5, 2}, 60));
  CheckGradient([](const Tensor& x) { return SumAll(Square(Fold1d(x, 2))); },
                RandTensor(Shape{3, 4}, 61));
}

TEST(GradCheckTest, SoftmaxFamily) {
  CheckGradient([](const Tensor& x) { return SumAll(Square(LogSumExpLastDim(x))); },
                RandTensor(Shape{2, 4}, 70));
  CheckGradient(
      [](const Tensor& x) {
        Tensor lp = LogSoftmaxLastDim(x);
        return Neg(SumAll(Slice(lp, 1, 0, 1)));  // NLL of class 0 per row
      },
      RandTensor(Shape{3, 4}, 71));
  CheckGradient([](const Tensor& x) { return SumAll(Square(SoftmaxLastDim(x))); },
                RandTensor(Shape{2, 3}, 72));
}

// --- second order ---

TEST(SecondOrderTest, QuadraticHessianIsConstant) {
  // loss = sum(x^3); first grad = 3x^2; d(sum(first_grad))/dx = 6x.
  Tensor x = Tensor::FromData(Shape{3}, {1.0f, 2.0f, -1.0f}, true);
  Tensor loss = SumAll(Mul(Mul(x, x), x));
  auto g1 = Grad(loss, {x}, /*create_graph=*/true);
  Tensor g1_sum = SumAll(g1[0]);
  auto g2 = Grad(g1_sum, {x});
  EXPECT_NEAR(g2[0].at(0), 6.0f, 1e-4);
  EXPECT_NEAR(g2[0].at(1), 12.0f, 1e-4);
  EXPECT_NEAR(g2[0].at(2), -6.0f, 1e-4);
}

TEST(SecondOrderTest, ThroughSigmoid) {
  // f(x) = sigmoid(x); f'' = f'(1 - 2f).  Check at x = 0.7.
  Tensor x = Tensor::Scalar(0.7f, true);
  Tensor y = Sigmoid(x);
  auto g1 = Grad(y, {x}, true);
  auto g2 = Grad(g1[0], {x});
  const double s = 1.0 / (1.0 + std::exp(-0.7));
  const double expected = s * (1 - s) * (1 - 2 * s);
  EXPECT_NEAR(g2[0].item(), expected, 1e-4);
}

TEST(SecondOrderTest, ThroughMatMulChain) {
  // loss(w) = sum((x w)^2) is quadratic in w; the grad of grad-sum is constant
  // and can be checked against finite differences of the first gradient.
  Tensor x = RandTensor(Shape{4, 3}, 80);
  x.set_requires_grad(false);
  Tensor w = RandTensor(Shape{3, 2}, 81);

  auto first_grad_sum = [&](const Tensor& wt) {
    Tensor loss = SumAll(Square(MatMul(x, wt)));
    auto g = Grad(loss, {wt}, /*create_graph=*/true);
    return SumAll(g[0]);
  };

  Tensor gg_sum = first_grad_sum(w);
  auto second = Grad(gg_sum, {w});

  const float eps = 1e-3f;
  for (int64_t i = 0; i < w.numel(); ++i) {
    std::vector<float> plus = w.data(), minus = w.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    Tensor wp = Tensor::FromData(w.shape(), plus, true);
    Tensor wm = Tensor::FromData(w.shape(), minus, true);
    const float numeric =
        (first_grad_sum(wp).item() - first_grad_sum(wm).item()) / (2 * eps);
    EXPECT_NEAR(second[0].at(i), numeric, 5e-2f) << "element " << i;
  }
}

TEST(SecondOrderTest, MamlStyleInnerStepGradient) {
  // theta' = theta - a * dL_spt/dtheta with L_spt = 0.5 * (theta * s)^2,
  // L_qry(theta') = 0.5 * (theta' * q)^2.  Analytic meta-gradient:
  //   theta' = theta (1 - a s^2), dL_qry/dtheta = q^2 theta (1 - a s^2)^2.
  const float s = 1.3f, q = 0.8f, a = 0.1f, theta0 = 2.0f;
  Tensor theta = Tensor::Scalar(theta0, true);
  Tensor spt_loss = MulScalar(Square(MulScalar(theta, s)), 0.5f);
  auto inner = Grad(spt_loss, {theta}, /*create_graph=*/true);
  Tensor theta_prime = Sub(theta, MulScalar(inner[0], a));
  Tensor qry_loss = MulScalar(Square(MulScalar(theta_prime, q)), 0.5f);
  auto meta = Grad(qry_loss, {theta});
  const float factor = 1.0f - a * s * s;
  EXPECT_NEAR(meta[0].item(), q * q * theta0 * factor * factor, 1e-4);
}

TEST(SecondOrderTest, FirstOrderApproximationDiffers) {
  // Same setup as above but with the inner gradient detached (FOMAML).  The
  // result must equal q^2 * theta' * (1) * ... i.e. missing one (1 - a s^2)
  // factor — demonstrating that create_graph genuinely changes the result.
  const float s = 1.3f, q = 0.8f, a = 0.1f, theta0 = 2.0f;
  Tensor theta = Tensor::Scalar(theta0, true);
  Tensor spt_loss = MulScalar(Square(MulScalar(theta, s)), 0.5f);
  auto inner = Grad(spt_loss, {theta}, /*create_graph=*/false);
  Tensor theta_prime = Sub(theta, MulScalar(inner[0], a));
  Tensor qry_loss = MulScalar(Square(MulScalar(theta_prime, q)), 0.5f);
  auto meta = Grad(qry_loss, {theta});
  const float factor = 1.0f - a * s * s;
  EXPECT_NEAR(meta[0].item(), q * q * theta0 * factor, 1e-4);
  EXPECT_GT(std::abs(meta[0].item() - q * q * theta0 * factor * factor), 1e-3);
}

TEST(AutodiffTest, GraphSizeCountsNodes) {
  Tensor x = Tensor::Ones(Shape{2}, true);
  EXPECT_EQ(autodiff::GraphSize(x), 1);
  Tensor y = Add(Square(x), x);
  EXPECT_EQ(autodiff::GraphSize(y), 3);  // x, square(=mul), add
}

TEST(AutodiffTest, DeepChainDoesNotOverflow) {
  Tensor x = Tensor::Scalar(0.001f, true);
  Tensor y = x;
  for (int i = 0; i < 4000; ++i) y = AddScalar(y, 0.0001f);
  auto g = Grad(SumAll(y), {x});
  EXPECT_FLOAT_EQ(g[0].item(), 1.0f);
}

}  // namespace
}  // namespace fewner::tensor
