// Correctness suite for frozen-θ prefix caching (DESIGN.md §8).
//
// The contract under test has two regimes.  Test time (!create_graph,
// dropout off): adaptation and serving through a CachedPrefix are
// BITWISE-equal (0 ULP, compared with memcmp) to the uncached per-step
// forward — support losses, inner φ gradients, the final φ*, and Viterbi
// tags.  Meta-training (create_graph): the prefix is one shared autodiff
// subgraph reused by every inner-step loss, and the meta-gradient agrees
// with the serial per-step path to tolerance (fan-in summation order at the
// shared node differs) and with central finite differences.  Stale-cache use
// after any θ mutation must abort, in every consumer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "meta/adapted_tagger.h"
#include "meta/fewner.h"
#include "models/backbone.h"
#include "models/encoding.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/eval_mode.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/rng.h"

namespace fewner::meta {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::autodiff::Grad;

constexpr int64_t kWordVocab = 50;
constexpr int64_t kCharVocab = 30;

void ExpectBitwise(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_TRUE(a.defined() && b.defined()) << what;
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const auto& av = a.data();
  const auto& bv = b.data();
  ASSERT_EQ(av.size(), bv.size()) << what;
  if (!av.empty()) {
    EXPECT_EQ(std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)), 0)
        << what << ": cached values diverge from the uncached path";
  }
}

models::EncodedSentence RandomSentence(util::Rng* rng, int64_t length,
                                       const std::vector<bool>& valid_tags) {
  models::EncodedSentence s;
  for (int64_t t = 0; t < length; ++t) {
    s.word_ids.push_back(
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(kWordVocab))));
    const int64_t chars = 1 + static_cast<int64_t>(rng->UniformInt(8));
    std::vector<int64_t> ids;
    for (int64_t c = 0; c < chars; ++c) {
      ids.push_back(
          static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(kCharVocab))));
    }
    s.char_ids.push_back(std::move(ids));
    int64_t tag;
    do {
      tag = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(valid_tags.size())));
    } while (!valid_tags[static_cast<size_t>(tag)]);
    s.tags.push_back(tag);
  }
  return s;
}

models::BackboneConfig SmallConfig(models::EncoderKind encoder,
                                   models::Conditioning conditioning) {
  models::BackboneConfig config;
  config.word_vocab_size = kWordVocab;
  config.char_vocab_size = kCharVocab;
  config.word_dim = 10;
  config.char_dim = 6;
  config.filters_per_width = 4;
  config.hidden_dim = 10;
  config.encoder = encoder;
  config.max_tags = text::NumTags(5);
  config.context_dim = 8;
  config.conditioning = conditioning;
  config.dropout = 0.3f;
  return config;
}

/// Per-step record of one inner loop: support losses, φ gradients, final φ.
struct AdaptTrace {
  std::vector<float> losses;
  std::vector<Tensor> grads;
  Tensor phi;
};

/// The test-time inner loop of Fewner::AdaptContextOn, spelled out so the
/// loss forward can be swapped between the uncached BatchLoss and the cached
/// BatchLossFromPrefix.  Mirrors the production loop exactly (clip 5.0,
/// re-leaf per step).
AdaptTrace TracedDescent(const models::Backbone& net, int64_t steps, float lr,
                         const std::function<Tensor(const Tensor&)>& loss_fn) {
  AdaptTrace trace;
  Tensor phi = net.ZeroContext();
  for (int64_t k = 0; k < steps; ++k) {
    Tensor loss = loss_fn(phi);
    trace.losses.push_back(loss.item());
    Tensor grad = Grad(loss, {phi})[0];
    trace.grads.push_back(grad);
    double norm_sq = 0.0;
    for (float v : grad.data()) norm_sq += static_cast<double>(v) * v;
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    const float clip_scale = norm > 5.0f ? 5.0f / norm : 1.0f;
    phi = tensor::Sub(phi, tensor::MulScalar(grad, lr * clip_scale));
    Tensor leaf = phi.Detach();
    leaf.set_requires_grad(true);
    phi = leaf;
  }
  trace.phi = phi;
  return trace;
}

class PrefixCacheTest : public ::testing::Test {
 protected:
  /// Random ragged episode: B in [1, 6] sentences of length [1, 12].  Episode
  /// ids ending in 0 force B=1; ids ending in 5 force the all-padding-tail
  /// shape (one long lane, every other lane length 1 — a multi-run LaneRuns
  /// partition, so run repacking and refolding get exercised).
  std::vector<models::EncodedSentence> RandomEpisode(
      uint64_t id, util::Rng* rng, const std::vector<bool>& valid_tags) {
    std::vector<models::EncodedSentence> sentences;
    if (id % 10 == 0) {
      sentences.push_back(RandomSentence(
          rng, 1 + static_cast<int64_t>(rng->UniformInt(12)), valid_tags));
    } else if (id % 10 == 5) {
      sentences.push_back(RandomSentence(rng, 12, valid_tags));
      const int64_t lanes = 2 + static_cast<int64_t>(rng->UniformInt(3));
      for (int64_t b = 0; b < lanes; ++b) {
        sentences.push_back(RandomSentence(rng, 1, valid_tags));
      }
    } else {
      const int64_t lanes = 1 + static_cast<int64_t>(rng->UniformInt(6));
      for (int64_t b = 0; b < lanes; ++b) {
        sentences.push_back(RandomSentence(
            rng, 1 + static_cast<int64_t>(rng->UniformInt(12)), valid_tags));
      }
    }
    return sentences;
  }
};

// ----- test-time 0-ULP parity ----------------------------------------------

TEST_F(PrefixCacheTest, CachedAdaptationBitwiseEqualOn100RaggedEpisodes) {
  // Two backbones cover both encoders and both conditioning modes; episodes
  // cover B=1 and multi-run ragged shapes.
  util::Rng init_a(0xA11), init_b(0xB22);
  models::Backbone gru_film(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init_a);
  models::Backbone lstm_concat(
      SmallConfig(models::EncoderKind::kBiLstm, models::Conditioning::kConcat),
      &init_b);
  gru_film.SetTraining(false);
  lstm_concat.SetTraining(false);

  constexpr int64_t kSteps = 3;
  constexpr float kLr = 0.1f;
  util::Rng rng(0x9E01);
  for (uint64_t id = 0; id < 100; ++id) {
    models::Backbone& net = (id % 2 == 0) ? gru_film : lstm_concat;
    const int64_t n_way = 1 + static_cast<int64_t>(rng.UniformInt(5));
    const std::vector<bool> valid_tags =
        text::ValidTagMask(n_way, net.config().max_tags);
    std::vector<models::EncodedSentence> support =
        RandomEpisode(id, &rng, valid_tags);
    std::vector<models::EncodedSentence> query =
        RandomEpisode(id + 1, &rng, valid_tags);
    const models::EncodedBatch support_batch = models::PackBatch(support);
    const models::EncodedBatch query_batch = models::PackBatch(query);

    // Uncached reference: one full forward per inner step.
    AdaptTrace uncached =
        TracedDescent(net, kSteps, kLr, [&](const Tensor& phi) {
          return net.BatchLoss(support_batch, phi, valid_tags);
        });

    // Cached: θ-prefix once (graph-free, like AdaptedTagger), suffix per step.
    models::CachedPrefix prefix;
    {
      tensor::EvalMode eval;
      prefix = net.EncodePrefix(support_batch);
    }
    AdaptTrace cached = TracedDescent(net, kSteps, kLr, [&](const Tensor& phi) {
      return net.BatchLossFromPrefix(prefix, phi, valid_tags);
    });

    for (int64_t k = 0; k < kSteps; ++k) {
      const float a = uncached.losses[static_cast<size_t>(k)];
      const float b = cached.losses[static_cast<size_t>(k)];
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
          << "support loss, step " << k << " episode " << id;
      ExpectBitwise(uncached.grads[static_cast<size_t>(k)],
                    cached.grads[static_cast<size_t>(k)],
                    "phi gradient, step " + std::to_string(k) + " episode " +
                        std::to_string(id));
    }
    ExpectBitwise(uncached.phi, cached.phi,
                  "final phi, episode " + std::to_string(id));

    // Serving: query tags through a query prefix vs. the uncached decode,
    // and the production AdaptContextOn (which now caches internally) vs.
    // the reference loop.
    Tensor production = Fewner::AdaptContextOn(net, support, valid_tags, kSteps,
                                               kLr, /*create_graph=*/false);
    ExpectBitwise(uncached.phi, production,
                  "AdaptContextOn phi, episode " + std::to_string(id));
    const auto plain_tags =
        net.DecodeBatch(query_batch, uncached.phi, valid_tags);
    models::CachedPrefix query_prefix;
    {
      tensor::EvalMode eval;
      query_prefix = net.EncodePrefix(query_batch);
    }
    const auto cached_tags =
        net.DecodeBatchFromPrefix(query_prefix, cached.phi, valid_tags);
    EXPECT_EQ(plain_tags, cached_tags) << "viterbi tags, episode " << id;
  }
}

TEST_F(PrefixCacheTest, SplitPointsAndEmissionsPerConditioningMode) {
  util::Rng rng(0x9E02);
  const struct {
    models::Conditioning mode;
    const char* name;
  } cases[] = {{models::Conditioning::kFilm, "kFilm"},
               {models::Conditioning::kConcat, "kConcat"},
               {models::Conditioning::kNone, "kNone"}};
  for (const auto& c : cases) {
    util::Rng init(0xC33);
    models::BackboneConfig config =
        SmallConfig(models::EncoderKind::kBiGru, c.mode);
    if (c.mode == models::Conditioning::kNone) config.context_dim = 0;
    models::Backbone net(config, &init);
    net.SetTraining(false);
    const std::vector<bool> valid_tags =
        text::ValidTagMask(3, config.max_tags);
    std::vector<models::EncodedSentence> sentences =
        RandomEpisode(5, &rng, valid_tags);  // multi-run ragged shape
    const models::EncodedBatch batch = models::PackBatch(sentences);

    models::CachedPrefix prefix = net.EncodePrefix(batch);
    // Split point: kConcat caches only the pre-recurrence token features
    // (φ joins the BiGRU input); kFilm/kNone cache through the BiGRU.
    const int64_t char_feat =
        static_cast<int64_t>(config.filter_widths.size()) *
        config.filters_per_width;
    const int64_t expect_dim = c.mode == models::Conditioning::kConcat
                                   ? config.word_dim + char_feat
                                   : 2 * config.hidden_dim;
    ASSERT_FALSE(prefix.runs.empty()) << c.name;
    EXPECT_GT(prefix.runs.size(), 1u) << c.name << ": episode not multi-run";
    for (const auto& run : prefix.runs) {
      EXPECT_EQ(run.features.shape().dim(2), expect_dim) << c.name;
    }

    // Emission parity: every lane's real rows match EmissionsBatch bitwise
    // (padding rows are unspecified there, zero here).
    Tensor phi = net.ZeroContext();
    Tensor plain = net.EmissionsBatch(batch, phi).Detach();
    Tensor cached = net.EmissionsFromPrefix(prefix, phi).Detach();
    ASSERT_EQ(plain.shape(), cached.shape()) << c.name;
    for (size_t b = 0; b < sentences.size(); ++b) {
      Tensor plain_lane = tensor::Reshape(
          tensor::Slice(plain, 0, static_cast<int64_t>(b), 1),
          Shape{batch.max_len, config.max_tags});
      Tensor cached_lane = tensor::Reshape(
          tensor::Slice(cached, 0, static_cast<int64_t>(b), 1),
          Shape{batch.max_len, config.max_tags});
      ExpectBitwise(
          tensor::Slice(plain_lane, 0, 0, sentences[b].length()).Detach(),
          tensor::Slice(cached_lane, 0, 0, sentences[b].length()).Detach(),
          std::string(c.name) + " emissions lane " + std::to_string(b));
    }

    // Loss and decode parity for this mode too (kNone runs a φ-free suffix).
    const float plain_loss = net.BatchLoss(batch, phi, valid_tags).item();
    const float cached_loss =
        net.BatchLossFromPrefix(prefix, phi, valid_tags).item();
    EXPECT_EQ(std::memcmp(&plain_loss, &cached_loss, sizeof(float)), 0)
        << c.name;
    EXPECT_EQ(net.DecodeBatch(batch, phi, valid_tags),
              net.DecodeBatchFromPrefix(prefix, phi, valid_tags))
        << c.name;
  }
}

// ----- cache invalidation --------------------------------------------------

TEST_F(PrefixCacheTest, StaleCacheUseAfterThetaChangeDies) {
  util::Rng init(0xD44);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(false);
  util::Rng rng(0x9E03);
  const std::vector<bool> valid_tags = text::ValidTagMask(3, net.config().max_tags);
  const models::EncodedBatch batch =
      models::PackBatch(RandomEpisode(1, &rng, valid_tags));
  Tensor phi = net.ZeroContext();

  // An optimizer step invalidates (in-place mutation bumps node versions) —
  // even a zero-gradient step, since invalidation is conservative.
  {
    models::CachedPrefix prefix = net.EncodePrefix(batch);
    std::vector<Tensor> zero_grads;
    for (Tensor* slot : net.Parameters()) {
      zero_grads.push_back(Tensor::Zeros(slot->shape()));
    }
    nn::Sgd sgd(net.Parameters(), 0.01f);
    sgd.Step(zero_grads);
    EXPECT_DEATH(net.BatchLossFromPrefix(prefix, phi, valid_tags),
                 "stale CachedPrefix");
  }

  // Direct parameter mutation invalidates every consumer.
  {
    models::CachedPrefix prefix = net.EncodePrefix(batch);
    net.Parameters()[0]->mutable_data();
    EXPECT_DEATH(net.DecodeBatchFromPrefix(prefix, phi, valid_tags),
                 "stale CachedPrefix");
    EXPECT_DEATH(net.EmissionsFromPrefix(prefix, phi), "stale CachedPrefix");
  }

  // Slot replacement (ParameterPatch) invalidates while the patch is live —
  // the slot holds a different node id — and the restore revalidates, since
  // (id, version) of every leaf is back to its build-time value.
  {
    models::CachedPrefix prefix = net.EncodePrefix(batch);
    const float before = net.BatchLossFromPrefix(prefix, phi, valid_tags).item();
    {
      std::vector<Tensor*> slots = net.Parameters();
      std::vector<Tensor> patched;
      for (Tensor* slot : slots) {
        patched.push_back(
            Tensor::FromData(slot->shape(), slot->data(), true));
      }
      nn::ParameterPatch patch(slots, patched);
      EXPECT_DEATH(net.BatchLossFromPrefix(prefix, phi, valid_tags),
                   "stale CachedPrefix");
    }
    const float after = net.BatchLossFromPrefix(prefix, phi, valid_tags).item();
    EXPECT_EQ(std::memcmp(&before, &after, sizeof(float)), 0);
  }
}

TEST_F(PrefixCacheTest, ParameterVersionTracksMutationAndIsStableOtherwise) {
  util::Rng init_a(0xE55), init_b(0xE56);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init_a);
  models::Backbone other(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init_b);
  const uint64_t v0 = net.ParameterVersion();
  EXPECT_EQ(v0, net.ParameterVersion()) << "version must be a pure read";
  net.Parameters()[3]->mutable_data();
  const uint64_t v1 = net.ParameterVersion();
  EXPECT_NE(v0, v1);
  // In-place sync changes values (and versions) but not handle identity —
  // snapshots taken before the sync must still alias the live parameters.
  std::vector<Tensor> snapshot = nn::ParameterTensors(&net);
  net.CopyParametersFrom(&other);
  EXPECT_NE(v1, net.ParameterVersion());
  std::vector<Tensor*> slots = net.Parameters();
  ASSERT_EQ(snapshot.size(), slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(snapshot[i].node(), slots[i]->node()) << "slot " << i;
    EXPECT_EQ(slots[i]->data(), other.Parameters()[i]->data()) << "slot " << i;
  }
}

// ----- dropout gating ------------------------------------------------------

TEST_F(PrefixCacheTest, TrainingDropoutGatesCachingAndFallbackIsUnchanged) {
  util::Rng init(0xF66);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  util::Rng rng(0x9E04);
  const std::vector<bool> valid_tags = text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> support =
      RandomEpisode(2, &rng, valid_tags);
  const models::EncodedBatch batch = models::PackBatch(support);

  net.SetTraining(true);
  ASSERT_GT(net.config().dropout, 0.0f);
  EXPECT_FALSE(net.CanCachePrefix());
  EXPECT_DEATH(net.EncodePrefix(batch), "training-dropout regime");

  // A prefix built in the cacheable regime dies if consumed after the
  // backbone re-enters training — per-step masks would be silently skipped.
  net.SetTraining(false);
  EXPECT_TRUE(net.CanCachePrefix());
  models::CachedPrefix prefix = net.EncodePrefix(batch);
  net.SetTraining(true);
  Tensor phi = net.ZeroContext();
  EXPECT_DEATH(net.BatchLossFromPrefix(prefix, phi, valid_tags),
               "training-dropout regime");

  // With dropout on, AdaptContextOn must take the per-step fallback and
  // reproduce the pre-cache behavior exactly (masks drawn per step).
  net.ReseedDropout(11);
  Tensor fallback = Fewner::AdaptContextOn(net, support, valid_tags, 3, 0.1f,
                                           /*create_graph=*/false);
  net.ReseedDropout(11);
  AdaptTrace reference = TracedDescent(net, 3, 0.1f, [&](const Tensor& p) {
    return net.BatchLoss(batch, p, valid_tags);
  });
  ExpectBitwise(reference.phi, fallback, "training-mode fallback phi");

  // Training with dropout == 0 is cacheable: the prefix draws nothing.
  models::BackboneConfig dry =
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm);
  dry.dropout = 0.0f;
  util::Rng dry_init(0xF67);
  models::Backbone dry_net(dry, &dry_init);
  dry_net.SetTraining(true);
  EXPECT_TRUE(dry_net.CanCachePrefix());
}

// ----- create_graph: shared prefix subgraph --------------------------------

TEST_F(PrefixCacheTest, SharedPrefixMetaGradientMatchesSerialToTolerance) {
  // Serial per-step forwards vs. one shared prefix subgraph: the meta-
  // gradient w.r.t. θ must agree to tolerance (summation order at the shared
  // node's fan-in differs, so bitwise equality is not expected), and the
  // φ-chain values must agree bitwise.
  util::Rng init(0x177);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(false);
  util::Rng rng(0x9E05);
  const std::vector<bool> valid_tags = text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> support =
      RandomEpisode(3, &rng, valid_tags);
  std::vector<models::EncodedSentence> query = RandomEpisode(7, &rng, valid_tags);
  const models::EncodedBatch support_batch = models::PackBatch(support);
  const models::EncodedBatch query_batch = models::PackBatch(query);
  std::vector<Tensor> params = nn::ParameterTensors(&net);

  auto meta_grads = [&](bool shared_prefix) {
    Tensor phi = net.ZeroContext();
    models::CachedPrefix prefix;
    if (shared_prefix) prefix = net.EncodePrefix(support_batch);  // graph mode
    for (int k = 0; k < 2; ++k) {
      Tensor loss = shared_prefix
                        ? net.BatchLossFromPrefix(prefix, phi, valid_tags)
                        : net.BatchLoss(support_batch, phi, valid_tags);
      Tensor g = Grad(loss, {phi}, /*create_graph=*/true)[0];
      phi = tensor::Sub(phi, tensor::MulScalar(g, 0.05f));
    }
    Tensor query_loss = net.BatchLoss(query_batch, phi, valid_tags);
    return std::make_pair(Grad(query_loss, params), phi.Detach());
  };

  const auto [serial, serial_phi] = meta_grads(false);
  const auto [cached, cached_phi] = meta_grads(true);
  ExpectBitwise(serial_phi, cached_phi, "create_graph phi chain");
  ASSERT_EQ(serial.size(), cached.size());
  double max_abs = 0.0;
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].shape(), cached[i].shape()) << "slot " << i;
    for (int64_t j = 0; j < serial[i].numel(); ++j) {
      max_abs = std::max(max_abs, std::abs(static_cast<double>(serial[i].at(j))));
      EXPECT_NEAR(serial[i].at(j), cached[i].at(j),
                  1e-4f + 1e-3f * std::abs(serial[i].at(j)))
          << "slot " << i << " element " << j;
    }
  }
  EXPECT_GT(max_abs, 1e-8) << "meta-gradient vanished; test is vacuous";

  // Determinism of the shared-node fan-in: repeating the cached backward
  // must reproduce every gradient bit (autodiff's fold order is fixed by
  // graph structure, not container iteration).
  const auto [repeat, repeat_phi] = meta_grads(true);
  ExpectBitwise(cached_phi, repeat_phi, "repeat phi chain");
  for (size_t i = 0; i < cached.size(); ++i) {
    ExpectBitwise(cached[i], repeat[i],
                  "repeated shared-prefix meta-grad slot " + std::to_string(i));
  }
}

TEST_F(PrefixCacheTest, SecondOrderFiniteDifferenceThroughSharedPrefix) {
  // The production inner loop (AdaptContextOn, which now builds the shared
  // prefix subgraph in this regime) must still produce the true gradient of
  // the meta-objective: central finite differences over spot-checked θ
  // elements.
  util::Rng init(0x288);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(false);
  util::Rng rng(0x9E06);
  const std::vector<bool> valid_tags = text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> support =
      RandomEpisode(3, &rng, valid_tags);
  const models::EncodedBatch query =
      models::PackBatch(RandomEpisode(7, &rng, valid_tags));

  auto meta_loss = [&]() {
    Tensor phi = Fewner::AdaptContextOn(net, support, valid_tags, 2, 0.05f,
                                        /*create_graph=*/true);
    return net.BatchLoss(query, phi, valid_tags);
  };

  std::vector<Tensor> params = nn::ParameterTensors(&net);
  std::vector<Tensor> analytic = Grad(meta_loss(), params);
  std::vector<Tensor*> slots = net.Parameters();
  ASSERT_EQ(analytic.size(), slots.size());
  const float eps = 1e-2f;
  for (size_t i = 0; i < slots.size(); i += 3) {
    std::vector<float>* values = slots[i]->mutable_data();
    for (int probe = 0; probe < 2; ++probe) {
      const size_t j = rng.UniformInt(values->size());
      const float original = (*values)[j];
      (*values)[j] = original + eps;
      const float plus = meta_loss().item();
      (*values)[j] = original - eps;
      const float minus = meta_loss().item();
      (*values)[j] = original;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic[i].at(static_cast<int64_t>(j)), numeric,
                  3e-2f + 0.05f * std::abs(numeric))
          << "slot " << i << " element " << j;
    }
  }
}

// ----- AdaptedTagger serving -----------------------------------------------

TEST_F(PrefixCacheTest, ReAdaptMatchesLongerConstructionTimeAdaptation) {
  util::Rng init(0x399);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  util::Rng rng(0x9E07);
  const std::vector<bool> valid_tags = text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> support =
      RandomEpisode(4, &rng, valid_tags);
  std::vector<models::EncodedSentence> query = RandomEpisode(8, &rng, valid_tags);

  AdaptedTagger resumed(&net, support, valid_tags, 2, 0.1f);
  resumed.ReAdapt(3);
  AdaptedTagger straight(&net, support, valid_tags, 5, 0.1f);
  ExpectBitwise(straight.phi(), resumed.phi(), "ReAdapt(3) after 2 vs 5 steps");
  EXPECT_EQ(straight.TagAll(query), resumed.TagAll(query));
}

TEST_F(PrefixCacheTest, ConcurrentServingFromOneSharedPrefix) {
  // One AdaptedTagger, one prepared workload, many threads: TagPrepared only
  // reads the shared CachedPrefix and writes each thread's own arena, so
  // every thread must reproduce the single-threaded tags exactly.  Run under
  // -DFEWNER_SANITIZE=thread in CI (tsan label).
  util::Rng init(0x4AA);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  util::Rng rng(0x9E08);
  const std::vector<bool> valid_tags = text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> support =
      RandomEpisode(6, &rng, valid_tags);
  std::vector<models::EncodedSentence> query;
  for (int i = 0; i < 12; ++i) {
    query.push_back(RandomSentence(
        &rng, 1 + static_cast<int64_t>(rng.UniformInt(12)), valid_tags));
  }

  AdaptedTagger tagger(&net, support, valid_tags, 3, 0.1f);
  const models::CachedPrefix workload = tagger.PrepareWorkload(query);
  const std::vector<std::vector<int64_t>> expected = tagger.TagAll(query);
  ASSERT_EQ(tagger.TagPrepared(workload), expected)
      << "prepared decode differs from TagAll";

  constexpr int kThreads = 8;
  std::vector<std::vector<std::vector<int64_t>>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int repeat = 0; repeat < 4; ++repeat) {
        results[static_cast<size_t>(w)] = tagger.TagPrepared(workload);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(results[static_cast<size_t>(w)], expected) << "thread " << w;
  }
}

}  // namespace
}  // namespace fewner::meta
