// Tests for the linear-chain CRF: NLL against brute-force enumeration,
// Viterbi optimality, tag masking, and gradient checks.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "crf/linear_chain_crf.h"
#include "nn/module.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace fewner::crf {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Brute-force score of a tag path under the CRF's current parameters.
double PathScore(const LinearChainCrf& crf, const Tensor& emissions,
                 const std::vector<int64_t>& path) {
  auto params = const_cast<LinearChainCrf&>(crf).Parameters();
  const auto& trans = params[0]->data();
  const auto& start = params[1]->data();
  const auto& end = params[2]->data();
  const int64_t y = crf.num_tags();
  double score = start[static_cast<size_t>(path.front())] +
                 end[static_cast<size_t>(path.back())];
  for (size_t t = 0; t < path.size(); ++t) {
    score += emissions.at(static_cast<int64_t>(t) * y + path[t]);
    if (t > 0) score += trans[static_cast<size_t>(path[t - 1] * y + path[t])];
  }
  return score;
}

/// Enumerates all |Y|^L paths (valid-tag-filtered).
std::vector<std::vector<int64_t>> AllPaths(int64_t num_tags, int64_t length,
                                           const std::vector<bool>* valid) {
  std::vector<std::vector<int64_t>> paths;
  std::vector<int64_t> current(static_cast<size_t>(length), 0);
  for (;;) {
    bool ok = true;
    if (valid != nullptr) {
      for (int64_t tag : current) ok = ok && (*valid)[static_cast<size_t>(tag)];
    }
    if (ok) paths.push_back(current);
    int64_t pos = length - 1;
    while (pos >= 0) {
      if (++current[static_cast<size_t>(pos)] < num_tags) break;
      current[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return paths;
}

class CrfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crf_ = std::make_unique<LinearChainCrf>(3);
    util::Rng rng(99);
    // Randomize parameters so the test is not trivially symmetric.
    for (tensor::Tensor* p : crf_->Parameters()) {
      for (float& v : *p->mutable_data()) {
        v = static_cast<float>(rng.Gaussian(0.0, 0.7));
      }
    }
    emissions_ = Tensor::Randn(Shape{4, 3}, &rng, 1.0f, /*requires_grad=*/true);
  }

  std::unique_ptr<LinearChainCrf> crf_;
  Tensor emissions_;
};

TEST_F(CrfTest, NllMatchesBruteForce) {
  const std::vector<int64_t> gold = {0, 2, 1, 2};
  Tensor nll = crf_->NegLogLikelihood(emissions_, gold);

  double log_z = -1e30;
  for (const auto& path : AllPaths(3, 4, nullptr)) {
    const double s = PathScore(*crf_, emissions_, path);
    log_z = std::max(log_z, s) +
            std::log1p(std::exp(std::min(log_z, s) - std::max(log_z, s)));
  }
  const double expected = log_z - PathScore(*crf_, emissions_, gold);
  EXPECT_NEAR(nll.item(), expected, 1e-3);
}

TEST_F(CrfTest, NllIsNonNegative) {
  for (const auto& path : AllPaths(3, 4, nullptr)) {
    Tensor nll = crf_->NegLogLikelihood(emissions_, path);
    EXPECT_GE(nll.item(), -1e-4);
  }
}

TEST_F(CrfTest, ViterbiIsArgmaxPath) {
  std::vector<int64_t> decoded = crf_->Viterbi(emissions_);
  double best = -1e30;
  std::vector<int64_t> best_path;
  for (const auto& path : AllPaths(3, 4, nullptr)) {
    const double s = PathScore(*crf_, emissions_, path);
    if (s > best) {
      best = s;
      best_path = path;
    }
  }
  EXPECT_EQ(decoded, best_path);
}

TEST_F(CrfTest, MaskedNllMatchesRestrictedBruteForce) {
  const std::vector<bool> valid = {true, false, true};  // tag 1 excluded
  const std::vector<int64_t> gold = {0, 2, 0, 2};
  Tensor nll = crf_->NegLogLikelihood(emissions_, gold, &valid);

  double log_z = -1e30;
  for (const auto& path : AllPaths(3, 4, &valid)) {
    const double s = PathScore(*crf_, emissions_, path);
    log_z = std::max(log_z, s) +
            std::log1p(std::exp(std::min(log_z, s) - std::max(log_z, s)));
  }
  const double expected = log_z - PathScore(*crf_, emissions_, gold);
  EXPECT_NEAR(nll.item(), expected, 1e-3);
}

TEST_F(CrfTest, MaskedViterbiAvoidsInvalidTags) {
  const std::vector<bool> valid = {true, false, true};
  std::vector<int64_t> decoded = crf_->Viterbi(emissions_, &valid);
  for (int64_t tag : decoded) EXPECT_NE(tag, 1);
}

TEST_F(CrfTest, GradCheckEmissions) {
  const std::vector<int64_t> gold = {1, 0, 2, 1};
  Tensor nll = crf_->NegLogLikelihood(emissions_, gold);
  auto g = tensor::autodiff::Grad(nll, {emissions_});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < emissions_.numel(); ++i) {
    std::vector<float> plus = emissions_.data(), minus = emissions_.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    const float lp =
        crf_->NegLogLikelihood(Tensor::FromData(emissions_.shape(), plus), gold)
            .item();
    const float lm =
        crf_->NegLogLikelihood(Tensor::FromData(emissions_.shape(), minus), gold)
            .item();
    EXPECT_NEAR(g[0].at(i), (lp - lm) / (2 * eps), 2e-2) << "emission " << i;
  }
}

TEST_F(CrfTest, GradCheckTransitions) {
  const std::vector<int64_t> gold = {1, 0, 2, 1};
  Tensor nll = crf_->NegLogLikelihood(emissions_, gold);
  Tensor trans = *crf_->Parameters()[0];
  auto g = tensor::autodiff::Grad(nll, {trans});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < trans.numel(); ++i) {
    std::vector<float>* values = crf_->Parameters()[0]->mutable_data();
    const float saved = (*values)[static_cast<size_t>(i)];
    (*values)[static_cast<size_t>(i)] = saved + eps;
    const float lp = crf_->NegLogLikelihood(emissions_, gold).item();
    (*values)[static_cast<size_t>(i)] = saved - eps;
    const float lm = crf_->NegLogLikelihood(emissions_, gold).item();
    (*values)[static_cast<size_t>(i)] = saved;
    EXPECT_NEAR(g[0].at(i), (lp - lm) / (2 * eps), 2e-2) << "transition " << i;
  }
}

TEST_F(CrfTest, HoistedRecursionMatchesPerTimestepTransposeBitwise) {
  // The forward algorithm now hoists transitionsᵀ out of the time loop and
  // builds by_to[j, i] = alpha[i] + transitions[i, j] directly in [to, from]
  // layout.  This test reconstructs the previous formulation — alpha broadcast
  // down the columns of transitions followed by a materialized [Y, Y]
  // Transpose every timestep — and requires the NLL *and* every parameter
  // gradient to be bitwise-identical, not merely close.
  const int64_t y = 3;
  const int64_t length = 4;
  const std::vector<int64_t> gold = {1, 0, 2, 1};
  Tensor trans = *crf_->Parameters()[0];
  Tensor start = *crf_->Parameters()[1];
  Tensor end = *crf_->Parameters()[2];

  Tensor nll_new = crf_->NegLogLikelihood(emissions_, gold);
  auto g_new = tensor::autodiff::Grad(nll_new, {emissions_, trans, start, end});

  // Old formulation, reconstructed op-for-op (ValidityMask with no mask is a
  // broadcast add of zeros, reproduced literally to keep the graphs aligned).
  Tensor masked = tensor::Add(
      emissions_, Tensor::FromData(Shape{y}, std::vector<float>(y, 0.0f)));
  Tensor alpha = tensor::Add(tensor::Reshape(start, Shape{1, y}),
                             tensor::Slice(masked, 0, 0, 1));
  for (int64_t t = 1; t < length; ++t) {
    Tensor scores = tensor::Add(tensor::Reshape(alpha, Shape{y, 1}), trans);
    Tensor lse = tensor::Reshape(
        tensor::LogSumExpLastDim(tensor::Transpose(scores)), Shape{1, y});
    alpha = tensor::Add(lse, tensor::Slice(masked, 0, t, 1));
  }
  Tensor log_z = tensor::Reshape(
      tensor::LogSumExpLastDim(tensor::Add(alpha, end)), Shape{});

  std::vector<float> emit_mask(static_cast<size_t>(length * y), 0.0f);
  for (int64_t t = 0; t < length; ++t) {
    emit_mask[static_cast<size_t>(t * y + gold[static_cast<size_t>(t)])] = 1.0f;
  }
  std::vector<float> trans_count(static_cast<size_t>(y * y), 0.0f);
  for (int64_t t = 1; t < length; ++t) {
    trans_count[static_cast<size_t>(gold[static_cast<size_t>(t - 1)] * y +
                                    gold[static_cast<size_t>(t)])] += 1.0f;
  }
  std::vector<float> start_mask(static_cast<size_t>(y), 0.0f);
  start_mask[static_cast<size_t>(gold.front())] = 1.0f;
  std::vector<float> end_mask(static_cast<size_t>(y), 0.0f);
  end_mask[static_cast<size_t>(gold.back())] = 1.0f;
  Tensor gold_score = tensor::Add(
      tensor::Add(
          tensor::SumAll(tensor::Mul(
              masked,
              Tensor::FromData(Shape{length, y}, std::move(emit_mask)))),
          tensor::SumAll(tensor::Mul(
              trans, Tensor::FromData(Shape{y, y}, std::move(trans_count))))),
      tensor::Add(
          tensor::SumAll(tensor::Mul(
              start, Tensor::FromData(Shape{y}, std::move(start_mask)))),
          tensor::SumAll(tensor::Mul(
              end, Tensor::FromData(Shape{y}, std::move(end_mask))))));
  Tensor nll_old = tensor::Sub(log_z, gold_score);
  auto g_old = tensor::autodiff::Grad(nll_old, {emissions_, trans, start, end});

  ASSERT_EQ(std::memcmp(nll_new.data().data(), nll_old.data().data(),
                        sizeof(float)),
            0);
  for (size_t i = 0; i < g_new.size(); ++i) {
    ASSERT_EQ(g_new[i].numel(), g_old[i].numel());
    EXPECT_EQ(std::memcmp(g_new[i].data().data(), g_old[i].data().data(),
                          static_cast<size_t>(g_new[i].numel()) * sizeof(float)),
              0)
        << "gradient " << i << " diverges from the per-timestep-transpose path";
  }
}

TEST_F(CrfTest, TrainingOnFixedPatternLearnsIt) {
  // Repeatedly minimizing the NLL of one path must make Viterbi decode it.
  const std::vector<int64_t> gold = {0, 1, 2, 0};
  util::Rng rng(7);
  Tensor fixed_emissions = Tensor::Randn(Shape{4, 3}, &rng, 0.1f);
  for (int step = 0; step < 80; ++step) {
    Tensor nll = crf_->NegLogLikelihood(fixed_emissions, gold);
    auto params = nn::ParameterTensors(crf_.get());
    auto grads = tensor::autodiff::Grad(nll, params);
    for (size_t i = 0; i < params.size(); ++i) {
      std::vector<float>* values = crf_->Parameters()[i]->mutable_data();
      for (size_t j = 0; j < values->size(); ++j) {
        (*values)[j] -= 0.2f * grads[i].at(static_cast<int64_t>(j));
      }
    }
  }
  EXPECT_EQ(crf_->Viterbi(fixed_emissions), gold);
}

TEST(CrfEdgeTest, SingleTokenSentence) {
  LinearChainCrf crf(4);
  util::Rng rng(1);
  Tensor emissions = Tensor::Randn(Shape{1, 4}, &rng);
  Tensor nll = crf.NegLogLikelihood(emissions, {2});
  EXPECT_GE(nll.item(), -1e-4);
  auto decoded = crf.Viterbi(emissions);
  EXPECT_EQ(decoded.size(), 1u);
}

TEST(CrfEdgeTest, SecondOrderThroughNll) {
  // The FEWNER meta-gradient differentiates through grad(NLL); ensure the
  // log-space forward algorithm supports create_graph.
  LinearChainCrf crf(2);
  util::Rng rng(3);
  Tensor emissions = Tensor::Randn(Shape{3, 2}, &rng, 1.0f, true);
  Tensor nll = crf.NegLogLikelihood(emissions, {0, 1, 0});
  auto g1 = tensor::autodiff::Grad(nll, {emissions}, /*create_graph=*/true);
  Tensor g_sum = tensor::SumAll(tensor::Square(g1[0]));
  auto g2 = tensor::autodiff::Grad(g_sum, {emissions});
  EXPECT_EQ(g2[0].shape(), emissions.shape());
  double norm = 0;
  for (float v : g2[0].data()) norm += std::abs(v);
  EXPECT_GT(norm, 1e-6);  // non-degenerate second-order signal
}

TEST(CrfPropertyTest, ViterbiMatchesBruteForceOnRandomInstances) {
  // 200 random (T, N, params, emissions) instances, T <= 6 and N <= 4 so the
  // N^T enumeration stays cheap; every third instance also draws a random
  // valid-tag mask.  Viterbi must return exactly the enumeration argmax.
  // Ties are broken toward the lexicographically... in practice Gaussian
  // scores never tie, so we simply require the scores to match and, when the
  // brute-force argmax is unique, the paths too.
  util::Rng rng(2024);
  for (int instance = 0; instance < 200; ++instance) {
    const int64_t num_tags = 1 + static_cast<int64_t>(rng.UniformInt(4));  // 1..4
    const int64_t length = 1 + static_cast<int64_t>(rng.UniformInt(6));    // 1..6
    LinearChainCrf crf(num_tags);
    for (tensor::Tensor* p : crf.Parameters()) {
      for (float& v : *p->mutable_data()) {
        v = static_cast<float>(rng.Gaussian(0.0, 1.0));
      }
    }
    Tensor emissions = Tensor::Randn(Shape{length, num_tags}, &rng, 1.0f);

    std::vector<bool> valid(static_cast<size_t>(num_tags), true);
    bool masked = instance % 3 == 0 && num_tags > 1;
    if (masked) {
      // Random mask with at least one valid tag.
      bool any = false;
      for (size_t j = 0; j < valid.size(); ++j) {
        valid[j] = rng.UniformInt(2) == 0;
        any = any || valid[j];
      }
      if (!any) valid[rng.UniformInt(static_cast<uint64_t>(num_tags))] = true;
    }
    const std::vector<bool>* mask = masked ? &valid : nullptr;

    std::vector<int64_t> best_path;
    double best_score = -1e300;
    int ties = 0;
    for (const auto& path : AllPaths(num_tags, length, mask)) {
      const double s = PathScore(crf, emissions, path);
      if (s > best_score) {
        best_score = s;
        best_path = path;
        ties = 1;
      } else if (s == best_score) {
        ++ties;
      }
    }
    ASSERT_FALSE(best_path.empty());

    std::vector<int64_t> viterbi = crf.Viterbi(emissions, mask);
    const double viterbi_score = PathScore(crf, emissions, viterbi);
    EXPECT_NEAR(viterbi_score, best_score, 1e-3)
        << "instance " << instance << " T=" << length << " N=" << num_tags;
    if (ties == 1) {
      EXPECT_EQ(viterbi, best_path) << "instance " << instance;
    }
    if (masked) {
      for (int64_t tag : viterbi) EXPECT_TRUE(valid[static_cast<size_t>(tag)]);
    }
  }
}

}  // namespace
}  // namespace fewner::crf
