// Tests for shapes, tensor construction, and forward semantics of every op.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/autodiff.h"
#include "tensor/eval_mode.h"
#include "tensor/matmul_kernel.h"
#include "tensor/ops.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fewner::tensor {
namespace {

TEST(ShapeTest, Basics) {
  Shape s{3, 4};
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.numel(), 12);
  EXPECT_EQ(s.ToString(), "[3, 4]");
  Shape scalar{};
  EXPECT_EQ(scalar.rank(), 0);
  EXPECT_EQ(scalar.numel(), 1);
}

TEST(ShapeTest, Strides) {
  Shape s{2, 3, 4};
  auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, BroadcastRules) {
  auto r = Shape::Broadcast(Shape{3, 1}, Shape{1, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Shape{3, 4}));

  r = Shape::Broadcast(Shape{5}, Shape{2, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Shape{2, 5}));

  r = Shape::Broadcast(Shape{}, Shape{2, 5});  // scalar broadcasts anywhere
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Shape{2, 5}));

  EXPECT_FALSE(Shape::Broadcast(Shape{3}, Shape{4}).ok());
}

TEST(ShapeTest, BroadcastableTo) {
  EXPECT_TRUE(Shape({1, 4}).BroadcastableTo(Shape{3, 4}));
  EXPECT_TRUE(Shape({}).BroadcastableTo(Shape{3, 4}));
  EXPECT_FALSE(Shape({2, 4}).BroadcastableTo(Shape{3, 4}));
  EXPECT_FALSE(Shape({3, 4}).BroadcastableTo(Shape{4}));
}

TEST(TensorTest, Construction) {
  Tensor t = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.numel(), 4);
  EXPECT_FLOAT_EQ(t.at(3), 4.0f);
  EXPECT_FALSE(t.requires_grad());

  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_FLOAT_EQ(s.item(), 2.5f);

  Tensor z = Tensor::Zeros(Shape{3});
  EXPECT_FLOAT_EQ(z.at(0) + z.at(1) + z.at(2), 0.0f);

  Tensor o = Tensor::Ones(Shape{2}, /*requires_grad=*/true);
  EXPECT_TRUE(o.requires_grad());
}

TEST(TensorTest, RandnStats) {
  util::Rng rng(3);
  Tensor t = Tensor::Randn(Shape{10000}, &rng, 2.0f);
  double mean = 0, var = 0;
  for (float v : t.data()) mean += v;
  mean /= t.numel();
  for (float v : t.data()) var += (v - mean) * (v - mean);
  var /= t.numel();
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorTest, DetachSharesValuesCutsGraph) {
  Tensor a = Tensor::Ones(Shape{2}, true);
  Tensor b = MulScalar(a, 3.0f);
  EXPECT_TRUE(b.requires_grad());
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.at(0), 3.0f);
}

TEST(OpsTest, AddSubMulDiv) {
  Tensor a = Tensor::FromData(Shape{2}, {1, 2});
  Tensor b = Tensor::FromData(Shape{2}, {3, 5});
  EXPECT_FLOAT_EQ(Add(a, b).at(1), 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).at(0), -2.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(1), 10.0f);
  EXPECT_FLOAT_EQ(Div(b, a).at(1), 2.5f);
}

TEST(OpsTest, BroadcastAddRowVector) {
  Tensor m = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromData(Shape{3}, {10, 20, 30});
  Tensor out = Add(m, row);
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(out.at(0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(5), 36.0f);
}

TEST(OpsTest, BroadcastColumnAgainstMatrix) {
  Tensor col = Tensor::FromData(Shape{2, 1}, {1, 2});
  Tensor m = Tensor::FromData(Shape{2, 3}, {0, 0, 0, 0, 0, 0});
  Tensor out = Add(m, col);
  EXPECT_FLOAT_EQ(out.at(0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(3), 2.0f);
  EXPECT_FLOAT_EQ(out.at(5), 2.0f);
}

TEST(OpsTest, ScalarBroadcast) {
  Tensor m = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(10.0f);
  EXPECT_FLOAT_EQ(Mul(m, s).at(3), 40.0f);
}

TEST(OpsTest, Unary) {
  Tensor t = Tensor::FromData(Shape{3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(Neg(t).at(0), 1.0f);
  EXPECT_FLOAT_EQ(Relu(t).at(0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(t).at(2), 2.0f);
  EXPECT_NEAR(Sigmoid(t).at(1), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(t).at(2), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(Exp(t).at(2), std::exp(2.0f), 1e-4);
  Tensor pos = Tensor::FromData(Shape{2}, {1.0f, std::exp(1.0f)});
  EXPECT_NEAR(Log(pos).at(1), 1.0f, 1e-6);
  EXPECT_NEAR(Sqrt(Tensor::FromData(Shape{1}, {9.0f})).at(0), 3.0f, 1e-6);
  EXPECT_FLOAT_EQ(Square(t).at(2), 4.0f);
}

TEST(OpsTest, ScalarForms) {
  Tensor t = Tensor::FromData(Shape{2}, {1, 2});
  EXPECT_FLOAT_EQ(AddScalar(t, 0.5f).at(0), 1.5f);
  EXPECT_FLOAT_EQ(MulScalar(t, -2.0f).at(1), -4.0f);
}

TEST(OpsTest, ReshapeTranspose) {
  Tensor t = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(t, Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(r.at(2), 3.0f);  // same row-major data

  Tensor tr = Transpose(t);
  EXPECT_EQ(tr.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(tr.at(1), 4.0f);  // tr[0,1] = t[1,0]
}

TEST(OpsTest, BroadcastToAndSumToAreAdjoint) {
  Tensor t = Tensor::FromData(Shape{3}, {1, 2, 3});
  Tensor b = BroadcastTo(t, Shape{2, 3});
  EXPECT_FLOAT_EQ(b.at(3), 1.0f);
  Tensor s = SumTo(b, Shape{3});
  EXPECT_FLOAT_EQ(s.at(0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(2), 6.0f);
}

TEST(OpsTest, ConcatAndSlice) {
  Tensor a = Tensor::FromData(Shape{1, 2}, {1, 2});
  Tensor b = Tensor::FromData(Shape{2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.at(4), 5.0f);

  Tensor mid = Slice(c, 0, 1, 2);
  EXPECT_EQ(mid.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(mid.at(0), 3.0f);

  Tensor cols = Concat({a, a}, 1);
  EXPECT_EQ(cols.shape(), (Shape{1, 4}));
  EXPECT_FLOAT_EQ(cols.at(2), 1.0f);

  Tensor col_slice = Slice(b, 1, 1, 1);
  EXPECT_EQ(col_slice.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(col_slice.at(1), 6.0f);
}

TEST(OpsTest, Reductions) {
  Tensor t = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(t).item(), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(t).item(), 3.5f);

  Tensor rows = SumAxis(t, 1, /*keepdim=*/false);
  EXPECT_EQ(rows.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(rows.at(0), 6.0f);

  Tensor cols = SumAxis(t, 0, /*keepdim=*/true);
  EXPECT_EQ(cols.shape(), (Shape{1, 3}));
  EXPECT_FLOAT_EQ(cols.at(2), 9.0f);
}

TEST(OpsTest, MaxAxis) {
  Tensor t = Tensor::FromData(Shape{2, 3}, {1, 9, 3, 7, 5, 6});
  Tensor m = MaxAxis(t, 1, /*keepdim=*/false);
  EXPECT_EQ(m.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(m.at(0), 9.0f);
  EXPECT_FLOAT_EQ(m.at(1), 7.0f);

  Tensor m0 = MaxAxis(t, 0, /*keepdim=*/true);
  EXPECT_EQ(m0.shape(), (Shape{1, 3}));
  EXPECT_FLOAT_EQ(m0.at(0), 7.0f);
}

TEST(OpsTest, MatMul) {
  Tensor a = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(3), 154.0f);
}

TEST(OpsTest, IndexSelectAndScatterAdd) {
  Tensor w = Tensor::FromData(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor sel = IndexSelectRows(w, {2, 0, 2});
  EXPECT_EQ(sel.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(sel.at(0), 5.0f);
  EXPECT_FLOAT_EQ(sel.at(2), 1.0f);

  Tensor scattered = ScatterAddRows(sel, {2, 0, 2}, 3);
  EXPECT_EQ(scattered.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(scattered.at(0), 1.0f);   // row 0 got one copy
  EXPECT_FLOAT_EQ(scattered.at(4), 10.0f);  // row 2 got two copies of 5
  EXPECT_FLOAT_EQ(scattered.at(2), 0.0f);   // row 1 untouched
}

TEST(OpsTest, UnfoldFold) {
  // [4, 2] sequence, window 2 -> [3, 4].
  Tensor t = Tensor::FromData(Shape{4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor u = Unfold1d(t, 2);
  EXPECT_EQ(u.shape(), (Shape{3, 4}));
  // Row 1 is rows 1..2 of the input: [3, 4, 5, 6].
  EXPECT_FLOAT_EQ(u.at(4), 3.0f);
  EXPECT_FLOAT_EQ(u.at(7), 6.0f);

  Tensor f = Fold1d(u, 2);
  EXPECT_EQ(f.shape(), (Shape{4, 2}));
  // Middle rows are double-counted by overlap-add.
  EXPECT_FLOAT_EQ(f.at(0), 1.0f);
  EXPECT_FLOAT_EQ(f.at(2), 6.0f);
  EXPECT_FLOAT_EQ(f.at(7), 8.0f);
}

TEST(OpsTest, LogSumExpMatchesNaive) {
  Tensor t = Tensor::FromData(Shape{2, 3}, {1, 2, 3, -1, -2, -3});
  Tensor lse = LogSumExpLastDim(t);
  EXPECT_EQ(lse.shape(), (Shape{2, 1}));
  const float expected0 =
      std::log(std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f));
  EXPECT_NEAR(lse.at(0), expected0, 1e-5);
}

TEST(OpsTest, LogSumExpStableForLargeInputs) {
  Tensor t = Tensor::FromData(Shape{1, 2}, {1000.0f, 1000.0f});
  Tensor lse = LogSumExpLastDim(t);
  EXPECT_NEAR(lse.at(0), 1000.0f + std::log(2.0f), 1e-3);
  EXPECT_TRUE(std::isfinite(lse.at(0)));
}

TEST(OpsTest, SoftmaxSumsToOne) {
  Tensor t = Tensor::FromData(Shape{2, 3}, {1, 2, 3, 0, 0, 0});
  Tensor p = SoftmaxLastDim(t);
  EXPECT_NEAR(p.at(0) + p.at(1) + p.at(2), 1.0f, 1e-5);
  EXPECT_NEAR(p.at(3), 1.0f / 3.0f, 1e-5);
  Tensor lp = LogSoftmaxLastDim(t);
  EXPECT_NEAR(std::exp(lp.at(2)), p.at(2), 1e-5);
}

TEST(OpsTest, DropoutIdentityWhenEval) {
  util::Rng rng(1);
  Tensor t = Tensor::Ones(Shape{100});
  Tensor out = Dropout(t, 0.5f, &rng, /*training=*/false);
  EXPECT_FLOAT_EQ(out.at(50), 1.0f);
}

TEST(OpsTest, DropoutPreservesExpectation) {
  util::Rng rng(1);
  Tensor t = Tensor::Ones(Shape{20000});
  Tensor out = Dropout(t, 0.3f, &rng, /*training=*/true);
  double mean = 0;
  for (float v : out.data()) mean += v;
  mean /= out.numel();
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(OpsTest, StackRows) {
  Tensor a = Tensor::FromData(Shape{3}, {1, 2, 3});
  Tensor b = Tensor::FromData(Shape{3}, {4, 5, 6});
  Tensor m = StackRows({a, b});
  EXPECT_EQ(m.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(m.at(4), 5.0f);
}

TEST(OpsTest, RequiresGradPropagates) {
  Tensor a = Tensor::Ones(Shape{2}, true);
  Tensor b = Tensor::Ones(Shape{2});
  EXPECT_TRUE(Add(a, b).requires_grad());
  EXPECT_FALSE(Add(b, b).requires_grad());
  EXPECT_TRUE(MatMul(Reshape(a, Shape{1, 2}), Reshape(b, Shape{2, 1})).requires_grad());
}

TEST(MatMulKernelTest, BlockedMatchesNaiveBitwiseOnAwkwardShapes) {
  // Shapes deliberately straddle the 4x8 register tile: remainder rows,
  // remainder columns, degenerate dims.  The kernels promise identical
  // per-element accumulation order, so equality must hold to the last bit.
  const int64_t sizes[] = {1, 2, 3, 5, 7, 9, 17, 33};
  util::Rng rng(515);
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        std::vector<float> a(static_cast<size_t>(m * k));
        std::vector<float> b(static_cast<size_t>(k * n));
        for (float& v : a) v = static_cast<float>(rng.Gaussian(0.0, 1.0));
        for (float& v : b) v = static_cast<float>(rng.Gaussian(0.0, 1.0));
        // Sprinkle exact zeros to exercise the naive kernel's skip branch.
        for (size_t i = 0; i < a.size(); i += 7) a[i] = 0.0f;
        std::vector<float> blocked(static_cast<size_t>(m * n), -1.0f);
        std::vector<float> naive(static_cast<size_t>(m * n), -2.0f);
        kernel::MatMulBlocked(a.data(), b.data(), blocked.data(), m, k, n);
        kernel::MatMulNaive(a.data(), b.data(), naive.data(), m, k, n);
        for (size_t i = 0; i < blocked.size(); ++i) {
          ASSERT_EQ(std::memcmp(&blocked[i], &naive[i], sizeof(float)), 0)
              << "m=" << m << " k=" << k << " n=" << n << " elem " << i << ": "
              << blocked[i] << " vs " << naive[i];
        }
      }
    }
  }
}

TEST(OpsTest, UnfoldFoldAreAdjoint) {
  // <Unfold(x), y> == <x, Fold(y)> for all x, y — the defining property of an
  // adjoint pair, which is exactly what autodiff uses them as.
  util::Rng rng(81);
  for (int64_t window = 1; window <= 3; ++window) {
    Tensor x = Tensor::Randn(Shape{6, 2}, &rng);
    Tensor y = Tensor::Randn(Shape{6 - window + 1, window * 2}, &rng);
    const Tensor ux = Unfold1d(x, window);
    const Tensor fy = Fold1d(y, window);
    double lhs = 0.0, rhs = 0.0;
    for (int64_t i = 0; i < ux.numel(); ++i) lhs += ux.at(i) * y.at(i);
    for (int64_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * fy.at(i);
    EXPECT_NEAR(lhs, rhs, 1e-4) << "window " << window;
  }
}

TEST(OpsTest, UnfoldFoldGradientsMatchFiniteDifferences) {
  util::Rng rng(82);
  const int64_t window = 2;
  Tensor x = Tensor::Randn(Shape{5, 3}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn(Shape{4, 6}, &rng);  // random probe direction
  auto loss_at = [&](const std::vector<float>& values) {
    Tensor t = Tensor::FromData(x.shape(), values);
    return SumAll(Mul(Unfold1d(t, window), w)).item();
  };
  Tensor loss = SumAll(Mul(Unfold1d(x, window), w));
  auto g = autodiff::Grad(loss, {x});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data(), minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    EXPECT_NEAR(g[0].at(i), (loss_at(plus) - loss_at(minus)) / (2 * eps), 1e-2)
        << "x[" << i << "]";
  }
}

TEST(OpsTest, IndexSelectScatterAddAreAdjoint) {
  // <IndexSelect(x, idx), y> == <x, ScatterAdd(y, idx)>, including repeated
  // indices, which is where a buggy scatter would drop contributions.
  util::Rng rng(83);
  const std::vector<int64_t> idx = {0, 3, 3, 1, 4, 3};
  Tensor x = Tensor::Randn(Shape{5, 2}, &rng);
  Tensor y = Tensor::Randn(Shape{static_cast<int64_t>(idx.size()), 2}, &rng);
  const Tensor sel = IndexSelectRows(x, idx);
  const Tensor sc = ScatterAddRows(y, idx, 5);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < sel.numel(); ++i) lhs += sel.at(i) * y.at(i);
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * sc.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(OpsTest, IndexSelectGradientMatchesFiniteDifferences) {
  util::Rng rng(84);
  const std::vector<int64_t> idx = {2, 0, 2, 1};
  Tensor x = Tensor::Randn(Shape{3, 2}, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn(Shape{4, 2}, &rng);
  auto loss_at = [&](const std::vector<float>& values) {
    Tensor t = Tensor::FromData(x.shape(), values);
    return SumAll(Mul(IndexSelectRows(t, idx), w)).item();
  };
  Tensor loss = SumAll(Mul(IndexSelectRows(x, idx), w));
  auto g = autodiff::Grad(loss, {x});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data(), minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    EXPECT_NEAR(g[0].at(i), (loss_at(plus) - loss_at(minus)) / (2 * eps), 1e-2)
        << "x[" << i << "]";
  }
}

using TensorDeathTest = ::testing::Test;

TEST(TensorDeathTest, MutableDataOnGraphOpOutputAborts) {
  Tensor a = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  Tensor sum = Add(a, a);
  EXPECT_DEATH(sum.mutable_data(), "leaf");
}

TEST(TensorDeathTest, MutableDataOnEvalOpOutputAborts) {
  // Eval-mode outputs have no input edges, so the leaf flag is the only thing
  // standing between a caller and an arena-recycled buffer.
  Tensor a = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  Tensor sum;
  {
    EvalMode eval;
    sum = Add(a, a);
  }
  EXPECT_DEATH(sum.mutable_data(), "leaf");
}

TEST(TensorDeathTest, MutableDataOnLeafStillWorks) {
  Tensor a = Tensor::FromData(Shape{2}, {1.0f, 2.0f});
  (*a.mutable_data())[0] = 5.0f;
  EXPECT_EQ(a.at(0), 5.0f);
  Tensor d = Add(a, a).Detach();  // Detach re-leafs an op output
  (*d.mutable_data())[0] = 7.0f;
  EXPECT_EQ(d.at(0), 7.0f);
}

}  // namespace
}  // namespace fewner::tensor
