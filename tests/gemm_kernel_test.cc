// Kernel-layer coverage for the transpose-free GEMM family and the
// deterministic intra-op dispatch (tensor/matmul_kernel.h, tensor/intraop.h).
//
// Three claims are pinned here, all to the last bit:
//   1. MatMulBlocked / MatMulNT / MatMulTN match naive ascending-k references
//      on shapes that straddle every tile remainder — and NT/TN match the
//      transpose-then-MatMulBlocked composition they replaced.
//   2. Row-sharded parallel dispatch is bitwise-invariant to the intra-op
//      budget: each output element keeps its single ascending-k accumulator
//      no matter which slab (thread) computes it.
//   3. Concurrent dispatchers on the shared slab pool do not interfere —
//      re-run under -DFEWNER_SANITIZE=thread via the `tsan` ctest label.

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/intraop.h"
#include "tensor/matmul_kernel.h"
#include "util/rng.h"

namespace fewner::tensor {
namespace {

std::vector<float> RandomVec(int64_t numel, util::Rng* rng) {
  std::vector<float> v(static_cast<size_t>(numel));
  for (float& x : v) x = static_cast<float>(rng->Gaussian(0.0, 1.0));
  return v;
}

void ExpectBitwiseEqual(const std::vector<float>& got,
                        const std::vector<float>& want, const char* what,
                        int64_t m, int64_t k, int64_t n) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(float)), 0)
        << what << " m=" << m << " k=" << k << " n=" << n << " elem " << i
        << ": " << got[i] << " vs " << want[i];
  }
}

/// Reference NT: c[i, j] = sum_kk a[i, kk] * b[j, kk], kk ascending, one
/// scalar accumulator per element.
void NaiveNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[j * k + kk];
      c[i * n + j] = acc;
    }
  }
}

/// Reference TN: c[i, j] = sum_kk a[kk, i] * b[kk, j], kk ascending.
void NaiveTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[kk * m + i] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

std::vector<float> Transposed(const std::vector<float>& src, int64_t rows,
                              int64_t cols) {
  std::vector<float> dst(src.size());
  kernel::PackTranspose(src.data(), dst.data(), rows, cols);
  return dst;
}

TEST(GemmKernelTest, FamilyMatchesNaiveReferencesBitwiseOnSweep) {
  // Every m, k, n in 1..17 hits each register-tile remainder (4-row, 8-col);
  // the larger sizes are exact tile multiples.
  std::vector<int64_t> sizes;
  for (int64_t s = 1; s <= 17; ++s) sizes.push_back(s);
  sizes.push_back(24);
  sizes.push_back(32);
  util::Rng rng(2024);
  for (int64_t m : sizes) {
    for (int64_t k : sizes) {
      for (int64_t n : sizes) {
        const std::vector<float> a_nn = RandomVec(m * k, &rng);
        const std::vector<float> b_nn = RandomVec(k * n, &rng);
        std::vector<float> got(static_cast<size_t>(m * n), -1.0f);
        std::vector<float> want(static_cast<size_t>(m * n), -2.0f);

        kernel::MatMulBlocked(a_nn.data(), b_nn.data(), got.data(), m, k, n);
        kernel::MatMulNaive(a_nn.data(), b_nn.data(), want.data(), m, k, n);
        ExpectBitwiseEqual(got, want, "NN", m, k, n);

        // NT with the same operands read as a[m, k], b[n, k].
        const std::vector<float> b_nt = RandomVec(n * k, &rng);
        kernel::MatMulNT(a_nn.data(), b_nt.data(), got.data(), m, k, n);
        NaiveNT(a_nn.data(), b_nt.data(), want.data(), m, k, n);
        ExpectBitwiseEqual(got, want, "NT", m, k, n);

        // ... and against the graph-level composition NT replaced:
        // MatMulBlocked(a, transpose(b)).
        const std::vector<float> b_nt_t = Transposed(b_nt, n, k);  // [k, n]
        kernel::MatMulBlocked(a_nn.data(), b_nt_t.data(), want.data(), m, k, n);
        kernel::MatMulNT(a_nn.data(), b_nt.data(), got.data(), m, k, n);
        ExpectBitwiseEqual(got, want, "NT-vs-transpose", m, k, n);

        // TN with a read as [k, m].
        const std::vector<float> a_tn = RandomVec(k * m, &rng);
        kernel::MatMulTN(a_tn.data(), b_nn.data(), got.data(), m, k, n);
        NaiveTN(a_tn.data(), b_nn.data(), want.data(), m, k, n);
        ExpectBitwiseEqual(got, want, "TN", m, k, n);

        const std::vector<float> a_tn_t = Transposed(a_tn, k, m);  // [m, k]
        kernel::MatMulBlocked(a_tn_t.data(), b_nn.data(), want.data(), m, k, n);
        kernel::MatMulTN(a_tn.data(), b_nn.data(), got.data(), m, k, n);
        ExpectBitwiseEqual(got, want, "TN-vs-transpose", m, k, n);
      }
    }
  }
}

TEST(GemmKernelTest, TnColumnBlockWithLeadingDimensionMatchesFullMatrix) {
  // The sharded dispatch computes a row range of C as a *column* block of A
  // addressed through lda; splicing the block results must reproduce the
  // whole-matrix call bitwise.
  util::Rng rng(7);
  const int64_t m = 23, k = 31, n = 13;
  const std::vector<float> a = RandomVec(k * m, &rng);
  const std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> whole(static_cast<size_t>(m * n));
  kernel::MatMulTN(a.data(), b.data(), whole.data(), m, k, n);
  std::vector<float> spliced(static_cast<size_t>(m * n), -1.0f);
  for (int64_t row0 : {int64_t{0}, int64_t{9}, int64_t{18}}) {
    const int64_t rows = std::min<int64_t>(9, m - row0);
    kernel::MatMulTN(a.data() + row0, b.data(), spliced.data() + row0 * n, rows,
                     k, n, /*lda=*/m);
  }
  ExpectBitwiseEqual(spliced, whole, "TN-lda", m, k, n);
}

TEST(GemmKernelTest, ShardedDispatchBitwiseEqualAcrossBudgets) {
  // Shapes chosen to clear the flop threshold (m·k·n >= 2^18) with awkward
  // row counts, so the slab partition has remainders; plus one below the
  // threshold to cover the serial gate.  Budgets beyond the hardware simply
  // queue — the result may not get faster, but it must not change.
  struct Case {
    int64_t m, k, n;
  };
  const Case cases[] = {{97, 64, 48}, {128, 80, 33}, {259, 37, 40}, {16, 8, 8}};
  util::Rng rng(99);
  for (const Case& c : cases) {
    const std::vector<float> a = RandomVec(c.m * c.k, &rng);
    const std::vector<float> b_nn = RandomVec(c.k * c.n, &rng);
    const std::vector<float> b_nt = RandomVec(c.n * c.k, &rng);
    const std::vector<float> a_tn = RandomVec(c.k * c.m, &rng);
    std::vector<float> serial_nn(static_cast<size_t>(c.m * c.n));
    std::vector<float> serial_nt(static_cast<size_t>(c.m * c.n));
    std::vector<float> serial_tn(static_cast<size_t>(c.m * c.n));
    {
      ParallelismBudget one(1);
      kernel::GemmNN(a.data(), b_nn.data(), serial_nn.data(), c.m, c.k, c.n);
      kernel::GemmNT(a.data(), b_nt.data(), serial_nt.data(), c.m, c.k, c.n);
      kernel::GemmTN(a_tn.data(), b_nn.data(), serial_tn.data(), c.m, c.k, c.n);
    }
    for (int64_t budget : {2, 3, 8}) {
      ParallelismBudget scoped(budget);
      std::vector<float> got(static_cast<size_t>(c.m * c.n), -1.0f);
      kernel::GemmNN(a.data(), b_nn.data(), got.data(), c.m, c.k, c.n);
      ExpectBitwiseEqual(got, serial_nn, "GemmNN", c.m, c.k, budget);
      kernel::GemmNT(a.data(), b_nt.data(), got.data(), c.m, c.k, c.n);
      ExpectBitwiseEqual(got, serial_nt, "GemmNT", c.m, c.k, budget);
      kernel::GemmTN(a_tn.data(), b_nn.data(), got.data(), c.m, c.k, c.n);
      ExpectBitwiseEqual(got, serial_tn, "GemmTN", c.m, c.k, budget);
    }
  }
}

TEST(GemmKernelTest, ParallelismBudgetScopesNestAndRestore) {
  const int64_t ambient = ParallelismBudget::current();
  {
    ParallelismBudget outer(4);
    EXPECT_EQ(ParallelismBudget::current(), 4);
    {
      ParallelismBudget inner(-3);  // clamps to 1
      EXPECT_EQ(ParallelismBudget::current(), 1);
      {
        ParallelismBudget innermost(2);
        EXPECT_EQ(ParallelismBudget::current(), 2);
      }
      EXPECT_EQ(ParallelismBudget::current(), 1);
    }
    EXPECT_EQ(ParallelismBudget::current(), 4);
  }
  EXPECT_EQ(ParallelismBudget::current(), ambient);
}

TEST(GemmKernelTest, BudgetScopesAreThreadLocal) {
  ParallelismBudget outer(6);
  int64_t seen_on_thread = -1;
  std::thread probe([&] { seen_on_thread = ParallelismBudget::current(); });
  probe.join();
  // The spawned thread never saw this thread's scope.
  EXPECT_NE(seen_on_thread, 6);
  EXPECT_EQ(ParallelismBudget::current(), 6);
}

TEST(GemmKernelTest, ConcurrentDispatchStress) {
  // Several threads dispatch sharded GEMMs on the shared slab pool at once —
  // the per-dispatch latch must keep them independent, and every result must
  // still match the serial reference bitwise.  Meaningful under tsan.
  util::Rng rng(1234);
  const int64_t m = 96, k = 64, n = 48;  // above the flop threshold
  const std::vector<float> a = RandomVec(m * k, &rng);
  const std::vector<float> b = RandomVec(k * n, &rng);
  const std::vector<float> a_tn = Transposed(a, m, k);  // [k, m]
  std::vector<float> want(static_cast<size_t>(m * n));
  {
    ParallelismBudget one(1);
    kernel::GemmNN(a.data(), b.data(), want.data(), m, k, n);
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ParallelismBudget scoped(3);
      std::vector<float> got(static_cast<size_t>(m * n));
      for (int it = 0; it < kIters; ++it) {
        if (it % 2 == 0) {
          kernel::GemmNN(a.data(), b.data(), got.data(), m, k, n);
        } else {
          // TN on aᵀ reproduces the same product, and the kernel contract
          // says the same bits.
          kernel::GemmTN(a_tn.data(), b.data(), got.data(), m, k, n);
        }
        if (std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) != 0) {
          ++failures[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[static_cast<size_t>(t)], 0);
}

}  // namespace
}  // namespace fewner::tensor
