// Tests for the models layer: episode encoding, the CNN-BiGRU-CRF backbone
// (shapes, conditioning modes, trainability), and the LM encoders.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/backbone.h"
#include "models/encoding.h"
#include "models/lm_encoder.h"
#include "nn/optim.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"

namespace fewner::models {
namespace {

using tensor::Shape;
using tensor::Tensor;

data::Sentence MakeSentence() {
  data::Sentence sentence;
  sentence.tokens = {"Dr.", "Breampro", "visited", "Granville", "today"};
  sentence.entities = {{1, 2, "PER"}, {3, 4, "LOC"}};
  return sentence;
}

class EncodingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text::VocabBuilder builder;
    builder.AddSentence(MakeSentence().tokens);
    builder.AddSentence({"unrelated", "words"});
    words_ = builder.BuildWordVocab();
    chars_ = builder.BuildCharVocab();
  }
  text::Vocab words_;
  text::Vocab chars_;
};

TEST_F(EncodingTest, EncodesWordsCharsAndTags) {
  EpisodeEncoder encoder(&words_, &chars_, text::NumTags(5));
  data::Sentence sentence = MakeSentence();
  EncodedSentence encoded = encoder.EncodeSentence(sentence, {"LOC", "PER"});
  EXPECT_EQ(encoded.length(), 5);
  EXPECT_EQ(encoded.word_ids.size(), 5u);
  EXPECT_EQ(encoded.char_ids[0].size(), 3u);  // "Dr."
  // PER is slot 1, LOC is slot 0.
  EXPECT_EQ(encoded.tags[1], text::BeginTag(1));
  EXPECT_EQ(encoded.tags[3], text::BeginTag(0));
  EXPECT_EQ(encoded.tags[0], text::kOutsideTag);
  EXPECT_EQ(encoded.source, &sentence);
}

TEST_F(EncodingTest, UnknownWordsMapToUnk) {
  EpisodeEncoder encoder(&words_, &chars_, text::NumTags(5));
  data::Sentence sentence;
  sentence.tokens = {"Zyzzyva"};
  EncodedSentence encoded = encoder.EncodeSentence(sentence, {});
  EXPECT_EQ(encoded.word_ids[0], text::kUnkId);
  // Characters present in the vocab still resolve (e.g. 'v' from "visited").
  EXPECT_NE(encoded.char_ids[0][4], text::kUnkId);
}

class BackboneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text::VocabBuilder builder;
    builder.AddSentence(MakeSentence().tokens);
    words_ = builder.BuildWordVocab();
    chars_ = builder.BuildCharVocab();
    config_.word_vocab_size = words_.size();
    config_.char_vocab_size = chars_.size();
    config_.word_dim = 8;
    config_.char_dim = 6;
    config_.filters_per_width = 3;
    config_.hidden_dim = 8;
    config_.max_tags = text::NumTags(5);
    config_.context_dim = 6;
    config_.dropout = 0.0f;
    encoder_ = std::make_unique<EpisodeEncoder>(&words_, &chars_, config_.max_tags);
    encoded_ = encoder_->EncodeSentence(MakeSentence(), {"PER", "LOC"});
    valid_ = text::ValidTagMask(5, config_.max_tags);
  }

  text::Vocab words_, chars_;
  BackboneConfig config_;
  std::unique_ptr<EpisodeEncoder> encoder_;
  EncodedSentence encoded_;
  std::vector<bool> valid_;
};

TEST_F(BackboneTest, EmissionShapes) {
  util::Rng rng(1);
  Backbone backbone(config_, &rng);
  Tensor phi = backbone.ZeroContext();
  Tensor emissions = backbone.Emissions(encoded_, phi);
  EXPECT_EQ(emissions.shape(), (Shape{5, config_.max_tags}));
}

TEST_F(BackboneTest, ConditioningModesAffectInputDim) {
  util::Rng rng(1);
  config_.conditioning = Conditioning::kFilm;
  Backbone film(config_, &rng);
  config_.conditioning = Conditioning::kConcat;
  Backbone concat(config_, &rng);
  EXPECT_EQ(concat.token_input_dim(), film.token_input_dim() + config_.context_dim);
  config_.conditioning = Conditioning::kNone;
  config_.context_dim = 0;
  Backbone none(config_, &rng);
  EXPECT_FALSE(none.ZeroContext().defined());
  Tensor emissions = none.Emissions(encoded_, Tensor());
  EXPECT_EQ(emissions.shape(), (Shape{5, config_.max_tags}));
}

TEST_F(BackboneTest, ContextChangesEmissionsUnderFilm) {
  util::Rng rng(1);
  Backbone backbone(config_, &rng);
  backbone.SetTraining(false);
  Tensor e0 = backbone.Emissions(encoded_, Tensor::Zeros(Shape{6}, true));
  Tensor e1 = backbone.Emissions(encoded_, Tensor::Ones(Shape{6}, true));
  double delta = 0;
  for (int64_t i = 0; i < e0.numel(); ++i) delta += std::abs(e0.at(i) - e1.at(i));
  EXPECT_GT(delta, 1e-4);
}

TEST_F(BackboneTest, GradFlowsToContextAndTheta) {
  util::Rng rng(1);
  Backbone backbone(config_, &rng);
  Tensor phi = backbone.ZeroContext();
  Tensor loss = backbone.SentenceLoss(encoded_, phi, valid_);
  EXPECT_GE(loss.item(), -1e-3);
  auto phi_grads = tensor::autodiff::Grad(loss, {phi});
  double norm = 0;
  for (float v : phi_grads[0].data()) norm += std::abs(v);
  EXPECT_GT(norm, 1e-8);
  auto theta_grads =
      tensor::autodiff::Grad(loss, nn::ParameterTensors(&backbone));
  EXPECT_EQ(theta_grads.size(), backbone.Parameters().size());
}

TEST_F(BackboneTest, NoCharCnnAblation) {
  util::Rng rng(1);
  config_.use_char_cnn = false;
  Backbone backbone(config_, &rng);
  EXPECT_EQ(backbone.token_input_dim(), config_.word_dim);
  Tensor emissions = backbone.Emissions(encoded_, backbone.ZeroContext());
  EXPECT_EQ(emissions.shape(), (Shape{5, config_.max_tags}));
}

TEST_F(BackboneTest, DecodeRespectsValidMask) {
  util::Rng rng(1);
  Backbone backbone(config_, &rng);
  backbone.SetTraining(false);
  std::vector<bool> narrow = text::ValidTagMask(2, config_.max_tags);
  auto tags = backbone.Decode(encoded_, backbone.ZeroContext(), narrow);
  EXPECT_EQ(tags.size(), 5u);
  for (int64_t tag : tags) EXPECT_LT(tag, text::NumTags(2));
}

TEST_F(BackboneTest, TrainingReducesLossOnFixedSentence) {
  util::Rng rng(1);
  Backbone backbone(config_, &rng);
  backbone.SetTraining(false);  // keep dropout off for determinism
  Tensor phi = backbone.ZeroContext();
  const float initial = backbone.SentenceLoss(encoded_, phi, valid_).item();
  nn::Adam adam(backbone.Parameters(), 0.02f);
  for (int step = 0; step < 25; ++step) {
    Tensor loss =
        backbone.SentenceLoss(encoded_, backbone.ZeroContext(), valid_);
    adam.Step(tensor::autodiff::Grad(loss, nn::ParameterTensors(&backbone)));
  }
  const float final_loss =
      backbone.SentenceLoss(encoded_, backbone.ZeroContext(), valid_).item();
  EXPECT_LT(final_loss, initial * 0.5f);
}

TEST_F(BackboneTest, PretrainedVectorsAreLoaded) {
  util::Rng rng(1);
  std::vector<std::vector<float>> table(
      static_cast<size_t>(words_.size()),
      std::vector<float>(static_cast<size_t>(config_.word_dim), 0.25f));
  config_.pretrained_word_vectors = &table;
  Backbone backbone(config_, &rng);
  EXPECT_FLOAT_EQ(backbone.word_embedding()->Parameters()[0]->at(0), 0.25f);
}

class LmEncoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text::VocabBuilder builder;
    corpus_ = data::GenerateUnlabeledText(40, 5);
    for (const auto& tokens : corpus_) builder.AddSentence(tokens);
    words_ = builder.BuildWordVocab();
    chars_ = builder.BuildCharVocab();
    encoder_ = std::make_unique<EpisodeEncoder>(&words_, &chars_, 3);
    for (const auto& tokens : corpus_) {
      data::Sentence sentence;
      sentence.tokens = tokens;
      sentences_.push_back(sentence);
    }
    for (const auto& sentence : sentences_) {
      encoded_.push_back(encoder_->EncodeSentence(sentence, {}));
    }
  }

  LmConfig SmallLmConfig() {
    LmConfig config;
    config.model_dim = 12;
    config.num_layers = 1;
    config.ffn_dim = 16;
    config.gru_hidden = 8;
    config.char_dim = 8;
    return config;
  }

  std::vector<std::vector<std::string>> corpus_;
  std::vector<data::Sentence> sentences_;
  std::vector<EncodedSentence> encoded_;
  text::Vocab words_, chars_;
  std::unique_ptr<EpisodeEncoder> encoder_;
};

TEST_F(LmEncoderTest, AllKindsEncodeWithDeclaredDims) {
  for (LmKind kind : AllLmKinds()) {
    util::Rng rng(3);
    PretrainedLmEncoder lm(kind, SmallLmConfig(), &words_, &chars_, &rng);
    Tensor features = lm.Encode(encoded_[0]);
    EXPECT_EQ(features.shape().dim(0), encoded_[0].length())
        << LmKindName(kind);
    EXPECT_EQ(features.shape().dim(1), lm.feature_dim()) << LmKindName(kind);
  }
}

TEST_F(LmEncoderTest, LmLossIsFiniteAndPositive) {
  for (LmKind kind : AllLmKinds()) {
    util::Rng rng(3);
    PretrainedLmEncoder lm(kind, SmallLmConfig(), &words_, &chars_, &rng);
    const float loss = lm.LmLoss(encoded_[0]).item();
    EXPECT_TRUE(std::isfinite(loss)) << LmKindName(kind);
    EXPECT_GT(loss, 0.0f) << LmKindName(kind);
  }
}

TEST_F(LmEncoderTest, PretrainingReducesLmLoss) {
  // GPT2-style encoder: average LM loss over a fixed probe set must drop.
  util::Rng rng(7);
  PretrainedLmEncoder lm(LmKind::kGpt2, SmallLmConfig(), &words_, &chars_, &rng);
  auto probe_loss = [&]() {
    double total = 0;
    for (int i = 0; i < 5; ++i) total += lm.LmLoss(encoded_[static_cast<size_t>(i)]).item();
    return total / 5;
  };
  const double before = probe_loss();
  util::Rng pretrain_rng(11);
  lm.Pretrain(encoded_, /*steps=*/60, /*lr=*/5e-3f, &pretrain_rng);
  EXPECT_LT(probe_loss(), before);
}

TEST_F(LmEncoderTest, NamesMatchPaper) {
  EXPECT_EQ(LmKindName(LmKind::kGpt2), "GPT2");
  EXPECT_EQ(LmKindName(LmKind::kFlair), "Flair");
  EXPECT_EQ(LmKindName(LmKind::kElmo), "ELMo");
  EXPECT_EQ(LmKindName(LmKind::kBert), "BERT");
  EXPECT_EQ(LmKindName(LmKind::kXlnet), "XLNet");
  EXPECT_EQ(AllLmKinds().size(), 5u);
}

TEST_F(LmEncoderTest, GptFeaturesAreCausal) {
  util::Rng rng(9);
  PretrainedLmEncoder lm(LmKind::kGpt2, SmallLmConfig(), &words_, &chars_, &rng);
  EncodedSentence a = encoded_[0];
  EncodedSentence b = a;
  ASSERT_GE(b.word_ids.size(), 3u);
  b.word_ids.back() = (b.word_ids.back() + 1) % words_.size();
  Tensor fa = lm.Encode(a);
  Tensor fb = lm.Encode(b);
  for (int64_t j = 0; j < fa.shape().dim(1); ++j) {
    EXPECT_FLOAT_EQ(fa.at(j), fb.at(j)) << "feature " << j;
  }
}

TEST_F(LmEncoderTest, BertFeaturesAreBidirectional) {
  util::Rng rng(9);
  PretrainedLmEncoder lm(LmKind::kBert, SmallLmConfig(), &words_, &chars_, &rng);
  EncodedSentence a = encoded_[0];
  EncodedSentence b = a;
  b.word_ids.back() = (b.word_ids.back() + 1) % words_.size();
  Tensor fa = lm.Encode(a);
  Tensor fb = lm.Encode(b);
  double delta = 0;
  for (int64_t j = 0; j < fa.shape().dim(1); ++j) delta += std::abs(fa.at(j) - fb.at(j));
  EXPECT_GT(delta, 1e-7);
}

}  // namespace
}  // namespace fewner::models
