// Tests for the data subsystem: synthetic corpus generation (determinism,
// Table-1 statistics, genre/domain structure), dataset registry, type splits,
// and the greedy-including N-way K-shot episode sampler (§3.1 properties).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "data/datasets.h"
#include "data/episode_sampler.h"
#include "data/synthetic.h"

namespace fewner::data {
namespace {

SyntheticSpec SmallSpec() {
  SyntheticSpec spec;
  spec.name = "small";
  spec.genre = "newswire";
  spec.num_types = 12;
  spec.num_sentences = 400;
  spec.mentions_per_sentence = 2.5;
  spec.seed = 11;
  spec.type_pool_offset = 7000;
  return spec;
}

TEST(SyntheticTest, DeterministicRegeneration) {
  Corpus a = GenerateCorpus(SmallSpec());
  Corpus b = GenerateCorpus(SmallSpec());
  ASSERT_EQ(a.sentences.size(), b.sentences.size());
  for (size_t i = 0; i < a.sentences.size(); i += 37) {
    EXPECT_EQ(a.sentences[i].tokens, b.sentences[i].tokens);
    EXPECT_EQ(a.sentences[i].entities.size(), b.sentences[i].entities.size());
  }
}

TEST(SyntheticTest, TypeInventoryMatchesSpec) {
  Corpus corpus = GenerateCorpus(SmallSpec());
  EXPECT_EQ(corpus.entity_types.size(), 12u);
  std::set<std::string> inventory(corpus.entity_types.begin(),
                                  corpus.entity_types.end());
  EXPECT_EQ(inventory.size(), 12u);  // distinct names
  for (const auto& sentence : corpus.sentences) {
    for (const auto& entity : sentence.entities) {
      EXPECT_TRUE(inventory.count(entity.label)) << entity.label;
    }
  }
}

TEST(SyntheticTest, SpansPointAtRealTokens) {
  Corpus corpus = GenerateCorpus(SmallSpec());
  for (const auto& sentence : corpus.sentences) {
    for (const auto& entity : sentence.entities) {
      ASSERT_GE(entity.start, 0);
      ASSERT_LT(entity.start, entity.end);
      ASSERT_LE(entity.end, static_cast<int64_t>(sentence.tokens.size()));
    }
  }
}

TEST(SyntheticTest, MentionDensityNearTarget) {
  Corpus corpus = GenerateCorpus(SmallSpec());
  const double density = static_cast<double>(corpus.MentionCount()) /
                         static_cast<double>(corpus.sentences.size());
  EXPECT_NEAR(density, 2.5, 0.35);
}

TEST(SyntheticTest, DisjointTypePoolsAcrossOffsets) {
  SyntheticSpec a = SmallSpec();
  SyntheticSpec b = SmallSpec();
  b.type_pool_offset = 8000;
  auto types_a = GenerateTypes(a);
  auto types_b = GenerateTypes(b);
  std::set<std::string> names_a;
  for (const auto& t : types_a) names_a.insert(t.name);
  for (const auto& t : types_b) EXPECT_FALSE(names_a.count(t.name));
}

TEST(SyntheticTest, MedicalGenreUsesMedicalMorphology) {
  SyntheticSpec spec = SmallSpec();
  spec.genre = "medical";
  auto types = GenerateTypes(spec);
  for (const auto& type : types) {
    EXPECT_TRUE(type.morphology == Morphology::kBioSuffix ||
                type.morphology == Morphology::kAlnumId ||
                type.morphology == Morphology::kAcronym ||
                type.morphology == Morphology::kDiseasePhrase)
        << type.name;
  }
}

TEST(SyntheticTest, GazetteersAreTypeSpecific) {
  auto types = GenerateTypes(SmallSpec());
  ASSERT_GE(types.size(), 2u);
  for (const auto& type : types) {
    EXPECT_GE(type.gazetteer.size(), 10u);
    EXPECT_FALSE(type.pre_triggers.empty());
  }
  // Gazetteers of different types overlap at most marginally.
  std::set<std::string> first(types[0].gazetteer.begin(), types[0].gazetteer.end());
  int64_t overlap = 0;
  for (const auto& surface : types[1].gazetteer) overlap += first.count(surface);
  EXPECT_LE(overlap, 2);
}

TEST(SyntheticTest, UnlabeledTextGenerates) {
  auto text = GenerateUnlabeledText(50, 3);
  EXPECT_EQ(text.size(), 50u);
  for (const auto& tokens : text) EXPECT_GE(tokens.size(), 3u);
}

TEST(DatasetsTest, Table1Statistics) {
  // Full-scale specs must match the paper's Table 1 exactly on #types and
  // #sentences (mentions are targeted through the per-sentence density).
  struct Expected {
    const char* name;
    int64_t types;
    int64_t sentences;
  };
  const Expected expected[] = {
      {kNne, 114, 39932},        {kFgNer, 200, 3941}, {kGenia, 36, 18546},
      {kAce2005, 54, 17399},     {kOntoNotes, 18, 42224},
      {kBioNlp13Cg, 16, 5939},
  };
  for (const auto& e : expected) {
    SyntheticSpec spec = SpecFor(e.name, 1.0);
    EXPECT_EQ(spec.num_types, e.types) << e.name;
    // ACE divides across 6 domains; per-domain truncation loses < 6 sentences.
    EXPECT_NEAR(static_cast<double>(spec.num_sentences),
                static_cast<double>(e.sentences), 6.0)
        << e.name;
  }
}

TEST(DatasetsTest, ScaleShrinksSentencesNotTypes) {
  Corpus small = MakeDataset(kGenia, 0.02);
  SyntheticSpec full = SpecFor(kGenia, 1.0);
  EXPECT_EQ(static_cast<int64_t>(small.entity_types.size()), full.num_types);
  // Scaling shrinks the corpus but respects the ~2000-sentence floor that
  // keeps sparse datasets viable for 5-way 5-shot episode construction.
  EXPECT_LT(static_cast<int64_t>(small.sentences.size()), full.num_sentences / 4);
  EXPECT_GE(static_cast<int64_t>(small.sentences.size()), 2000);
}

TEST(DatasetsTest, AceHasSixDomains) {
  Corpus ace = MakeDataset(kAce2005, 0.02);
  std::set<std::string> domains;
  for (const auto& sentence : ace.sentences) domains.insert(sentence.domain);
  EXPECT_EQ(domains.size(), 6u);
  for (const char* domain : kAceDomains) {
    EXPECT_TRUE(domains.count(domain)) << domain;
    Corpus filtered = ace.FilterDomain(domain);
    EXPECT_FALSE(filtered.sentences.empty());
    EXPECT_EQ(filtered.entity_types, ace.entity_types);  // intra-type
  }
}

TEST(DatasetsTest, DomainVocabularyDistanceOrdering) {
  // The generator's domain-distance knob must make BN/CTS share more filler
  // vocabulary than BC/UN — the premise behind the paper's Table 3 ordering.
  Corpus ace = MakeDataset(kAce2005, 0.05);
  auto vocab_of = [&](const std::string& domain) {
    std::set<std::string> words;
    for (const auto& s : ace.FilterDomain(domain).sentences) {
      for (const auto& token : s.tokens) words.insert(token);
    }
    return words;
  };
  auto jaccard = [](const std::set<std::string>& a, const std::set<std::string>& b) {
    int64_t inter = 0;
    for (const auto& w : a) inter += b.count(w);
    return static_cast<double>(inter) /
           static_cast<double>(a.size() + b.size() - inter);
  };
  auto bn = vocab_of("BN"), cts = vocab_of("CTS"), bc = vocab_of("BC"),
       un = vocab_of("UN");
  EXPECT_GT(jaccard(bn, cts), jaccard(bc, un));
}

TEST(DatasetsTest, SplitTypesDisjointAndSized) {
  Corpus corpus = MakeDataset(kGenia, 0.02);
  TypeSplit split = SplitTypes(corpus.entity_types, 18, 8, 10, 5);
  EXPECT_EQ(split.train.size(), 18u);
  EXPECT_EQ(split.val.size(), 8u);
  EXPECT_EQ(split.test.size(), 10u);
  std::set<std::string> all;
  for (const auto& t : split.train) all.insert(t);
  for (const auto& t : split.val) all.insert(t);
  for (const auto& t : split.test) all.insert(t);
  EXPECT_EQ(all.size(), 36u);  // no overlap
}

TEST(DatasetsTest, IntraDomainSplitSizesMatchPaper) {
  int64_t tr = 0, va = 0, te = 0;
  IntraDomainSplitSizes(kNne, &tr, &va, &te);
  EXPECT_EQ(tr, 52);
  EXPECT_EQ(va, 10);
  EXPECT_EQ(te, 15);
  IntraDomainSplitSizes(kFgNer, &tr, &va, &te);
  EXPECT_EQ(tr, 163);
  IntraDomainSplitSizes(kGenia, &tr, &va, &te);
  EXPECT_EQ(te, 10);
}

// ----- episode sampler -----

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = GenerateCorpus(SmallSpec());
    types_.assign(corpus_.entity_types.begin(), corpus_.entity_types.begin() + 8);
  }
  Corpus corpus_;
  std::vector<std::string> types_;
};

TEST_F(SamplerTest, EpisodeHasExactlyNWays) {
  EpisodeSampler sampler(&corpus_, types_, 5, 1, 4, 99);
  for (uint64_t id = 0; id < 10; ++id) {
    Episode episode = sampler.Sample(id);
    EXPECT_EQ(episode.n_way(), 5);
    std::set<std::string> distinct(episode.types.begin(), episode.types.end());
    EXPECT_EQ(distinct.size(), 5u);
    for (const auto& type : episode.types) {
      EXPECT_TRUE(std::find(types_.begin(), types_.end(), type) != types_.end());
    }
  }
}

TEST_F(SamplerTest, SupportHasAtLeastKShotsPerWay) {
  for (int64_t k : {1, 3}) {
    EpisodeSampler sampler(&corpus_, types_, 4, k, 4, 7);
    for (uint64_t id = 0; id < 8; ++id) {
      Episode episode = sampler.Sample(id);
      std::map<std::string, int64_t> counts;
      for (const Sentence* sentence : episode.support) {
        for (const auto& entity : sentence->entities) counts[entity.label] += 1;
      }
      for (const auto& way : episode.types) {
        EXPECT_GE(counts[way], k) << way << " in episode " << id;
      }
    }
  }
}

TEST_F(SamplerTest, MinimalityProperty) {
  // Paper §3.1: removing any support sentence must leave some way below K.
  EpisodeSampler sampler(&corpus_, types_, 5, 2, 4, 13);
  for (uint64_t id = 0; id < 6; ++id) {
    Episode episode = sampler.Sample(id);
    for (size_t drop = 0; drop < episode.support.size(); ++drop) {
      std::map<std::string, int64_t> counts;
      for (size_t i = 0; i < episode.support.size(); ++i) {
        if (i == drop) continue;
        for (const auto& entity : episode.support[i]->entities) {
          counts[entity.label] += 1;
        }
      }
      bool some_below_k = false;
      for (const auto& way : episode.types) {
        if (counts[way] < 2) some_below_k = true;
      }
      EXPECT_TRUE(some_below_k) << "episode " << id << " sentence " << drop
                                << " is removable";
    }
  }
}

TEST_F(SamplerTest, SupportAndQueryDisjoint) {
  EpisodeSampler sampler(&corpus_, types_, 5, 1, 6, 21);
  for (uint64_t id = 0; id < 10; ++id) {
    Episode episode = sampler.Sample(id);
    std::set<const Sentence*> support(episode.support.begin(),
                                      episode.support.end());
    for (const Sentence* q : episode.query) EXPECT_FALSE(support.count(q));
  }
}

TEST_F(SamplerTest, QuerySentencesMentionEpisodeTypes) {
  EpisodeSampler sampler(&corpus_, types_, 5, 1, 6, 23);
  Episode episode = sampler.Sample(0);
  std::set<std::string> ways(episode.types.begin(), episode.types.end());
  for (const Sentence* sentence : episode.query) {
    bool has_way = false;
    for (const auto& entity : sentence->entities) has_way |= ways.count(entity.label) > 0;
    EXPECT_TRUE(has_way);
  }
}

TEST_F(SamplerTest, DeterministicPerId) {
  EpisodeSampler a(&corpus_, types_, 5, 1, 4, 55);
  EpisodeSampler b(&corpus_, types_, 5, 1, 4, 55);
  for (uint64_t id : {0ull, 3ull, 9ull}) {
    Episode ea = a.Sample(id);
    Episode eb = b.Sample(id);
    EXPECT_EQ(ea.types, eb.types);
    EXPECT_EQ(ea.support, eb.support);
    EXPECT_EQ(ea.query, eb.query);
  }
}

TEST_F(SamplerTest, DifferentIdsDiffer) {
  EpisodeSampler sampler(&corpus_, types_, 5, 1, 4, 55);
  Episode a = sampler.Sample(0);
  Episode b = sampler.Sample(1);
  EXPECT_TRUE(a.types != b.types || a.support != b.support);
}

TEST_F(SamplerTest, SupportAndQueryAreLengthSortedLongestFirst) {
  // Batch-first execution pads each set to its max length, so the sampler
  // hands out both sets longest-first (stable, deterministic per id).
  EpisodeSampler sampler(&corpus_, types_, 5, 2, 6, 31);
  for (uint64_t id = 0; id < 10; ++id) {
    Episode episode = sampler.Sample(id);
    for (const auto* set : {&episode.support, &episode.query}) {
      for (size_t i = 1; i < set->size(); ++i) {
        EXPECT_GE((*set)[i - 1]->tokens.size(), (*set)[i]->tokens.size())
            << "episode " << id << " position " << i;
      }
    }
  }
}

TEST_F(SamplerTest, RespectsQuerySizeCap) {
  EpisodeSampler sampler(&corpus_, types_, 5, 1, 3, 77);
  Episode episode = sampler.Sample(0);
  EXPECT_LE(episode.query.size(), 3u);
  EXPECT_GE(episode.query.size(), 1u);
}

TEST(SlotsForTest, MapsTypesToSlots) {
  Sentence sentence;
  sentence.tokens = {"a", "b", "c"};
  sentence.entities = {{0, 1, "PER"}, {1, 2, "ORG"}, {2, 3, "LOC"}};
  auto slots = SlotsFor(sentence, {"ORG", "PER"});
  EXPECT_EQ(slots, (std::vector<int64_t>{1, 0, -1}));
}

}  // namespace
}  // namespace fewner::data
