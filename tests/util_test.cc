// Tests for the util subsystem: Status/Result, Rng determinism and statistics,
// flags, string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace fewner::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 1000 draws
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(42);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) count1 += (rng.Categorical(weights) == 1);
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(RngTest, ForkIsIndependentOfDrawPosition) {
  Rng a(9);
  Rng fork_before = a.Fork(3);
  a.Next();
  a.Next();
  Rng fork_after = a.Fork(3);
  EXPECT_EQ(fork_before.Next(), fork_after.Next());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng a(9);
  EXPECT_NE(a.Fork(1).Next(), a.Fork(2).Next());
}

TEST(RngTest, ForkSameStreamIdIsDeterministic) {
  // (seed, stream_id) fully determines a forked stream — the property the
  // episode-parallel trainer leans on to key per-task randomness by episode id.
  Rng a(123), b(123);
  for (uint64_t stream = 0; stream < 16; ++stream) {
    Rng fork_a = a.Fork(stream);
    Rng fork_b = b.Fork(stream);
    for (int draw = 0; draw < 8; ++draw) EXPECT_EQ(fork_a.Next(), fork_b.Next());
  }
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng forked(77);
  Rng untouched(77);
  for (uint64_t stream = 0; stream < 8; ++stream) forked.Fork(stream);
  for (int draw = 0; draw < 16; ++draw) {
    EXPECT_EQ(forked.Next(), untouched.Next());
  }
}

TEST(RngTest, PreForkedStreamsReproduceSerialDrawSequence) {
  // Serial reference: fork per-episode streams lazily, in episode order, and
  // drain each in turn.
  Rng serial_parent(42);
  std::vector<uint64_t> serial;
  for (uint64_t episode = 0; episode < 8; ++episode) {
    Rng stream = serial_parent.Fork(episode);
    for (int draw = 0; draw < 4; ++draw) serial.push_back(stream.Next());
  }

  // Parallel pattern: pre-fork every stream up front, then consume them in a
  // scrambled worker-completion order.  The per-episode draws must be the
  // same as the serial pass — forked streams are pure functions of the id.
  Rng parallel_parent(42);
  std::vector<Rng> streams;
  for (uint64_t episode = 0; episode < 8; ++episode) {
    streams.push_back(parallel_parent.Fork(episode));
  }
  const size_t worker_order[] = {5, 0, 7, 2, 6, 1, 4, 3};
  std::vector<std::vector<uint64_t>> draws(8);
  for (size_t episode : worker_order) {
    for (int draw = 0; draw < 4; ++draw) {
      draws[episode].push_back(streams[episode].Next());
    }
  }
  std::vector<uint64_t> parallel;
  for (const auto& episode_draws : draws) {
    parallel.insert(parallel.end(), episode_draws.begin(), episode_draws.end());
  }
  EXPECT_EQ(serial, parallel);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(HashStringTest, StableAndDistinct) {
  EXPECT_EQ(HashString("protein"), HashString("protein"));
  EXPECT_NE(HashString("protein"), HashString("proteins"));
  EXPECT_NE(HashString(""), HashString(" "));
}

TEST(FlagsTest, DefaultsAndOverrides) {
  FlagParser parser;
  parser.AddInt("episodes", 100, "number of eval episodes");
  parser.AddDouble("lr", 0.1, "inner learning rate");
  parser.AddString("dataset", "nne", "dataset name");
  parser.AddBool("verbose", false, "verbose logging");

  const char* argv[] = {"prog", "--episodes", "250", "--lr=0.05", "--verbose"};
  ASSERT_TRUE(parser.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(parser.GetInt("episodes"), 250);
  EXPECT_DOUBLE_EQ(parser.GetDouble("lr"), 0.05);
  EXPECT_EQ(parser.GetString("dataset"), "nne");
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser parser;
  parser.AddInt("episodes", 100, "n");
  const char* argv[] = {"prog", "--episode", "250"};
  EXPECT_FALSE(parser.Parse(3, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, BadIntIsError) {
  FlagParser parser;
  parser.AddInt("episodes", 100, "n");
  const char* argv[] = {"prog", "--episodes", "many"};
  EXPECT_FALSE(parser.Parse(3, const_cast<char**>(argv)).ok());
}

TEST(StringUtilTest, SplitSkipsEmpty) {
  auto parts = Split("a  b c ", ' ');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("B-PER", "B-"));
  EXPECT_FALSE(StartsWith("O", "B-"));
  EXPECT_TRUE(EndsWith("kinase", "ase"));
}

TEST(StringUtilTest, FormatAndPad) {
  EXPECT_EQ(FormatDouble(23.745, 2), "23.75");  // rounds half up at this value
  EXPECT_EQ(Pad("ab", 5, true), "   ab");
  EXPECT_EQ(Pad("ab", 5, false), "ab   ");
  EXPECT_EQ(Pad("abcdef", 3, true), "abcdef");
}

}  // namespace
}  // namespace fewner::util
