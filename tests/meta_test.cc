// Integration tests for the meta-learning methods on a tiny synthetic world:
// adaptation must reduce support loss, training must leave models functional,
// and every method must produce well-formed predictions on the same episodes.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "meta/fewner.h"
#include "meta/finetune.h"
#include "meta/grad_accumulator.h"
#include "meta/lm_tagger.h"
#include "meta/maml.h"
#include "meta/protonet.h"
#include "meta/snail.h"
#include "models/lm_encoder.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"

namespace fewner::meta {
namespace {

using tensor::Tensor;

/// Tiny shared fixture: small corpus, small model, few iterations.
class MetaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec;
    spec.name = "tiny";
    spec.genre = "newswire";
    spec.num_types = 8;
    spec.num_sentences = 260;
    spec.mentions_per_sentence = 2.0;
    spec.seed = 3;
    spec.type_pool_offset = 7500;
    corpus_ = data::GenerateCorpus(spec);

    text::VocabBuilder builder;
    for (const auto& sentence : corpus_.sentences) builder.AddSentence(sentence.tokens);
    words_ = builder.BuildWordVocab();
    chars_ = builder.BuildCharVocab();

    config_.word_vocab_size = words_.size();
    config_.char_vocab_size = chars_.size();
    config_.word_dim = 10;
    config_.char_dim = 6;
    config_.filters_per_width = 4;
    config_.hidden_dim = 10;
    config_.max_tags = text::NumTags(3);
    config_.context_dim = 8;
    config_.dropout = 0.1f;

    encoder_ = std::make_unique<models::EpisodeEncoder>(&words_, &chars_,
                                                        config_.max_tags);
    sampler_ = std::make_unique<data::EpisodeSampler>(
        &corpus_, corpus_.entity_types, 3, 1, 4, 17);

    train_config_.iterations = 3;
    train_config_.meta_batch = 2;
    train_config_.train_query_size = 2;
  }

  models::EncodedEpisode EncodeEpisode(uint64_t id) {
    data::Episode episode = sampler_->Sample(id);
    if (episode.query.size() > 2) episode.query.resize(2);
    return encoder_->Encode(episode);
  }

  void CheckPredictions(FewShotMethod* method) {
    models::EncodedEpisode episode = EncodeEpisode(100);
    auto predictions = method->AdaptAndPredict(episode);
    ASSERT_EQ(predictions.size(), episode.query.size());
    for (size_t q = 0; q < predictions.size(); ++q) {
      ASSERT_EQ(static_cast<int64_t>(predictions[q].size()),
                episode.query[q].length());
      for (int64_t tag : predictions[q]) {
        EXPECT_GE(tag, 0);
        EXPECT_LT(tag, config_.max_tags);
        EXPECT_TRUE(episode.valid_tags[static_cast<size_t>(tag)]);
      }
    }
    // Evaluation of well-formed predictions must yield a score in [0, 1].
    const double f1 = eval::EpisodeF1(episode, predictions);
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0);
  }

  data::Corpus corpus_;
  text::Vocab words_, chars_;
  models::BackboneConfig config_;
  std::unique_ptr<models::EpisodeEncoder> encoder_;
  std::unique_ptr<data::EpisodeSampler> sampler_;
  TrainConfig train_config_;
};

TEST_F(MetaTest, FewnerInnerLoopReducesSupportLoss) {
  util::Rng rng(1);
  Fewner fewner(config_, &rng);
  fewner.backbone()->SetTraining(false);
  models::EncodedEpisode episode = EncodeEpisode(0);
  Tensor phi0 = fewner.backbone()->ZeroContext();
  const float before =
      fewner.backbone()->BatchLoss(episode.support, phi0, episode.valid_tags).item();
  Tensor phi = fewner.AdaptContext(episode.support, episode.valid_tags, 6, 0.1f,
                                   /*create_graph=*/false);
  const float after =
      fewner.backbone()->BatchLoss(episode.support, phi, episode.valid_tags).item();
  EXPECT_LT(after, before);
}

TEST_F(MetaTest, FewnerAdaptedPhiIsFunctionOfTheta) {
  // With create_graph, φ_k must carry gradient back to θ (the second-order
  // path of Eq. 6).
  util::Rng rng(1);
  Fewner fewner(config_, &rng);
  fewner.backbone()->SetTraining(false);
  models::EncodedEpisode episode = EncodeEpisode(0);
  Tensor phi = fewner.AdaptContext(episode.support, episode.valid_tags, 2, 0.1f,
                                   /*create_graph=*/true);
  Tensor probe = tensor::SumAll(tensor::Square(phi));
  auto grads = tensor::autodiff::Grad(
      probe, nn::ParameterTensors(fewner.backbone()));
  double total = 0;
  for (const auto& g : grads) {
    for (float v : g.data()) total += std::abs(v);
  }
  EXPECT_GT(total, 1e-8);
}

TEST_F(MetaTest, FewnerTrainStepRunsAndPredicts) {
  util::Rng rng(1);
  Fewner fewner(config_, &rng);
  fewner.Train(*sampler_, *encoder_, train_config_);
  CheckPredictions(&fewner);
}

TEST_F(MetaTest, FewnerTrainingMovesTheta) {
  util::Rng rng(1);
  Fewner fewner(config_, &rng);
  auto before = nn::SnapshotParameterValues(fewner.backbone());
  fewner.Train(*sampler_, *encoder_, train_config_);
  auto after = nn::SnapshotParameterValues(fewner.backbone());
  double delta = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    for (size_t j = 0; j < before[i].size(); ++j) {
      delta += std::abs(before[i][j] - after[i][j]);
    }
  }
  EXPECT_GT(delta, 1e-4);
}

TEST_F(MetaTest, MamlInnerAdaptReducesSupportLossAndRestores) {
  util::Rng rng(1);
  Maml maml(config_, &rng);
  maml.backbone()->SetTraining(false);
  models::EncodedEpisode episode = EncodeEpisode(0);
  auto snapshot = nn::SnapshotParameterValues(maml.backbone());
  const float before =
      maml.backbone()->BatchLoss(episode.support, Tensor(), episode.valid_tags).item();
  auto adapted = maml.InnerAdapt(episode.support, episode.valid_tags, 4, 0.1f,
                                 /*create_graph=*/false);
  float after = 0;
  {
    nn::ParameterPatch patch(maml.backbone()->Parameters(), adapted);
    after = maml.backbone()
                ->BatchLoss(episode.support, Tensor(), episode.valid_tags)
                .item();
  }
  EXPECT_LT(after, before);
  // Patch destruction restored the original parameters.
  auto restored = nn::SnapshotParameterValues(maml.backbone());
  for (size_t i = 0; i < snapshot.size(); ++i) EXPECT_EQ(snapshot[i], restored[i]);
}

TEST_F(MetaTest, MamlTrainsAndPredicts) {
  util::Rng rng(1);
  Maml maml(config_, &rng);
  maml.Train(*sampler_, *encoder_, train_config_);
  CheckPredictions(&maml);
}

TEST_F(MetaTest, FineTuneTrainsAndPredictionRestoresParameters) {
  util::Rng rng(1);
  FineTune finetune(config_, &rng);
  finetune.Train(*sampler_, *encoder_, train_config_);
  auto before = nn::SnapshotParameterValues(finetune.backbone());
  CheckPredictions(&finetune);
  auto after = nn::SnapshotParameterValues(finetune.backbone());
  for (size_t i = 0; i < before.size(); ++i) EXPECT_EQ(before[i], after[i]);
}

TEST_F(MetaTest, ProtoNetTrainsAndPredicts) {
  util::Rng rng(1);
  ProtoNet protonet(config_, &rng);
  protonet.Train(*sampler_, *encoder_, train_config_);
  CheckPredictions(&protonet);
}

TEST_F(MetaTest, SnailTrainsAndPredicts) {
  util::Rng rng(1);
  Snail snail(config_, &rng);
  snail.Train(*sampler_, *encoder_, train_config_);
  CheckPredictions(&snail);
}

TEST_F(MetaTest, LmTaggerTrainsAndPredicts) {
  util::Rng rng(1);
  models::LmConfig lm_config;
  lm_config.model_dim = 12;
  lm_config.num_layers = 1;
  lm_config.ffn_dim = 16;
  lm_config.gru_hidden = 8;
  auto lm = std::make_shared<models::PretrainedLmEncoder>(
      models::LmKind::kGpt2, lm_config, &words_, &chars_, &rng);
  LmCrfTagger tagger(lm, config_.max_tags, &rng);
  EXPECT_EQ(tagger.name(), "GPT2");
  tagger.Train(*sampler_, *encoder_, train_config_);
  CheckPredictions(&tagger);
}

/// Finite-difference gradient of the support loss w.r.t. φ at φ = 0.
std::vector<float> PhiGradientByFiniteDifference(
    const models::Backbone& net,
    const std::vector<models::EncodedSentence>& support,
    const std::vector<bool>& valid_tags, double h) {
  const int64_t dim = net.ZeroContext().shape().dim(0);
  std::vector<float> grad(static_cast<size_t>(dim));
  for (int64_t i = 0; i < dim; ++i) {
    std::vector<float> up(static_cast<size_t>(dim), 0.0f);
    std::vector<float> down(static_cast<size_t>(dim), 0.0f);
    up[static_cast<size_t>(i)] = static_cast<float>(h);
    down[static_cast<size_t>(i)] = static_cast<float>(-h);
    const float loss_up =
        net.BatchLoss(support,
                      Tensor::FromData(tensor::Shape{dim}, std::move(up)),
                      valid_tags)
            .item();
    const float loss_down =
        net.BatchLoss(support,
                      Tensor::FromData(tensor::Shape{dim}, std::move(down)),
                      valid_tags)
            .item();
    grad[static_cast<size_t>(i)] =
        static_cast<float>((loss_up - loss_down) / (2.0 * h));
  }
  return grad;
}

TEST_F(MetaTest, FewnerInnerStepMatchesFiniteDifferenceClipInactive) {
  // One clipped inner step from φ = 0 is φ₁ = −α · clip_scale · ∂L/∂φ.  On a
  // normal-size support set the gradient norm stays under the clip threshold
  // (clip_scale = 1), so φ₁ must equal −α·g for an independently
  // finite-differenced g.
  models::BackboneConfig smooth = config_;
  smooth.dropout = 0.0f;
  util::Rng rng(1);
  Fewner fewner(smooth, &rng);
  fewner.backbone()->SetTraining(false);

  // BatchLoss sums over sentences, so a full support set usually clips; scan
  // episodes for a single support sentence whose gradient norm sits safely
  // below the threshold to test the unclipped branch.
  std::vector<models::EncodedSentence> support;
  std::vector<bool> valid_tags;
  std::vector<float> g;
  double norm = 0.0;
  for (uint64_t id = 0; id < 20 && support.empty(); ++id) {
    models::EncodedEpisode episode = EncodeEpisode(id);
    for (const auto& sentence : episode.support) {
      std::vector<models::EncodedSentence> candidate = {sentence};
      std::vector<float> grad = PhiGradientByFiniteDifference(
          *fewner.backbone(), candidate, episode.valid_tags, 1e-2);
      double norm_sq = 0.0;
      for (float v : grad) norm_sq += static_cast<double>(v) * v;
      const double candidate_norm = std::sqrt(norm_sq);
      if (candidate_norm > 1e-3 && candidate_norm < 4.5) {
        support = std::move(candidate);
        valid_tags = episode.valid_tags;
        g = std::move(grad);
        norm = candidate_norm;
        break;
      }
    }
  }
  ASSERT_FALSE(support.empty())
      << "no support sentence with an unclipped gradient in 20 episodes";

  const float lr = 0.1f;
  Tensor phi = fewner.AdaptContext(support, valid_tags, 1, lr,
                                   /*create_graph=*/false);
  const auto& actual = phi.data();
  ASSERT_EQ(actual.size(), g.size());
  for (size_t i = 0; i < g.size(); ++i) {
    const float expected = -lr * g[i];
    EXPECT_NEAR(actual[i], expected, 0.05 * std::abs(expected) + 1e-3)
        << "φ entry " << i << " (gradient norm " << norm << ")";
  }
}

TEST_F(MetaTest, FewnerInnerStepMatchesFiniteDifferenceClipActive) {
  // BatchLoss sums over sentences, so replicating the support set scales the
  // gradient past the clip threshold; the step must then be
  // φ₁ = −α · (5/‖g‖) · g.
  models::BackboneConfig smooth = config_;
  smooth.dropout = 0.0f;
  util::Rng rng(1);
  Fewner fewner(smooth, &rng);
  fewner.backbone()->SetTraining(false);
  models::EncodedEpisode episode = EncodeEpisode(0);

  std::vector<models::EncodedSentence> big_support;
  for (int copy = 0; copy < 25; ++copy) {
    big_support.insert(big_support.end(), episode.support.begin(),
                       episode.support.end());
  }
  const std::vector<float> g = PhiGradientByFiniteDifference(
      *fewner.backbone(), big_support, episode.valid_tags, 1e-2);
  double norm_sq = 0.0;
  for (float v : g) norm_sq += static_cast<double>(v) * v;
  const double norm = std::sqrt(norm_sq);
  ASSERT_GT(norm, 5.0) << "replication did not push the gradient past the clip";

  const float lr = 0.1f;
  const double clip_scale = 5.0 / norm;
  Tensor phi = fewner.AdaptContext(big_support, episode.valid_tags, 1, lr,
                                   /*create_graph=*/false);
  const auto& actual = phi.data();
  ASSERT_EQ(actual.size(), g.size());
  for (size_t i = 0; i < g.size(); ++i) {
    const float expected = static_cast<float>(-lr * clip_scale * g[i]);
    EXPECT_NEAR(actual[i], expected, 0.05 * std::abs(expected) + 1e-3)
        << "φ entry " << i;
  }
}

// ------------------------------------------------------- GradAccumulator

TEST(GradAccumulatorTest, AveragesInDoublePrecision) {
  using tensor::Shape;
  std::vector<Tensor> params = {
      Tensor::FromData(Shape{2}, {0.0f, 0.0f}, /*requires_grad=*/true),
      Tensor::FromData(Shape{1, 2}, {0.0f, 0.0f}, /*requires_grad=*/true)};
  GradAccumulator accumulator(params);
  EXPECT_FALSE(accumulator.finished());
  accumulator.Add({Tensor::FromData(Shape{2}, {1.5f, -2.25f}),
                   Tensor::FromData(Shape{1, 2}, {4.0f, 0.5f})});
  accumulator.Add({Tensor::FromData(Shape{2}, {0.5f, 0.25f}),
                   Tensor::FromData(Shape{1, 2}, {-1.0f, 1.5f})});

  // The raw buffers hold the exact double sums.
  ASSERT_EQ(accumulator.buffers().size(), 2u);
  EXPECT_EQ(accumulator.buffers()[0], (std::vector<double>{2.0, -2.0}));
  EXPECT_EQ(accumulator.buffers()[1], (std::vector<double>{3.0, 2.0}));

  std::vector<Tensor> mean = accumulator.Finish(0.5);
  EXPECT_TRUE(accumulator.finished());
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[0].shape(), params[0].shape());
  EXPECT_EQ(mean[1].shape(), params[1].shape());
  EXPECT_EQ(mean[0].data(), (std::vector<float>{1.0f, -1.0f}));
  EXPECT_EQ(mean[1].data(), (std::vector<float>{1.5f, 1.0f}));
}

TEST(GradAccumulatorTest, LayoutMismatchAborts) {
  using tensor::Shape;
  std::vector<Tensor> params = {
      Tensor::FromData(Shape{2}, {0.0f, 0.0f}, /*requires_grad=*/true)};
  GradAccumulator wrong_count(params);
  EXPECT_DEATH(wrong_count.Add({Tensor::FromData(Shape{2}, {1.0f, 2.0f}),
                                Tensor::FromData(Shape{1}, {3.0f})}),
               "layout mismatch");
  GradAccumulator wrong_size(params);
  EXPECT_DEATH(wrong_size.Add({Tensor::FromData(Shape{3}, {1.0f, 2.0f, 3.0f})}),
               "size mismatch");
}

TEST(GradAccumulatorTest, ReuseAfterFinishAborts) {
  using tensor::Shape;
  std::vector<Tensor> params = {
      Tensor::FromData(Shape{1}, {0.0f}, /*requires_grad=*/true)};
  GradAccumulator accumulator(params);
  accumulator.Add({Tensor::FromData(Shape{1}, {2.0f})});
  accumulator.Finish(1.0);
  EXPECT_DEATH(accumulator.Add({Tensor::FromData(Shape{1}, {1.0f})}),
               "after Finish");
  EXPECT_DEATH(accumulator.Finish(1.0), "called twice");
}

TEST_F(MetaTest, MethodsShareEvaluationEpisodes) {
  // Deterministic sampling means two methods see the exact same eval task.
  data::Episode a = sampler_->Sample(42);
  data::Episode b = sampler_->Sample(42);
  EXPECT_EQ(a.types, b.types);
  EXPECT_EQ(a.support, b.support);
}

}  // namespace
}  // namespace fewner::meta
