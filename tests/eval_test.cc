// Tests for the evaluation layer: statistics, reporting, episode F1, scenario
// construction, and an end-to-end (tiny) experiment run.

#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "eval/statistics.h"
#include "text/bio.h"

namespace fewner::eval {
namespace {

TEST(StatisticsTest, SummarizeMatchesHand) {
  ScoreSummary s = Summarize({0.2, 0.4, 0.6});
  EXPECT_NEAR(s.mean, 0.4, 1e-9);
  EXPECT_NEAR(s.stddev, std::sqrt(0.08 / 3), 1e-9);
  EXPECT_NEAR(s.ci95, 1.96 * s.stddev / std::sqrt(3.0), 1e-9);
  EXPECT_EQ(s.count, 3);
}

TEST(StatisticsTest, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).count, 0);
  ScoreSummary s = Summarize({0.5});
  EXPECT_NEAR(s.mean, 0.5, 1e-9);
  EXPECT_NEAR(s.ci95, 0.0, 1e-9);
}

TEST(ReportingTest, FormatCellMatchesPaperStyle) {
  ScoreSummary s;
  s.mean = 0.2374;
  s.ci95 = 0.0065;
  EXPECT_EQ(FormatCell(s), "23.74 ± 0.65%");
}

TEST(ReportingTest, TableRenders) {
  Table table({"Methods", "1-shot"});
  table.AddSection("Static");
  table.AddRow({"FewNER", "23.74 ± 0.65%"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("FewNER"), std::string::npos);
  EXPECT_NE(out.find("Static"), std::string::npos);
  EXPECT_NE(out.find("1-shot"), std::string::npos);
}

TEST(EpisodeF1Test, PerfectAndEmptyPredictions) {
  models::EncodedEpisode episode;
  episode.n_way = 1;
  episode.valid_tags = text::ValidTagMask(1, 3);
  models::EncodedSentence sentence;
  sentence.word_ids = {5, 6, 7};
  sentence.tags = {text::BeginTag(0), text::InsideTag(0), text::kOutsideTag};
  episode.query.push_back(sentence);

  EXPECT_NEAR(EpisodeF1(episode, {{1, 2, 0}}), 1.0, 1e-9);
  EXPECT_NEAR(EpisodeF1(episode, {{0, 0, 0}}), 0.0, 1e-9);
  // Boundary error: predicted span [0,1) vs gold [0,2).
  EXPECT_NEAR(EpisodeF1(episode, {{1, 0, 0}}), 0.0, 1e-9);
}

TEST(ScenarioTest, IntraDomainTypesDisjoint) {
  Scenario scenario = MakeIntraDomainScenario(data::kGenia, 0.02, 3);
  EXPECT_EQ(scenario.source_types.size(), 18u);
  EXPECT_EQ(scenario.target_types.size(), 10u);
  for (const auto& t : scenario.target_types) {
    EXPECT_TRUE(std::find(scenario.source_types.begin(),
                          scenario.source_types.end(),
                          t) == scenario.source_types.end())
        << t << " appears in both splits";
  }
}

TEST(ScenarioTest, CrossDomainIntraTypeSharesTypes) {
  Scenario scenario = MakeCrossDomainIntraType("BN", "CTS", 0.02, 3);
  EXPECT_EQ(scenario.source_types, scenario.target_types);
  EXPECT_NE(scenario.source.sentences.size(), 0u);
  EXPECT_NE(scenario.target.sentences.size(), 0u);
  for (const auto& s : scenario.source.sentences) EXPECT_EQ(s.domain, "BN");
  for (const auto& s : scenario.target.sentences) EXPECT_EQ(s.domain, "CTS");
}

TEST(ScenarioTest, CrossDomainCrossTypeDisjointTypeSpaces) {
  Scenario scenario =
      MakeCrossDomainCrossType(data::kOntoNotes, data::kBioNlp13Cg, 0.02, 3);
  for (const auto& t : scenario.target_types) {
    EXPECT_TRUE(std::find(scenario.source_types.begin(),
                          scenario.source_types.end(),
                          t) == scenario.source_types.end());
  }
}

TEST(MethodRegistryTest, NamesRoundTrip) {
  EXPECT_EQ(AllMethods().size(), 10u);
  for (MethodId id : AllMethods()) {
    EXPECT_EQ(MethodFromName(MethodName(id)), id);
  }
  EXPECT_EQ(MethodFromName("fewner"), MethodId::kFewner);
  EXPECT_EQ(MethodFromName("BERT"), MethodId::kBert);
}

TEST(ExperimentRunnerTest, EndToEndTinyRun) {
  // Smallest meaningful end-to-end run: train ProtoNet for a couple of
  // iterations and evaluate on two episodes.  Checks the whole wiring.
  ExperimentConfig config;
  config.eval_episodes = 2;
  config.eval_query_size = 2;
  config.data_scale = 0.02;
  config.train.iterations = 2;
  config.train.meta_batch = 2;
  config.backbone.word_dim = 8;
  config.backbone.char_dim = 6;
  config.backbone.filters_per_width = 3;
  config.backbone.hidden_dim = 8;
  config.backbone.context_dim = 8;
  Scenario scenario = MakeIntraDomainScenario(data::kGenia, 0.02, 3);
  ExperimentRunner runner(std::move(scenario), config);
  EvalResult result = runner.Run(MethodId::kProtoNet);
  EXPECT_EQ(result.method, "ProtoNet");
  EXPECT_EQ(result.f1.count, 2);
  EXPECT_GE(result.f1.mean, 0.0);
  EXPECT_LE(result.f1.mean, 1.0);
}

TEST(ExperimentRunnerTest, EvalTaskListIsSharedAcrossMethods) {
  ExperimentConfig config;
  config.eval_episodes = 1;
  config.data_scale = 0.02;
  Scenario scenario = MakeIntraDomainScenario(data::kGenia, 0.02, 3);
  ExperimentRunner runner(std::move(scenario), config);
  data::Episode a = runner.eval_sampler().Sample(0);
  data::Episode b = runner.eval_sampler().Sample(0);
  EXPECT_EQ(a.types, b.types);
}

}  // namespace
}  // namespace fewner::eval

#include "eval/error_analysis.h"

namespace fewner::eval {
namespace {

TEST(ErrorAnalysisTest, ClassifiesAllKinds) {
  using text::Span;
  std::vector<Span> gold = {{0, 2, "0"}, {4, 5, "1"}, {7, 8, "2"}};
  std::vector<Span> predicted = {
      {0, 2, "0"},   // correct
      {4, 5, "0"},   // type error (exact extent, wrong label)
      {6, 8, "2"},   // boundary error (overlaps gold [7,8) of same label)
      {10, 11, "1"}  // spurious
  };
  auto outcomes = ClassifySpans(gold, predicted);
  ASSERT_EQ(outcomes.size(), 4u);  // no missed: every gold overlapped
  EXPECT_EQ(outcomes[0].kind, ErrorKind::kCorrect);
  EXPECT_EQ(outcomes[1].kind, ErrorKind::kType);
  EXPECT_EQ(outcomes[2].kind, ErrorKind::kBoundary);
  EXPECT_EQ(outcomes[3].kind, ErrorKind::kSpurious);
}

TEST(ErrorAnalysisTest, MissedGoldSpans) {
  auto outcomes = ClassifySpans({{0, 1, "0"}}, {});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, ErrorKind::kMissed);
}

TEST(ErrorAnalysisTest, AccumulateFromTags) {
  ErrorProfile profile;
  // gold: B-0 I-0 O ; predicted: B-0 O O -> boundary error + that's it.
  AccumulateErrors({1, 2, 0}, {1, 0, 0}, &profile);
  EXPECT_EQ(profile.boundary, 1);
  EXPECT_EQ(profile.correct, 0);
  EXPECT_EQ(profile.missed, 0);  // gold overlapped by the short prediction
  // gold O O O ; predicted B-1 -> spurious.
  AccumulateErrors({0, 0, 0}, {3, 0, 0}, &profile);
  EXPECT_EQ(profile.spurious, 1);
  EXPECT_EQ(profile.total_errors(), 2);
  EXPECT_NE(profile.ToString().find("boundary 1"), std::string::npos);
}

TEST(ErrorAnalysisTest, KindNames) {
  EXPECT_EQ(ErrorKindName(ErrorKind::kCorrect), "correct");
  EXPECT_EQ(ErrorKindName(ErrorKind::kMissed), "missed");
}

}  // namespace
}  // namespace fewner::eval

#include "eval/per_type.h"

namespace fewner::eval {
namespace {

TEST(PerTypeScorerTest, AggregatesAcrossEpisodesByTypeName) {
  models::EncodedEpisode episode;
  episode.n_way = 2;
  episode.valid_tags = text::ValidTagMask(2, 5);
  models::EncodedSentence sentence;
  sentence.word_ids = {1, 2, 3};
  sentence.tags = {text::BeginTag(0), 0, text::BeginTag(1)};
  episode.query.push_back(sentence);

  PerTypeScorer scorer;
  // Episode A: slot 0 = PER, slot 1 = LOC; prediction gets PER right.
  scorer.AddEpisode(episode, {"PER", "LOC"}, {{text::BeginTag(0), 0, 0}});
  // Episode B: slot order flipped; prediction gets LOC (slot 0) right.
  scorer.AddEpisode(episode, {"LOC", "PER"}, {{text::BeginTag(0), 0, 0}});

  const auto& counts = scorer.counts();
  ASSERT_TRUE(counts.count("PER"));
  ASSERT_TRUE(counts.count("LOC"));
  EXPECT_EQ(counts.at("PER").gold, 2);
  EXPECT_EQ(counts.at("PER").correct, 1);
  EXPECT_EQ(counts.at("LOC").gold, 2);
  EXPECT_EQ(counts.at("LOC").correct, 1);
  EXPECT_NEAR(counts.at("PER").Recall(), 0.5, 1e-9);
  EXPECT_NEAR(counts.at("PER").Precision(), 1.0, 1e-9);
}

TEST(PerTypeScorerTest, ReportAndCsv) {
  models::EncodedEpisode episode;
  episode.n_way = 1;
  episode.valid_tags = text::ValidTagMask(1, 3);
  models::EncodedSentence sentence;
  sentence.word_ids = {1};
  sentence.tags = {text::BeginTag(0)};
  episode.query.push_back(sentence);
  PerTypeScorer scorer;
  scorer.AddEpisode(episode, {"GENE"}, {{text::BeginTag(0)}});
  EXPECT_NE(scorer.Report().find("GENE"), std::string::npos);
  const std::string csv = scorer.ToCsv();
  EXPECT_NE(csv.find("type,gold"), std::string::npos);
  EXPECT_NE(csv.find("GENE,1,1,1"), std::string::npos);
}

}  // namespace
}  // namespace fewner::eval

#include "eval/model_selection.h"
#include "meta/fewner.h"

namespace fewner::eval {
namespace {

TEST(ModelSelectionTest, KeepsBestSnapshot) {
  util::Rng rng(1);
  nn::Linear layer(2, 2, &rng);
  // Scores rise then fall; the tracker must restore the peak's parameters.
  std::vector<double> scores = {0.1, 0.7, 0.3};
  size_t call = 0;
  std::vector<float> value_at_best;
  BestSnapshotTracker tracker(&layer, [&]() {
    (*layer.Parameters()[0]->mutable_data())[0] = static_cast<float>(call);
    if (call == 1) value_at_best = layer.Parameters()[0]->data();
    return scores[call++];
  });
  auto callback = tracker.Callback();
  for (int64_t it = 0; it < 3; ++it) callback(it);
  EXPECT_EQ(tracker.evaluations(), 3);
  EXPECT_EQ(tracker.best_iteration(), 1);
  EXPECT_NEAR(tracker.RestoreBest(), 0.7, 1e-9);
  EXPECT_EQ(layer.Parameters()[0]->data(), value_at_best);
}

TEST(ModelSelectionTest, CallbackCadence) {
  meta::TrainConfig config;
  config.iterations = 10;
  config.callback_every = 4;
  std::vector<int64_t> fired;
  config.iteration_callback = [&](int64_t it) { fired.push_back(it); };
  for (int64_t it = 0; it < config.iterations; ++it) {
    meta::MaybeInvokeCallback(config, it);
  }
  // Fires at iterations 3, 7 (every 4) and 9 (the last).
  EXPECT_EQ(fired, (std::vector<int64_t>{3, 7, 9}));
}

TEST(ModelSelectionTest, DisabledByDefault) {
  meta::TrainConfig config;
  config.iterations = 5;
  bool fired = false;
  config.iteration_callback = [&](int64_t) { fired = true; };
  for (int64_t it = 0; it < config.iterations; ++it) {
    meta::MaybeInvokeCallback(config, it);  // callback_every == 0
  }
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace fewner::eval
