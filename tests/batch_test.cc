// Bitwise-parity suite for batch-first episode execution (DESIGN.md §7).
//
// The contract under test: for any padded, length-masked batch, lane b of the
// batched pipeline is BITWISE-identical (0 ULP, compared with memcmp) to
// running that lane's sentence alone through the per-sentence path — for
// emissions, CRF negative log-likelihoods, the summed task loss (including
// training-mode dropout given matching streams), and Viterbi tag sequences.
// Meta-gradients are only required to agree to tolerance (backward reduction
// orders differ), and the second-order path through the batched inner loop is
// checked against central finite differences.  The new batched tensor ops
// (Where, TransposeLast2, RowSum, UnfoldTimeBatch/FoldTimeBatch) get adjoint,
// finite-difference, and EvalMode differential coverage here too.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "crf/linear_chain_crf.h"
#include "meta/fewner.h"
#include "models/backbone.h"
#include "models/encoding.h"
#include "tensor/autodiff.h"
#include "tensor/eval_mode.h"
#include "tensor/intraop.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/rng.h"

namespace fewner {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::autodiff::Grad;

constexpr int64_t kWordVocab = 50;
constexpr int64_t kCharVocab = 30;

// ----- shared helpers ------------------------------------------------------

void ExpectBitwise(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_TRUE(a.defined() && b.defined()) << what;
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const auto& av = a.data();
  const auto& bv = b.data();
  ASSERT_EQ(av.size(), bv.size()) << what;
  if (!av.empty()) {
    EXPECT_EQ(std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)), 0)
        << what << ": batched values diverge from the per-sentence path";
  }
}

/// Central finite-difference check of d(loss)/d(x) for every element of x.
void CheckGradient(const std::function<Tensor(const Tensor&)>& loss_fn, Tensor x,
                   float eps = 1e-3f, float tol = 2e-2f) {
  Tensor loss = loss_fn(x);
  std::vector<Tensor> grads = Grad(loss, {x});
  ASSERT_EQ(grads.size(), 1u);
  const Tensor& g = grads[0];
  ASSERT_EQ(g.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data();
    std::vector<float> minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    Tensor xp = Tensor::FromData(x.shape(), plus, true);
    Tensor xm = Tensor::FromData(x.shape(), minus, true);
    const float numeric = (loss_fn(xp).item() - loss_fn(xm).item()) / (2 * eps);
    EXPECT_NEAR(g.at(i), numeric, tol) << "element " << i;
  }
}

/// Runs `op` in graph mode and under EvalMode; the values must match bitwise.
void CheckEvalParity(const std::string& what, const std::function<Tensor()>& op) {
  Tensor graph_out = op();
  Tensor eval_out;
  {
    tensor::EvalMode eval;
    eval_out = op();
  }
  ExpectBitwise(graph_out, eval_out, what);
}

models::EncodedSentence RandomSentence(util::Rng* rng, int64_t length,
                                       const std::vector<bool>& valid_tags) {
  models::EncodedSentence s;
  for (int64_t t = 0; t < length; ++t) {
    s.word_ids.push_back(
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(kWordVocab))));
    const int64_t chars = 1 + static_cast<int64_t>(rng->UniformInt(8));
    std::vector<int64_t> ids;
    for (int64_t c = 0; c < chars; ++c) {
      ids.push_back(
          static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(kCharVocab))));
    }
    s.char_ids.push_back(std::move(ids));
    int64_t tag;
    do {
      tag = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(valid_tags.size())));
    } while (!valid_tags[static_cast<size_t>(tag)]);
    s.tags.push_back(tag);
  }
  return s;
}

models::BackboneConfig SmallConfig(models::EncoderKind encoder,
                                   models::Conditioning conditioning) {
  models::BackboneConfig config;
  config.word_vocab_size = kWordVocab;
  config.char_vocab_size = kCharVocab;
  config.word_dim = 10;
  config.char_dim = 6;
  config.filters_per_width = 4;
  config.hidden_dim = 10;
  config.encoder = encoder;
  config.max_tags = text::NumTags(5);
  config.context_dim = 8;
  config.conditioning = conditioning;
  config.dropout = 0.3f;
  return config;
}

// ----- batched tensor ops --------------------------------------------------

TEST(BatchOpsTest, TransposeLast2ValuesAndGradient) {
  util::Rng rng(0xB001);
  Tensor x = Tensor::Randn(Shape{2, 3, 4}, &rng, 1.0f, true);
  Tensor y = tensor::TransposeLast2(x);
  ASSERT_EQ(y.shape(), (Shape{2, 4, 3}));
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(y.at(n * 12 + j * 3 + i), x.at(n * 12 + i * 4 + j));
      }
    }
  }
  Tensor w = Tensor::Randn(Shape{2, 4, 3}, &rng);
  CheckGradient(
      [&](const Tensor& t) { return tensor::SumAll(tensor::Mul(tensor::TransposeLast2(t), w)); },
      x);
}

TEST(BatchOpsTest, RowSumValuesAndGradient) {
  util::Rng rng(0xB002);
  Tensor x = Tensor::Randn(Shape{3, 5}, &rng, 1.0f, true);
  Tensor y = tensor::RowSum(x);
  ASSERT_EQ(y.shape(), (Shape{3}));
  for (int64_t r = 0; r < 3; ++r) {
    // Per-row result must match the whole-tensor reduction on that row alone —
    // the double-accumulation contract the batched CRF gold score relies on.
    Tensor row = tensor::Slice(x, 0, r, 1);
    EXPECT_EQ(y.at(r), tensor::SumAll(row).item());
  }
  Tensor w = Tensor::Randn(Shape{3}, &rng);
  CheckGradient(
      [&](const Tensor& t) { return tensor::SumAll(tensor::Mul(tensor::RowSum(t), w)); },
      x);
}

TEST(BatchOpsTest, SumAllFloatMatchesScalarAddFoldBitwise) {
  util::Rng rng(0xB006);
  Tensor x = Tensor::Randn(Shape{7}, &rng, 1.0f, true);
  // The contract: identical to folding the elements left-to-right with the
  // scalar float Adds the per-sentence BatchLoss overload performs.
  Tensor folded;
  for (int64_t i = 0; i < 7; ++i) {
    Tensor lane = tensor::Reshape(tensor::Slice(x, 0, i, 1), Shape{});
    folded = folded.defined() ? tensor::Add(folded, lane) : lane;
  }
  const float fused = tensor::SumAllFloat(x).item();
  const float serial = folded.item();
  EXPECT_EQ(std::memcmp(&fused, &serial, sizeof(float)), 0);
  Tensor w = Tensor::Randn(Shape{}, &rng);
  CheckGradient(
      [&](const Tensor& t) { return tensor::Mul(tensor::SumAllFloat(t), w); },
      x);
}

TEST(BatchOpsTest, WhereSelectsExactlyAndRoutesGradient) {
  Tensor cond = Tensor::FromData(Shape{3, 1}, {1.0f, 0.0f, 1.0f});
  util::Rng rng(0xB003);
  Tensor a = Tensor::Randn(Shape{3, 2}, &rng, 1.0f, true);
  Tensor b = Tensor::Randn(Shape{3, 2}, &rng, 1.0f, true);
  Tensor y = tensor::Where(cond, a, b);
  for (int64_t i = 0; i < 6; ++i) {
    const bool take_a = (i / 2) != 1;
    // memcmp-level equality: Where must copy, not blend (a*c + b*(1-c) would
    // flip signed zeros and add rounding).
    const float expected = take_a ? a.at(i) : b.at(i);
    EXPECT_EQ(std::memcmp(&expected, &y.data()[static_cast<size_t>(i)],
                          sizeof(float)),
              0);
  }
  Tensor w = Tensor::Randn(Shape{3, 2}, &rng);
  CheckGradient(
      [&](const Tensor& t) { return tensor::SumAll(tensor::Mul(tensor::Where(cond, t, b), w)); },
      a);
  CheckGradient(
      [&](const Tensor& t) { return tensor::SumAll(tensor::Mul(tensor::Where(cond, a, t), w)); },
      b);
}

TEST(BatchOpsTest, UnfoldAndFoldTimeBatchAreMutuallyAdjoint) {
  util::Rng rng(0xB004);
  const int64_t lanes = 2, time = 5, dim = 3, window = 2;
  Tensor x = Tensor::Randn(Shape{lanes, time, dim}, &rng, 1.0f, true);
  Tensor windows = tensor::UnfoldTimeBatch(x, window);
  ASSERT_EQ(windows.shape(), (Shape{lanes, time - window + 1, window * dim}));
  // Window m of lane n is rows m..m+w-1 of that lane, concatenated.
  for (int64_t n = 0; n < lanes; ++n) {
    for (int64_t m = 0; m < time - window + 1; ++m) {
      for (int64_t w = 0; w < window; ++w) {
        for (int64_t d = 0; d < dim; ++d) {
          EXPECT_EQ(windows.at(((n * (time - window + 1)) + m) * window * dim +
                               w * dim + d),
                    x.at((n * time + m + w) * dim + d));
        }
      }
    }
  }
  // Adjoint identity: <Unfold(x), y> == <x, Fold(y)> for any y.
  Tensor y = Tensor::Randn(windows.shape(), &rng, 1.0f, true);
  const float lhs = tensor::SumAll(tensor::Mul(windows, y)).item();
  const float rhs =
      tensor::SumAll(tensor::Mul(x, tensor::FoldTimeBatch(y, window))).item();
  EXPECT_NEAR(lhs, rhs, 1e-4f);
  CheckGradient(
      [&](const Tensor& t) {
        return tensor::SumAll(tensor::Mul(tensor::UnfoldTimeBatch(t, window), y));
      },
      x);
  CheckGradient(
      [&](const Tensor& t) {
        return tensor::SumAll(tensor::Square(tensor::FoldTimeBatch(t, window)));
      },
      y);
}

TEST(BatchOpsTest, NewOpsMatchBitwiseUnderEvalMode) {
  util::Rng rng(0xB005);
  for (int rep = 0; rep < 20; ++rep) {
    const int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(4));
    const int64_t t = 1 + static_cast<int64_t>(rng.UniformInt(6));
    const int64_t d = 1 + static_cast<int64_t>(rng.UniformInt(5));
    Tensor x = Tensor::Randn(Shape{n, t, d}, &rng);
    Tensor flat = Tensor::Randn(Shape{n, t}, &rng);
    CheckEvalParity("TransposeLast2", [&] { return tensor::TransposeLast2(x); });
    CheckEvalParity("RowSum", [&] { return tensor::RowSum(flat); });
    CheckEvalParity("SumAllFloat", [&] { return tensor::SumAllFloat(flat); });
    const int64_t window = 1 + static_cast<int64_t>(
                                   rng.UniformInt(static_cast<uint64_t>(t)));
    CheckEvalParity("UnfoldTimeBatch",
                    [&] { return tensor::UnfoldTimeBatch(x, window); });
    Tensor wins = Tensor::Randn(Shape{n, t - window + 1, window * d}, &rng);
    CheckEvalParity("FoldTimeBatch",
                    [&] { return tensor::FoldTimeBatch(wins, window); });
    std::vector<float> bits;
    for (int64_t i = 0; i < n; ++i) {
      bits.push_back(rng.Bernoulli(0.5) ? 1.0f : 0.0f);
    }
    Tensor cond = Tensor::FromData(Shape{n, 1, 1}, std::move(bits));
    Tensor alt = Tensor::Randn(x.shape(), &rng);
    CheckEvalParity("Where", [&] { return tensor::Where(cond, x, alt); });
  }
}

// ----- whole-pipeline bitwise parity ---------------------------------------

class BatchParityTest : public ::testing::Test {
 protected:
  /// Random ragged episode: B in [1, 6] sentences of length [1, 12].  Episode
  /// ids ending in 0 force B=1; ids ending in 5 force the all-padding-tail
  /// shape (one long lane, every other lane length 1).
  std::vector<models::EncodedSentence> RandomEpisode(
      uint64_t id, util::Rng* rng, const std::vector<bool>& valid_tags) {
    std::vector<models::EncodedSentence> sentences;
    if (id % 10 == 0) {
      sentences.push_back(RandomSentence(
          rng, 1 + static_cast<int64_t>(rng->UniformInt(12)), valid_tags));
    } else if (id % 10 == 5) {
      sentences.push_back(RandomSentence(rng, 12, valid_tags));
      const int64_t lanes = 2 + static_cast<int64_t>(rng->UniformInt(3));
      for (int64_t b = 0; b < lanes; ++b) {
        sentences.push_back(RandomSentence(rng, 1, valid_tags));
      }
    } else {
      const int64_t lanes = 1 + static_cast<int64_t>(rng->UniformInt(6));
      for (int64_t b = 0; b < lanes; ++b) {
        sentences.push_back(RandomSentence(
            rng, 1 + static_cast<int64_t>(rng->UniformInt(12)), valid_tags));
      }
    }
    return sentences;
  }
};

TEST_F(BatchParityTest, EmissionsNllAndViterbiBitwiseEqualOn100RaggedEpisodes) {
  // Two backbones cover both encoders and both conditioning modes.
  util::Rng init_a(0xA11), init_b(0xB22);
  models::Backbone gru_film(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init_a);
  models::Backbone lstm_concat(
      SmallConfig(models::EncoderKind::kBiLstm, models::Conditioning::kConcat),
      &init_b);
  gru_film.SetTraining(false);
  lstm_concat.SetTraining(false);

  util::Rng rng(0xEE01);
  for (uint64_t id = 0; id < 100; ++id) {
    models::Backbone& net = (id % 2 == 0) ? gru_film : lstm_concat;
    const int64_t n_way = 1 + static_cast<int64_t>(rng.UniformInt(5));
    const std::vector<bool> valid_tags =
        text::ValidTagMask(n_way, net.config().max_tags);
    std::vector<models::EncodedSentence> sentences =
        RandomEpisode(id, &rng, valid_tags);
    const models::EncodedBatch batch = models::PackBatch(sentences);
    Tensor phi = net.ZeroContext();

    // Emissions: lane b's real prefix must match the sentence alone, 0 ULP.
    Tensor batched = net.EmissionsBatch(batch, phi);
    for (size_t b = 0; b < sentences.size(); ++b) {
      Tensor lane_rows = tensor::Reshape(
          tensor::Slice(batched, 0, static_cast<int64_t>(b), 1),
          Shape{batch.max_len, net.config().max_tags});
      Tensor prefix =
          tensor::Slice(lane_rows, 0, 0, sentences[b].length()).Detach();
      Tensor alone = net.Emissions(sentences[b], phi).Detach();
      ExpectBitwise(alone, prefix,
                    "emissions lane " + std::to_string(b) + " episode " +
                        std::to_string(id));
    }

    // CRF NLL: batched lane values against the per-sentence loss, and the
    // lane-folded totals of the two BatchLoss overloads.
    Tensor per_lane = net.crf()->NegLogLikelihoodBatch(
        batched, batch.tags, batch.lengths, &valid_tags);
    for (size_t b = 0; b < sentences.size(); ++b) {
      const float alone =
          net.SentenceLoss(sentences[b], phi, valid_tags).item();
      const float lane = per_lane.at(static_cast<int64_t>(b));
      EXPECT_EQ(std::memcmp(&alone, &lane, sizeof(float)), 0)
          << "NLL lane " << b << " episode " << id;
    }
    const float serial = net.BatchLoss(sentences, phi, valid_tags).item();
    const float fused = net.BatchLoss(batch, phi, valid_tags).item();
    EXPECT_EQ(std::memcmp(&serial, &fused, sizeof(float)), 0)
        << "task loss, episode " << id;

    // Viterbi: identical tag sequences, lane by lane.
    const auto batched_tags = net.DecodeBatch(batch, phi, valid_tags);
    ASSERT_EQ(batched_tags.size(), sentences.size());
    for (size_t b = 0; b < sentences.size(); ++b) {
      EXPECT_EQ(batched_tags[b], net.Decode(sentences[b], phi, valid_tags))
          << "viterbi lane " << b << " episode " << id;
    }
  }
}

TEST_F(BatchParityTest, TrainingModeDropoutLossesAgreeBitwise) {
  // With dropout ON, the two BatchLoss overloads must still agree bitwise:
  // lane b of the batched pass draws from the same (episode, call, lane)
  // stream the per-sentence pass hands sentence b.
  util::Rng init(0xC33);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(true);
  util::Rng rng(0xEE02);
  for (uint64_t id = 0; id < 20; ++id) {
    const std::vector<bool> valid_tags =
        text::ValidTagMask(3, net.config().max_tags);
    std::vector<models::EncodedSentence> sentences =
        RandomEpisode(id, &rng, valid_tags);
    const models::EncodedBatch batch = models::PackBatch(sentences);
    Tensor phi = net.ZeroContext();

    net.ReseedDropout(id);
    const float serial = net.BatchLoss(sentences, phi, valid_tags).item();
    net.ReseedDropout(id);
    const float fused = net.BatchLoss(batch, phi, valid_tags).item();
    EXPECT_EQ(std::memcmp(&serial, &fused, sizeof(float)), 0)
        << "dropout episode " << id;

    // Successive calls under one reseed must decorrelate (fresh call index),
    // while a reseed restores the exact stream.
    const float second = net.BatchLoss(batch, phi, valid_tags).item();
    EXPECT_NE(fused, second) << "episode " << id;
  }
  net.SetTraining(false);
}

TEST_F(BatchParityTest, MetaGradientsMatchPerSentencePathToTolerance) {
  // Backward reduction orders differ between the paths, so gradients agree to
  // tolerance, not bitwise.  Inner loop create_graph=true exercises the
  // second-order route through the batched pipeline.
  util::Rng init(0xD44);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(false);
  util::Rng rng(0xEE03);
  const std::vector<bool> valid_tags =
      text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> support =
      RandomEpisode(3, &rng, valid_tags);
  std::vector<models::EncodedSentence> query = RandomEpisode(7, &rng, valid_tags);
  const models::EncodedBatch support_batch = models::PackBatch(support);
  const models::EncodedBatch query_batch = models::PackBatch(query);

  auto meta_grads = [&](bool batched) {
    Tensor phi = net.ZeroContext();
    for (int k = 0; k < 2; ++k) {
      Tensor loss = batched ? net.BatchLoss(support_batch, phi, valid_tags)
                            : net.BatchLoss(support, phi, valid_tags);
      Tensor g = Grad(loss, {phi}, /*create_graph=*/true)[0];
      phi = tensor::Sub(phi, tensor::MulScalar(g, 0.05f));
    }
    Tensor query_loss = batched ? net.BatchLoss(query_batch, phi, valid_tags)
                                : net.BatchLoss(query, phi, valid_tags);
    return Grad(query_loss, nn::ParameterTensors(&net));
  };

  std::vector<Tensor> serial = meta_grads(false);
  std::vector<Tensor> fused = meta_grads(true);
  ASSERT_EQ(serial.size(), fused.size());
  double max_abs = 0.0;
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].shape(), fused[i].shape()) << "slot " << i;
    for (int64_t j = 0; j < serial[i].numel(); ++j) {
      max_abs = std::max(max_abs, std::abs(static_cast<double>(serial[i].at(j))));
      EXPECT_NEAR(serial[i].at(j), fused[i].at(j),
                  1e-4f + 1e-3f * std::abs(serial[i].at(j)))
          << "slot " << i << " element " << j;
    }
  }
  EXPECT_GT(max_abs, 1e-8) << "meta-gradient vanished; test is vacuous";
}

TEST_F(BatchParityTest, SecondOrderFiniteDifferenceThroughBatchedInnerLoop) {
  // Perturb individual backbone parameters and compare the autodiff
  // meta-gradient (query loss after a differentiated batched inner loop)
  // against central finite differences.
  util::Rng init(0xE55);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(false);
  util::Rng rng(0xEE04);
  const std::vector<bool> valid_tags =
      text::ValidTagMask(3, net.config().max_tags);
  const models::EncodedBatch support =
      models::PackBatch(RandomEpisode(3, &rng, valid_tags));
  const models::EncodedBatch query =
      models::PackBatch(RandomEpisode(7, &rng, valid_tags));

  auto meta_loss = [&]() {
    Tensor phi = net.ZeroContext();
    for (int k = 0; k < 2; ++k) {
      Tensor loss = net.BatchLoss(support, phi, valid_tags);
      Tensor g = Grad(loss, {phi}, /*create_graph=*/true)[0];
      phi = tensor::Sub(phi, tensor::MulScalar(g, 0.05f));
    }
    return net.BatchLoss(query, phi, valid_tags);
  };

  std::vector<Tensor> params = nn::ParameterTensors(&net);
  std::vector<Tensor> analytic = Grad(meta_loss(), params);
  std::vector<Tensor*> slots = net.Parameters();
  ASSERT_EQ(analytic.size(), slots.size());
  // Spot-check a handful of elements across every third parameter tensor:
  // full FD over all parameters would dominate suite runtime.
  const float eps = 1e-2f;
  for (size_t i = 0; i < slots.size(); i += 3) {
    std::vector<float>* values = slots[i]->mutable_data();
    for (int probe = 0; probe < 2; ++probe) {
      const size_t j = rng.UniformInt(values->size());
      const float original = (*values)[j];
      (*values)[j] = original + eps;
      const float plus = meta_loss().item();
      (*values)[j] = original - eps;
      const float minus = meta_loss().item();
      (*values)[j] = original;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic[i].at(static_cast<int64_t>(j)), numeric,
                  3e-2f + 0.05f * std::abs(numeric))
          << "slot " << i << " element " << j;
    }
  }
}

TEST_F(BatchParityTest, WholeModelBitwiseInvariantAcrossIntraOpBudgets) {
  // Dims sized so the big GEMMs clear the intra-op dispatch threshold (2^18
  // m·k·n flops at B·L = 100 rows): the budget-4 run genuinely shards, and
  // must stay 0 ULP against the budget-1 (serial) run for emissions, losses,
  // meta-gradients — covering the NT/TN backward family — and Viterbi tags.
  models::BackboneConfig config =
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm);
  config.word_dim = 48;
  config.char_dim = 8;
  config.filters_per_width = 8;
  config.hidden_dim = 48;
  util::Rng init(0xD77);
  models::Backbone net(config, &init);
  net.SetTraining(false);
  util::Rng rng(0xEE06);
  const std::vector<bool> valid_tags = text::ValidTagMask(5, config.max_tags);
  std::vector<models::EncodedSentence> sentences;
  for (int b = 0; b < 5; ++b) {
    sentences.push_back(RandomSentence(&rng, 20, valid_tags));
  }
  const models::EncodedBatch batch = models::PackBatch(sentences);

  struct Run {
    Tensor emissions;
    float loss = 0.0f;
    std::vector<Tensor> grads;
    std::vector<std::vector<int64_t>> tags;
  };
  auto run = [&](int64_t threads) {
    tensor::ParallelismBudget budget(threads);
    Run out;
    Tensor phi0 = net.ZeroContext();
    out.emissions = net.EmissionsBatch(batch, phi0).Detach();
    // One differentiated adaptation step before the outer loss, so the
    // meta-gradient routes through second-order NT/TN backward GEMMs too.
    Tensor phi = tensor::Sub(
        phi0,
        tensor::MulScalar(Grad(net.BatchLoss(batch, phi0, valid_tags), {phi0},
                               /*create_graph=*/true)[0],
                          0.05f));
    Tensor loss = net.BatchLoss(batch, phi, valid_tags);
    out.loss = loss.item();
    out.grads = Grad(loss, nn::ParameterTensors(&net));
    out.tags = net.DecodeBatch(batch, net.ZeroContext(), valid_tags);
    return out;
  };

  const Run serial = run(1);
  for (int64_t threads : {2, 4}) {
    const Run sharded = run(threads);
    const std::string label = "intra-op budget " + std::to_string(threads);
    ExpectBitwise(serial.emissions, sharded.emissions, label + " emissions");
    EXPECT_EQ(std::memcmp(&serial.loss, &sharded.loss, sizeof(float)), 0)
        << label << " query loss";
    ASSERT_EQ(serial.grads.size(), sharded.grads.size());
    for (size_t i = 0; i < serial.grads.size(); ++i) {
      ExpectBitwise(serial.grads[i], sharded.grads[i],
                    label + " meta-gradient slot " + std::to_string(i));
    }
    EXPECT_EQ(serial.tags, sharded.tags) << label << " viterbi tags";
  }
}

// ----- concurrent batched serving (run under -DFEWNER_SANITIZE=thread) -----

TEST(BatchServingTest, ConcurrentBatchedDecodingIsRaceFreeAndDeterministic) {
  util::Rng init(0xF66);
  models::Backbone net(
      SmallConfig(models::EncoderKind::kBiGru, models::Conditioning::kFilm),
      &init);
  net.SetTraining(false);
  util::Rng rng(0xEE05);
  const std::vector<bool> valid_tags =
      text::ValidTagMask(3, net.config().max_tags);
  std::vector<models::EncodedSentence> sentences;
  for (int64_t b = 0; b < 6; ++b) {
    sentences.push_back(RandomSentence(
        &rng, 1 + static_cast<int64_t>(rng.UniformInt(12)), valid_tags));
  }
  const models::EncodedBatch batch = models::PackBatch(sentences);
  const Tensor phi = net.ZeroContext().Detach();

  std::vector<std::vector<int64_t>> reference;
  {
    tensor::EvalMode eval;
    reference = net.DecodeBatch(batch, phi, valid_tags);
  }
  constexpr int kThreads = 4;
  std::vector<std::vector<std::vector<int64_t>>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      tensor::EvalMode eval;
      for (int round = 0; round < 5; ++round) {
        results[static_cast<size_t>(w)] = net.DecodeBatch(batch, phi, valid_tags);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& result : results) EXPECT_EQ(result, reference);
}

}  // namespace
}  // namespace fewner
