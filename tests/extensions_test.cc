// Tests for the extension features: CoNLL I/O, slot-filling corpus, BiLSTM
// encoder, CRF k-best + marginals, serialization of whole methods, and the
// Reptile / MatchingNet baselines.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "crf/linear_chain_crf.h"
#include "data/conll.h"
#include "data/slot_filling.h"
#include "meta/matching_net.h"
#include "meta/reptile.h"
#include "nn/lstm.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"

namespace fewner {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ----------------------------------------------------------------- CoNLL I/O

TEST(ConllTest, ParsesTokensAndSpans) {
  std::istringstream in(
      "Jordan B-PER\n"
      "visited O\n"
      "Atlantic B-LOC\n"
      "City I-LOC\n"
      ". O\n"
      "\n"
      "-DOCSTART- O\n"
      "\n"
      "NBA B-ORG\n"
      "star O\n");
  auto result = data::ReadConllStream(&in, "test");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const data::Corpus& corpus = result.value();
  ASSERT_EQ(corpus.sentences.size(), 2u);
  const auto& first = corpus.sentences[0];
  EXPECT_EQ(first.tokens.size(), 5u);
  ASSERT_EQ(first.entities.size(), 2u);
  EXPECT_EQ(first.entities[0].label, "PER");
  EXPECT_EQ(first.entities[1].start, 2);
  EXPECT_EQ(first.entities[1].end, 4);
  EXPECT_EQ(corpus.entity_types.size(), 3u);  // PER, LOC, ORG
}

TEST(ConllTest, DanglingInsideRecovers) {
  std::istringstream in("word I-GENE\nmore I-GENE\n");
  auto result = data::ReadConllStream(&in, "test");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().sentences[0].entities.size(), 1u);
  EXPECT_EQ(result.value().sentences[0].entities[0].end, 2);
}

TEST(ConllTest, TabSeparatedAndComments) {
  std::istringstream in("# comment\nword\tPOS\tB-X\n");
  auto result = data::ReadConllStream(&in, "test");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().sentences[0].entities[0].label, "X");
}

TEST(ConllTest, BadLabelIsError) {
  std::istringstream in("word Q-BAD\n");
  EXPECT_FALSE(data::ReadConllStream(&in, "test").ok());
}

TEST(ConllTest, EmptyInputIsError) {
  std::istringstream in("\n\n");
  EXPECT_FALSE(data::ReadConllStream(&in, "test").ok());
}

TEST(ConllTest, WriteReadRoundTrip) {
  data::SlotFillingSpec spec;
  spec.num_utterances = 25;
  data::Corpus corpus = data::GenerateSlotFillingCorpus(spec);
  std::ostringstream out;
  ASSERT_TRUE(data::WriteConllStream(corpus, &out).ok());
  std::istringstream in(out.str());
  auto parsed = data::ReadConllStream(&in, "roundtrip");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().sentences.size(), corpus.sentences.size());
  for (size_t i = 0; i < corpus.sentences.size(); ++i) {
    EXPECT_EQ(parsed.value().sentences[i].tokens, corpus.sentences[i].tokens);
    EXPECT_EQ(parsed.value().sentences[i].entities, corpus.sentences[i].entities);
  }
}

// ----------------------------------------------------------- slot filling

TEST(SlotFillingTest, GeneratesAnnotatedUtterances) {
  data::SlotFillingSpec spec;
  spec.num_utterances = 200;
  data::Corpus corpus = data::GenerateSlotFillingCorpus(spec);
  EXPECT_EQ(corpus.sentences.size(), 200u);
  EXPECT_EQ(corpus.entity_types.size(), 12u);
  int64_t with_slots = 0;
  for (const auto& sentence : corpus.sentences) {
    if (!sentence.entities.empty()) ++with_slots;
    for (const auto& entity : sentence.entities) {
      ASSERT_GE(entity.start, 0);
      ASSERT_LE(entity.end, static_cast<int64_t>(sentence.tokens.size()));
    }
  }
  EXPECT_EQ(with_slots, 200);  // every template has at least one slot
}

TEST(SlotFillingTest, Deterministic) {
  data::SlotFillingSpec spec;
  spec.num_utterances = 40;
  data::Corpus a = data::GenerateSlotFillingCorpus(spec);
  data::Corpus b = data::GenerateSlotFillingCorpus(spec);
  for (size_t i = 0; i < a.sentences.size(); ++i) {
    EXPECT_EQ(a.sentences[i].tokens, b.sentences[i].tokens);
  }
}

// ----------------------------------------------------------------- BiLSTM

TEST(LstmTest, ShapesAndBidirectionality) {
  util::Rng rng(5);
  nn::BiLstm lstm(3, 4, &rng);
  Tensor x = Tensor::Randn(Shape{6, 3}, &rng);
  Tensor out = lstm.Forward(x);
  EXPECT_EQ(out.shape(), (Shape{6, 8}));
  // Perturbing the last token changes the first token's backward features only.
  std::vector<float> perturbed = x.data();
  perturbed[15] += 1.0f;
  Tensor out2 = lstm.Forward(Tensor::FromData(Shape{6, 3}, perturbed));
  for (int64_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(out.at(j), out2.at(j));
  double delta = 0;
  for (int64_t j = 4; j < 8; ++j) delta += std::abs(out.at(j) - out2.at(j));
  EXPECT_GT(delta, 1e-6);
}

TEST(LstmTest, GradCheckThroughTime) {
  util::Rng rng(7);
  nn::BiLstm lstm(2, 2, &rng);
  Tensor x = Tensor::Randn(Shape{3, 2}, &rng, 0.5f, /*requires_grad=*/true);
  Tensor loss = tensor::SumAll(tensor::Square(lstm.Forward(x)));
  auto g = tensor::autodiff::Grad(loss, {x});
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    std::vector<float> plus = x.data(), minus = x.data();
    plus[static_cast<size_t>(i)] += eps;
    minus[static_cast<size_t>(i)] -= eps;
    const float lp = tensor::SumAll(tensor::Square(lstm.Forward(
                                        Tensor::FromData(x.shape(), plus))))
                         .item();
    const float lm = tensor::SumAll(tensor::Square(lstm.Forward(
                                        Tensor::FromData(x.shape(), minus))))
                         .item();
    EXPECT_NEAR(g[0].at(i), (lp - lm) / (2 * eps), 5e-2) << "element " << i;
  }
}

// ----------------------------------------------------- CRF k-best / marginals

TEST(CrfKBestTest, FirstPathMatchesViterbiAndOrderingHolds) {
  crf::LinearChainCrf crf(3);
  util::Rng rng(11);
  for (tensor::Tensor* p : crf.Parameters()) {
    for (float& v : *p->mutable_data()) v = static_cast<float>(rng.Gaussian(0, 0.5));
  }
  Tensor emissions = Tensor::Randn(Shape{4, 3}, &rng);
  auto paths = crf.ViterbiKBest(emissions, 5);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].tags, crf.Viterbi(emissions));
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i].score, paths[i - 1].score + 1e-5f);
    EXPECT_NE(paths[i].tags, paths[i - 1].tags);
  }
}

TEST(CrfKBestTest, ExhaustsSmallPathSpaces) {
  crf::LinearChainCrf crf(2);
  util::Rng rng(13);
  Tensor emissions = Tensor::Randn(Shape{2, 2}, &rng);
  auto paths = crf.ViterbiKBest(emissions, 100);
  EXPECT_EQ(paths.size(), 4u);  // 2^2 distinct paths
}

TEST(CrfMarginalsTest, RowsSumToOneAndAgreeWithEnumeration) {
  crf::LinearChainCrf crf(3);
  util::Rng rng(17);
  for (tensor::Tensor* p : crf.Parameters()) {
    for (float& v : *p->mutable_data()) v = static_cast<float>(rng.Gaussian(0, 0.5));
  }
  Tensor emissions = Tensor::Randn(Shape{3, 3}, &rng);
  auto marginals = crf.Marginals(emissions);
  ASSERT_EQ(marginals.size(), 3u);
  for (const auto& row : marginals) {
    double total = 0;
    for (double p : row) total += p;
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
  // Enumerated check: P(y_1 = 2) from all 27 paths' probabilities.
  double target = 0;
  std::vector<int64_t> path(3, 0);
  for (;;) {
    const double p = std::exp(-crf.NegLogLikelihood(emissions, path).item());
    if (path[1] == 2) target += p;
    int pos = 2;
    while (pos >= 0) {
      if (++path[static_cast<size_t>(pos)] < 3) break;
      path[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  EXPECT_NEAR(marginals[1][2], target, 1e-3);
}

TEST(CrfMarginalsTest, MaskedTagsGetZeroMass) {
  crf::LinearChainCrf crf(3);
  util::Rng rng(19);
  Tensor emissions = Tensor::Randn(Shape{4, 3}, &rng);
  std::vector<bool> valid = {true, false, true};
  auto marginals = crf.Marginals(emissions, &valid);
  for (const auto& row : marginals) {
    EXPECT_EQ(row[1], 0.0);
    EXPECT_NEAR(row[0] + row[2], 1.0, 1e-4);
  }
}

// ----------------------------------------------------- extension baselines

class ExtensionMethodTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SlotFillingSpec spec;
    spec.num_utterances = 300;
    corpus_ = data::GenerateSlotFillingCorpus(spec);
    text::VocabBuilder builder;
    for (const auto& s : corpus_.sentences) builder.AddSentence(s.tokens);
    words_ = builder.BuildWordVocab();
    chars_ = builder.BuildCharVocab();
    config_.word_vocab_size = words_.size();
    config_.char_vocab_size = chars_.size();
    config_.word_dim = 10;
    config_.char_dim = 6;
    config_.filters_per_width = 4;
    config_.hidden_dim = 10;
    config_.max_tags = text::NumTags(3);
    config_.context_dim = 8;
    encoder_ = std::make_unique<models::EpisodeEncoder>(&words_, &chars_,
                                                        config_.max_tags);
    sampler_ = std::make_unique<data::EpisodeSampler>(
        &corpus_, corpus_.entity_types, 3, 1, 4, 23);
    train_.iterations = 3;
    train_.meta_batch = 2;
  }

  void CheckMethod(meta::FewShotMethod* method) {
    method->Train(*sampler_, *encoder_, train_);
    data::Episode episode = sampler_->Sample(50);
    if (episode.query.size() > 2) episode.query.resize(2);
    models::EncodedEpisode enc = encoder_->Encode(episode);
    auto predictions = method->AdaptAndPredict(enc);
    ASSERT_EQ(predictions.size(), enc.query.size());
    for (size_t q = 0; q < predictions.size(); ++q) {
      ASSERT_EQ(static_cast<int64_t>(predictions[q].size()),
                enc.query[q].length());
      for (int64_t tag : predictions[q]) {
        EXPECT_GE(tag, 0);
        EXPECT_LT(tag, config_.max_tags);
      }
    }
  }

  data::Corpus corpus_;
  text::Vocab words_, chars_;
  models::BackboneConfig config_;
  std::unique_ptr<models::EpisodeEncoder> encoder_;
  std::unique_ptr<data::EpisodeSampler> sampler_;
  meta::TrainConfig train_;
};

TEST_F(ExtensionMethodTest, ReptileTrainsAndPredicts) {
  util::Rng rng(1);
  meta::Reptile reptile(config_, &rng);
  EXPECT_EQ(reptile.name(), "Reptile");
  CheckMethod(&reptile);
}

TEST_F(ExtensionMethodTest, MatchingNetTrainsAndPredicts) {
  util::Rng rng(1);
  meta::MatchingNet matching(config_, &rng);
  EXPECT_EQ(matching.name(), "MatchingNet");
  CheckMethod(&matching);
}

TEST_F(ExtensionMethodTest, BilstmBackboneWorksEndToEnd) {
  config_.encoder = models::EncoderKind::kBiLstm;
  util::Rng rng(2);
  meta::Reptile reptile(config_, &rng);
  CheckMethod(&reptile);
}

}  // namespace
}  // namespace fewner
