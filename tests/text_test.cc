// Tests for the text substrate: vocabularies, the BIO scheme, span extraction,
// F1 counting, and the hash-embedding GloVe stand-in.

#include <gtest/gtest.h>

#include <cmath>

#include "text/bio.h"
#include "text/hash_embeddings.h"
#include "text/vocab.h"

namespace fewner::text {
namespace {

TEST(VocabTest, ReservedSlots) {
  Vocab vocab;
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.TokenFor(kPadId), "<pad>");
  EXPECT_EQ(vocab.TokenFor(kUnkId), "<unk>");
  EXPECT_EQ(vocab.Lookup("anything"), kUnkId);
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab vocab;
  const int64_t id = vocab.Add("protein");
  EXPECT_EQ(vocab.Add("protein"), id);
  EXPECT_EQ(vocab.Lookup("protein"), id);
  EXPECT_TRUE(vocab.Contains("protein"));
  EXPECT_EQ(vocab.size(), 3);
}

TEST(VocabBuilderTest, WordVocabIsLowercasedCharVocabIsCased) {
  VocabBuilder builder;
  builder.AddSentence({"Jordan", "plays"});
  Vocab words = builder.BuildWordVocab();
  Vocab chars = builder.BuildCharVocab();
  EXPECT_TRUE(words.Contains("jordan"));
  EXPECT_FALSE(words.Contains("Jordan"));
  EXPECT_TRUE(chars.Contains("J"));      // cased character kept
  EXPECT_FALSE(chars.Contains("j"));     // lowercase form never occurred
}

TEST(VocabBuilderTest, WordIdAndCharIds) {
  VocabBuilder builder;
  builder.AddSentence({"NBA", "star"});
  Vocab words = builder.BuildWordVocab();
  Vocab chars = builder.BuildCharVocab();
  EXPECT_EQ(WordId(words, "NBA"), WordId(words, "nba"));
  auto ids = CharIds(chars, "NBA");
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[1] == ids[0] ? ids[1] : ids[0]);  // stable lookups
  EXPECT_EQ(CharIds(chars, "zz")[0], kUnkId);
}

TEST(BioTest, TagIdScheme) {
  EXPECT_EQ(NumTags(5), 11);
  EXPECT_EQ(BeginTag(0), 1);
  EXPECT_EQ(InsideTag(0), 2);
  EXPECT_EQ(BeginTag(4), 9);
  EXPECT_EQ(InsideTag(4), 10);
  EXPECT_TRUE(IsBeginTag(BeginTag(2)));
  EXPECT_TRUE(IsInsideTag(InsideTag(2)));
  EXPECT_FALSE(IsBeginTag(kOutsideTag));
  EXPECT_EQ(SlotOfTag(BeginTag(3)), 3);
  EXPECT_EQ(SlotOfTag(InsideTag(3)), 3);
  EXPECT_EQ(TagName(kOutsideTag), "O");
  EXPECT_EQ(TagName(BeginTag(1)), "B-1");
  EXPECT_EQ(TagName(InsideTag(1)), "I-1");
}

TEST(BioTest, SpansToTagsRoundTrip) {
  std::vector<Span> spans = {{1, 3, "PER"}, {4, 5, "LOC"}};
  std::vector<int64_t> slots = {0, 1};
  auto tags = SpansToTags(spans, slots, 6);
  EXPECT_EQ(tags, (std::vector<int64_t>{0, 1, 2, 0, 3, 0}));

  auto recovered = TagsToSpans(tags);
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].start, 1);
  EXPECT_EQ(recovered[0].end, 3);
  EXPECT_EQ(recovered[0].label, "0");
  EXPECT_EQ(recovered[1].label, "1");
}

TEST(BioTest, OutOfEpisodeTypesBecomeO) {
  std::vector<Span> spans = {{0, 1, "PER"}, {2, 3, "ORG"}};
  std::vector<int64_t> slots = {0, -1};  // ORG not in this episode
  auto tags = SpansToTags(spans, slots, 4);
  EXPECT_EQ(tags, (std::vector<int64_t>{1, 0, 0, 0}));
}

TEST(BioTest, AdjacentSpansOfSameSlot) {
  // B-0 I-0 B-0 — two adjacent entities of the same slot stay distinct.
  auto spans = TagsToSpans({1, 2, 1});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].end, 2);
  EXPECT_EQ(spans[1].start, 2);
}

TEST(BioTest, DanglingInsideStartsSpan) {
  // conlleval-style recovery: O I-1 I-1 O  -> one span [1, 3).
  auto spans = TagsToSpans({0, 4, 4, 0});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start, 1);
  EXPECT_EQ(spans[0].end, 3);
}

TEST(BioTest, InsideWithSlotSwitchSplits) {
  // B-0 I-1: the I- of a different slot starts a new span.
  auto spans = TagsToSpans({1, 4});
  ASSERT_EQ(spans.size(), 2u);
}

TEST(BioTest, SpanAtSentenceEnd) {
  auto spans = TagsToSpans({0, 0, 1, 2});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end, 4);
}

TEST(BioTest, ValidTagMask) {
  auto mask = ValidTagMask(3, 11);
  int64_t valid = 0;
  for (bool b : mask) valid += b;
  EXPECT_EQ(valid, 7);  // O + 3*(B,I)
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[6]);
  EXPECT_FALSE(mask[7]);
}

TEST(SpanCountsTest, F1Definition) {
  SpanCounts counts;
  std::vector<Span> gold = {{0, 1, "0"}, {3, 5, "1"}};
  std::vector<Span> predicted = {{0, 1, "0"}, {3, 5, "0"}, {6, 7, "1"}};
  counts.Accumulate(gold, predicted);
  EXPECT_EQ(counts.gold, 2);
  EXPECT_EQ(counts.returned, 3);
  EXPECT_EQ(counts.correct, 1);  // wrong label on [3,5) does not count
  EXPECT_NEAR(counts.F1(), 2.0 * 1 / (2 + 3), 1e-9);
  EXPECT_NEAR(counts.Precision(), 1.0 / 3, 1e-9);
  EXPECT_NEAR(counts.Recall(), 0.5, 1e-9);
}

TEST(SpanCountsTest, EmptyIsZeroNotNan) {
  SpanCounts counts;
  EXPECT_EQ(counts.F1(), 0.0);
  EXPECT_EQ(counts.Precision(), 0.0);
  EXPECT_EQ(counts.Recall(), 0.0);
}

TEST(SpanCountsTest, AccumulatesAcrossSentences) {
  SpanCounts counts;
  counts.Accumulate({{0, 1, "0"}}, {{0, 1, "0"}});
  counts.Accumulate({{2, 3, "1"}}, {});
  EXPECT_EQ(counts.gold, 2);
  EXPECT_EQ(counts.returned, 1);
  EXPECT_EQ(counts.correct, 1);
}

TEST(HashEmbeddingsTest, DeterministicAndUnitNorm) {
  HashEmbeddings embeddings(16);
  auto a = embeddings.VectorFor("kinase");
  auto b = embeddings.VectorFor("kinase");
  EXPECT_EQ(a, b);
  double norm = 0;
  for (float v : a) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST(HashEmbeddingsTest, CaseInsensitive) {
  HashEmbeddings embeddings(16);
  EXPECT_EQ(embeddings.VectorFor("Jordan"), embeddings.VectorFor("jordan"));
}

TEST(HashEmbeddingsTest, PrefixFamilyClustering) {
  HashEmbeddings embeddings(32);
  auto cos = [](const std::vector<float>& x, const std::vector<float>& y) {
    double dot = 0;
    for (size_t i = 0; i < x.size(); ++i) dot += x[i] * y[i];
    return dot;  // unit vectors
  };
  auto a = embeddings.VectorFor("kinase");
  auto b = embeddings.VectorFor("kinases");  // shared 4-char prefix
  auto c = embeddings.VectorFor("senator");  // unrelated
  EXPECT_GT(cos(a, b), cos(a, c));
  EXPECT_GT(cos(a, b), 0.2);
}

TEST(HashEmbeddingsTest, TableForVocab) {
  Vocab vocab;
  vocab.Add("alpha");
  vocab.Add("beta");
  HashEmbeddings embeddings(8);
  auto table = embeddings.TableFor(vocab);
  ASSERT_EQ(table.size(), 4u);
  for (float v : table[static_cast<size_t>(kPadId)]) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(table[2], embeddings.VectorFor("alpha"));
}

}  // namespace
}  // namespace fewner::text
