// Differential suite for the graph-free inference fast path (tensor/eval_mode.h).
//
// The contract under test: for identical inputs, every op in ops.h produces
// BITWISE-identical values (0 ULP — compared with memcmp, not a tolerance)
// under EvalMode and in graph mode, across randomized shapes including
// broadcasts, keepdim variants, and single-element edge cases.  On top of the
// per-op checks, a whole-model test verifies that AdaptedTagger emits exactly
// the tag sequences graph-mode decoding emits, over 100 sampled episodes.
// Arena behavior (node recycling, escape pinning) is covered here too.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "meta/adapted_tagger.h"
#include "meta/fewner.h"
#include "tensor/autodiff.h"
#include "tensor/eval_mode.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/rng.h"

namespace fewner::tensor {
namespace {

/// Asserts two tensors are bitwise-identical: same shape, 0 ULP everywhere.
void ExpectBitwise(const Tensor& graph, const Tensor& eval, const std::string& what) {
  ASSERT_TRUE(graph.defined() && eval.defined()) << what;
  ASSERT_EQ(graph.shape(), eval.shape()) << what;
  const auto& gv = graph.data();
  const auto& ev = eval.data();
  ASSERT_EQ(gv.size(), ev.size()) << what;
  if (!gv.empty()) {
    EXPECT_EQ(std::memcmp(gv.data(), ev.data(), gv.size() * sizeof(float)), 0)
        << what << ": eval-mode values diverge from graph mode";
  }
}

/// Runs `op` once in graph mode and once under EvalMode and compares bitwise.
/// Also asserts the eval result carries no autodiff state.
void CheckOp(const std::string& what, const std::function<Tensor()>& op) {
  Tensor graph_out = op();
  Tensor eval_out;
  {
    EvalMode eval;
    eval_out = op();
  }
  ExpectBitwise(graph_out, eval_out, what);
  // Identity cases (SumTo/BroadcastTo on a matching shape, inference-mode
  // Dropout, ...) return the input tensor itself — a leaf here — which may
  // legitimately carry requires_grad.  Anything the op layer *created* under
  // EvalMode must be free of autodiff state.
  if (!eval_out.node()->leaf) {
    EXPECT_FALSE(eval_out.requires_grad()) << what;
    EXPECT_TRUE(eval_out.node()->inputs.empty()) << what;
    EXPECT_FALSE(static_cast<bool>(eval_out.node()->backward)) << what;
  }
}

Tensor RandTensor(Shape shape, util::Rng* rng, bool requires_grad = true) {
  return Tensor::Randn(std::move(shape), rng, 1.0f, requires_grad);
}

class EvalModeOpTest : public ::testing::Test {
 protected:
  util::Rng rng_{0xE7A1};
  /// Random dim in [1, 9]; small enough to keep broadcast paths cheap, large
  /// enough to cross the matmul kernel's column tail.
  int64_t Dim() { return 1 + static_cast<int64_t>(rng_.UniformInt(9)); }
};

TEST_F(EvalModeOpTest, ElementwiseBinarySameShape) {
  for (int rep = 0; rep < 20; ++rep) {
    Shape s = rep == 0 ? Shape{} : Shape{Dim(), Dim()};  // include rank-0
    Tensor a = RandTensor(s, &rng_);
    Tensor b = RandTensor(s, &rng_);
    CheckOp("Add", [&] { return Add(a, b); });
    CheckOp("Sub", [&] { return Sub(a, b); });
    CheckOp("Mul", [&] { return Mul(a, b); });
    CheckOp("Div", [&] { return Div(a, b); });
  }
}

TEST_F(EvalModeOpTest, ElementwiseBinaryBroadcast) {
  for (int rep = 0; rep < 20; ++rep) {
    const int64_t m = Dim(), n = Dim();
    // The three broadcast layouts the codebase uses: trailing vector,
    // leading-1 row, column-vs-matrix.
    std::vector<std::pair<Shape, Shape>> cases = {
        {Shape{m, n}, Shape{n}},
        {Shape{1, n}, Shape{n}},
        {Shape{m, 1}, Shape{m, n}},
        {Shape{m, n}, Shape{}},
    };
    for (auto& [sa, sb] : cases) {
      Tensor a = RandTensor(sa, &rng_);
      Tensor b = RandTensor(sb, &rng_);
      CheckOp("Add/bcast", [&] { return Add(a, b); });
      CheckOp("Sub/bcast", [&] { return Sub(a, b); });
      CheckOp("Mul/bcast", [&] { return Mul(a, b); });
      CheckOp("Div/bcast", [&] { return Div(a, b); });
    }
  }
}

TEST_F(EvalModeOpTest, ElementwiseUnaryAndScalarForms) {
  for (int rep = 0; rep < 20; ++rep) {
    Shape s = rep == 0 ? Shape{1} : Shape{Dim(), Dim()};
    Tensor t = RandTensor(s, &rng_);
    CheckOp("Neg", [&] { return Neg(t); });
    CheckOp("Sigmoid", [&] { return Sigmoid(t); });
    CheckOp("Tanh", [&] { return Tanh(t); });
    CheckOp("Relu", [&] { return Relu(t); });
    CheckOp("Exp", [&] { return Exp(t); });
    CheckOp("Square", [&] { return Square(t); });
    CheckOp("AddScalar", [&] { return AddScalar(t, 0.37f); });
    CheckOp("MulScalar", [&] { return MulScalar(t, -1.21f); });
    // Log/Sqrt need positive inputs.
    Tensor pos = AddScalar(Square(t), 0.1f).Detach();
    CheckOp("Log", [&] { return Log(pos); });
    CheckOp("Sqrt", [&] { return Sqrt(pos); });
  }
}

TEST_F(EvalModeOpTest, ShapeManipulation) {
  for (int rep = 0; rep < 20; ++rep) {
    const int64_t m = Dim(), n = Dim();
    Tensor t = RandTensor(Shape{m, n}, &rng_);
    CheckOp("Reshape", [&] { return Reshape(t, Shape{n * m}); });
    CheckOp("Reshape/rank3", [&] { return Reshape(t, Shape{m, n, 1}); });
    CheckOp("Transpose", [&] { return Transpose(t); });
    CheckOp("BroadcastTo", [&] {
      return BroadcastTo(Reshape(t, Shape{m, 1, n}), Shape{m, 3, n});
    });
    CheckOp("SumTo", [&] { return SumTo(t, Shape{1, n}); });
    CheckOp("SumTo/scalar", [&] { return SumTo(t, Shape{}); });

    Tensor u = RandTensor(Shape{m, n}, &rng_);
    Tensor v = RandTensor(Shape{1, n}, &rng_);
    CheckOp("Concat/axis0", [&] { return Concat({t, u, v}, 0); });
    Tensor w = RandTensor(Shape{m, 2}, &rng_);
    CheckOp("Concat/axis1", [&] { return Concat({t, w}, 1); });
    const int64_t start = static_cast<int64_t>(rng_.UniformInt(
        static_cast<uint64_t>(n)));
    const int64_t len = 1 + static_cast<int64_t>(
                                rng_.UniformInt(static_cast<uint64_t>(n - start)));
    CheckOp("Slice", [&] { return Slice(t, 1, start, len); });
    CheckOp("Slice/empty", [&] { return Slice(t, 0, 0, 0); });  // zero-length
    CheckOp("StackRows", [&] {
      return StackRows({Slice(t, 0, 0, 1), Slice(u, 0, m - 1, 1)});
    });
  }
}

TEST_F(EvalModeOpTest, Reductions) {
  for (int rep = 0; rep < 20; ++rep) {
    const int64_t m = Dim(), n = Dim();
    Tensor t = RandTensor(Shape{m, n}, &rng_);
    CheckOp("SumAll", [&] { return SumAll(t); });
    CheckOp("MeanAll", [&] { return MeanAll(t); });
    for (int64_t axis = 0; axis < 2; ++axis) {
      CheckOp("SumAxis/keep", [&] { return SumAxis(t, axis, /*keepdim=*/true); });
      CheckOp("SumAxis/drop", [&] { return SumAxis(t, axis, /*keepdim=*/false); });
      CheckOp("MaxAxis/keep", [&] { return MaxAxis(t, axis, /*keepdim=*/true); });
      CheckOp("MaxAxis/drop", [&] { return MaxAxis(t, axis, /*keepdim=*/false); });
    }
  }
}

TEST_F(EvalModeOpTest, MatMulAndGatherScatter) {
  for (int rep = 0; rep < 20; ++rep) {
    const int64_t m = Dim(), k = Dim(), n = Dim();
    Tensor a = RandTensor(Shape{m, k}, &rng_);
    Tensor b = RandTensor(Shape{k, n}, &rng_);
    CheckOp("MatMul", [&] { return MatMul(a, b); });

    std::vector<int64_t> idx;
    for (int64_t i = 0; i < m + 1; ++i) {
      idx.push_back(static_cast<int64_t>(rng_.UniformInt(static_cast<uint64_t>(m))));
    }
    CheckOp("IndexSelectRows", [&] { return IndexSelectRows(a, idx); });
    Tensor src = RandTensor(Shape{static_cast<int64_t>(idx.size()), k}, &rng_);
    CheckOp("ScatterAddRows", [&] { return ScatterAddRows(src, idx, m); });

    const int64_t window = 1 + static_cast<int64_t>(
                                   rng_.UniformInt(static_cast<uint64_t>(m)));
    CheckOp("Unfold1d", [&] { return Unfold1d(a, window); });
    Tensor folded_src = RandTensor(Shape{m, window * k}, &rng_);
    CheckOp("Fold1d", [&] { return Fold1d(folded_src, window); });
  }
}

TEST_F(EvalModeOpTest, CompositesAndDropout) {
  for (int rep = 0; rep < 20; ++rep) {
    Tensor t = RandTensor(Shape{Dim(), Dim()}, &rng_);
    CheckOp("LogSumExpLastDim", [&] { return LogSumExpLastDim(t); });
    CheckOp("LogSoftmaxLastDim", [&] { return LogSoftmaxLastDim(t); });
    CheckOp("SoftmaxLastDim", [&] { return SoftmaxLastDim(t); });
    // Inference dropout is the identity; training dropout must agree when the
    // two modes draw from identically seeded streams.
    CheckOp("Dropout/eval", [&] {
      return Dropout(t, 0.5f, nullptr, /*training=*/false);
    });
    util::Rng base(rep + 900);
    CheckOp("Dropout/train", [&] {
      util::Rng stream = base.Fork(7);
      return Dropout(t, 0.3f, &stream, /*training=*/true);
    });
  }
}

TEST(EvalModeTest, GuardNestsAndRestores) {
  EXPECT_FALSE(EvalMode::active());
  {
    EvalMode outer;
    EXPECT_TRUE(EvalMode::active());
    {
      EvalMode inner;
      EXPECT_TRUE(EvalMode::active());
    }
    EXPECT_TRUE(EvalMode::active());  // inner exit must not disable outer
  }
  EXPECT_FALSE(EvalMode::active());
}

TEST(EvalModeTest, ArenaRecyclesNodesAcrossIterations) {
  WorkspaceArena& arena = WorkspaceArena::ThreadLocal();
  arena.Clear();
  util::Rng rng(4);
  Tensor a = Tensor::Randn(Shape{8, 8}, &rng);
  Tensor b = Tensor::Randn(Shape{8, 8}, &rng);
  {
    EvalMode eval;
    for (int iter = 0; iter < 50; ++iter) {
      Tensor c = Tanh(Add(MatMul(a, b), b));
      ASSERT_EQ(c.shape(), (Shape{8, 8}));
    }
  }
  // 3 ops per iteration; after the first iteration primes the pool, every
  // later op must reuse a node rather than allocate.
  EXPECT_LE(arena.pool_size(), 8u);
  EXPECT_GE(arena.reuse_count(), 140u);
  arena.Clear();
  EXPECT_EQ(arena.pool_size(), 0u);
}

TEST(EvalModeTest, EscapedTensorsKeepTheirValues) {
  WorkspaceArena& arena = WorkspaceArena::ThreadLocal();
  arena.Clear();
  util::Rng rng(5);
  Tensor a = Tensor::Randn(Shape{4}, &rng);
  Tensor escaped;
  std::vector<float> expected;
  {
    EvalMode eval;
    escaped = MulScalar(a, 2.0f);
    expected = escaped.data();
    // Churn the arena hard: if the escaped node were recycled, its buffer
    // would be overwritten by one of these.
    for (int i = 0; i < 200; ++i) Sigmoid(MulScalar(a, static_cast<float>(i)));
  }
  EXPECT_EQ(escaped.data(), expected);
  arena.Clear();
  EXPECT_EQ(escaped.data(), expected);  // pinned node survives Clear too
}

TEST(EvalModeTest, GraphModeUnaffectedAfterEvalScope) {
  util::Rng rng(6);
  Tensor x = Tensor::Randn(Shape{3}, &rng, 1.0f, /*requires_grad=*/true);
  {
    EvalMode eval;
    Tanh(x);
  }
  // After the scope ends, autodiff must work exactly as before.
  Tensor loss = SumAll(Square(x));
  auto g = autodiff::Grad(loss, {x});
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(g[0].at(i), 2.0f * x.at(i));
  }
}

/// Whole-model differential: AdaptedTagger (eval path) against graph-mode
/// decoding with the same adapted context, over 100 sampled episodes.
TEST(EvalModeModelTest, AdaptedTaggerMatchesGraphModeOn100Episodes) {
  data::SyntheticSpec spec;
  spec.name = "evalparity";
  spec.genre = "newswire";
  spec.num_types = 8;
  spec.num_sentences = 260;
  spec.mentions_per_sentence = 2.0;
  spec.seed = 11;
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 10;
  config.char_dim = 6;
  config.filters_per_width = 4;
  config.hidden_dim = 10;
  config.max_tags = text::NumTags(3);
  config.context_dim = 8;
  config.dropout = 0.1f;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, 2, 23);

  util::Rng rng(301);
  meta::Fewner fewner(config, &rng);
  fewner.backbone()->SetTraining(false);

  for (uint64_t id = 0; id < 100; ++id) {
    models::EncodedEpisode episode = encoder.Encode(sampler.Sample(id));
    // Snapshot adapts φ once (2 steps keeps 100 episodes fast).
    meta::AdaptedTagger tagger(fewner.backbone(), episode.support,
                               episode.valid_tags, /*inner_steps=*/2,
                               /*inner_lr=*/0.1f);
    for (const auto& sentence : episode.query) {
      std::vector<int64_t> graph_tags = fewner.backbone()->Decode(
          sentence, tagger.phi(), episode.valid_tags);
      std::vector<int64_t> eval_tags = tagger.Tag(sentence);
      ASSERT_EQ(eval_tags, graph_tags) << "episode " << id;
    }
  }
}

/// The emissions feeding Viterbi must themselves be bitwise-identical across
/// modes — a stronger statement than matching argmax paths.
TEST(EvalModeModelTest, EmissionsBitwiseIdenticalAcrossModes) {
  data::SyntheticSpec spec;
  spec.name = "evalemit";
  spec.genre = "newswire";
  spec.num_types = 6;
  spec.num_sentences = 80;
  spec.mentions_per_sentence = 2.0;
  spec.seed = 13;
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 10;
  config.char_dim = 6;
  config.filters_per_width = 4;
  config.hidden_dim = 10;
  config.max_tags = text::NumTags(3);
  config.context_dim = 8;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, 2, 29);

  util::Rng rng(303);
  meta::Fewner fewner(config, &rng);
  fewner.backbone()->SetTraining(false);
  models::EncodedEpisode episode = encoder.Encode(sampler.Sample(0));
  Tensor phi = fewner.AdaptContext(episode.support, episode.valid_tags, 2, 0.1f,
                                   /*create_graph=*/false)
                   .Detach();

  for (const auto& sentence : episode.query) {
    Tensor graph_emissions = fewner.backbone()->Emissions(sentence, phi);
    Tensor eval_emissions;
    {
      EvalMode eval;
      eval_emissions = fewner.backbone()->Emissions(sentence, phi);
    }
    ExpectBitwise(graph_emissions, eval_emissions, "emissions");
  }
}

/// One frozen snapshot, many threads: arenas are per-thread and the snapshot
/// is immutable, so concurrent tagging must be race-free (run under
/// -DFEWNER_SANITIZE=thread via the `tsan` label) and every thread must get
/// the same answers.
TEST(EvalModeModelTest, ConcurrentTaggingIsRaceFreeAndDeterministic) {
  data::SyntheticSpec spec;
  spec.name = "evalmt";
  spec.genre = "newswire";
  spec.num_types = 6;
  spec.num_sentences = 80;
  spec.mentions_per_sentence = 2.0;
  spec.seed = 19;
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 10;
  config.char_dim = 6;
  config.filters_per_width = 4;
  config.hidden_dim = 10;
  config.max_tags = text::NumTags(3);
  config.context_dim = 8;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, 4, 31);

  util::Rng rng(307);
  meta::Fewner fewner(config, &rng);
  models::EncodedEpisode episode = encoder.Encode(sampler.Sample(0));
  meta::AdaptedTagger tagger(&fewner, episode);

  const std::vector<std::vector<int64_t>> reference = tagger.TagAll(episode.query);
  constexpr int kThreads = 4;
  std::vector<std::vector<std::vector<int64_t>>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 5; ++round) {
        results[static_cast<size_t>(w)] = tagger.TagAll(episode.query);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& result : results) EXPECT_EQ(result, reference);
}

}  // namespace
}  // namespace fewner::tensor
