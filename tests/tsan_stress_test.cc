// ThreadSanitizer stress tests for the episode-parallel trainer's moving
// parts: the worker pool itself, concurrent autodiff graph construction, and
// a full multi-replica training run.  These also run (fast) in regular
// builds; their real job is under -DFEWNER_SANITIZE=thread via
// `ctest -L tsan`, where any data race aborts the test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "meta/fewner.h"
#include "meta/parallel.h"
#include "tensor/autodiff.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fewner {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int64_t> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  util::ThreadPool pool(3);
  std::atomic<int64_t> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int64_t> counter{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  util::ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
}

TEST(TsanStressTest, ConcurrentGraphBuildsAndBackwards) {
  // Hammer the pool with tasks that each build an autodiff graph and run a
  // backward pass.  The graphs share no tensors, so TSan seeing any
  // cross-thread conflict means hidden global state in tensor/autodiff.
  util::ThreadPool pool(8);
  std::atomic<int64_t> failures{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([i, &failures] {
        util::Rng rng(static_cast<uint64_t>(i) * 977 + 1);
        const int64_t n = 6 + (i % 3);
        std::vector<float> a(static_cast<size_t>(n * n));
        std::vector<float> b(static_cast<size_t>(n * n));
        for (auto& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
        for (auto& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
        Tensor x = Tensor::FromData(Shape{n, n}, std::move(a),
                                    /*requires_grad=*/true);
        Tensor w = Tensor::FromData(Shape{n, n}, std::move(b),
                                    /*requires_grad=*/true);
        Tensor y = tensor::SumAll(tensor::Square(tensor::MatMul(x, w)));
        auto grads = tensor::autodiff::Grad(y, {x, w});
        if (grads.size() != 2 ||
            grads[0].data().size() != static_cast<size_t>(n * n)) {
          failures.fetch_add(1);
        }
        // Second-order on a worker thread: grad-of-grad via create_graph.
        Tensor z = tensor::SumAll(tensor::Square(tensor::Mul(x, w)));
        Tensor gx = tensor::autodiff::Grad(z, {x}, /*create_graph=*/true)[0];
        auto gg = tensor::autodiff::Grad(tensor::SumAll(gx), {w});
        if (gg.size() != 1) failures.fetch_add(1);
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(TsanStressTest, EpisodeParallelTrainingIsRaceFree) {
  // End-to-end: the real training path (replica sync, per-task dropout
  // re-forks, concurrent second-order backwards, ordered reduction) at 8
  // threads.  Under TSan this covers every shared structure the trainer
  // actually touches.
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.genre = "newswire";
  spec.num_types = 6;
  spec.num_sentences = 160;
  spec.mentions_per_sentence = 2.0;
  spec.seed = 11;
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 8;
  config.char_dim = 4;
  config.filters_per_width = 3;
  config.hidden_dim = 8;
  config.max_tags = text::NumTags(3);
  config.context_dim = 6;
  config.dropout = 0.1f;

  models::EpisodeEncoder encoder(&words, &chars, config.max_tags);
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, 3, 1, 4, 29);

  util::Rng rng(5);
  meta::Fewner fewner(config, &rng);
  meta::TrainConfig train;
  train.iterations = 2;
  train.meta_batch = 8;
  train.train_query_size = 2;
  train.num_threads = 8;
  fewner.Train(sampler, encoder, train);
}

}  // namespace
}  // namespace fewner
