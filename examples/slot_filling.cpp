// The paper's §5 extension claim in action: few-shot SLOT FILLING with the
// exact same FEWNER machinery used for NER.  Slot types are split into seen
// (meta-training) and novel (evaluation) sets; the model adapts to 3-way
// 1-shot tasks over dialogue utterances.
//
//   ./build/examples/slot_filling [--iterations N] [--episodes N]

#include <algorithm>
#include <iostream>

#include "data/slot_filling.h"
#include "eval/evaluator.h"
#include "meta/fewner.h"
#include "text/bio.h"
#include "text/hash_embeddings.h"
#include "text/vocab.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace fewner;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt("iterations", 80, "meta-training outer iterations");
  flags.AddInt("episodes", 12, "evaluation episodes");
  flags.AddBool("verbose", false, "log training losses");
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  data::SlotFillingSpec spec;
  data::Corpus corpus = data::GenerateSlotFillingCorpus(spec);
  std::cout << "Dialogue corpus: " << corpus.sentences.size() << " utterances, "
            << corpus.MentionCount() << " slot values, "
            << corpus.entity_types.size() << " slot types\n";

  // Split slots: meta-train on 8 types, evaluate on 4 never-seen ones —
  // the same cross-type protocol as the paper's NER experiments.
  std::vector<std::string> train_types(corpus.entity_types.begin(),
                                       corpus.entity_types.begin() + 8);
  std::vector<std::string> eval_types(corpus.entity_types.begin() + 8,
                                      corpus.entity_types.end());
  std::cout << "Novel evaluation slots:";
  for (const auto& t : eval_types) std::cout << " " << t;
  std::cout << "\n";

  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();
  const int64_t n_way = 3;
  models::EpisodeEncoder encoder(&words, &chars, text::NumTags(n_way));
  data::EpisodeSampler train_sampler(&corpus, train_types, n_way, 1, 4, 5);
  data::EpisodeSampler eval_sampler(&corpus, eval_types, n_way, 1, 4, 6);

  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 20;
  config.hidden_dim = 28;
  config.context_dim = 56;
  config.max_tags = text::NumTags(n_way);
  text::HashEmbeddings embeddings(config.word_dim);
  auto table = embeddings.TableFor(words);
  config.pretrained_word_vectors = &table;

  util::Rng rng(9);
  meta::Fewner fewner(config, &rng);
  meta::TrainConfig train;
  train.iterations = flags.GetInt("iterations");
  train.meta_batch = 4;
  train.meta_lr = 0.004f;
  train.verbose = flags.GetBool("verbose");
  fewner.Train(train_sampler, encoder, train);

  double mean_f1 = 0;
  const int64_t episodes = flags.GetInt("episodes");
  for (int64_t id = 0; id < episodes; ++id) {
    data::Episode episode = eval_sampler.Sample(static_cast<uint64_t>(id));
    if (episode.query.size() > 4) episode.query.resize(4);
    models::EncodedEpisode enc = encoder.Encode(episode);
    mean_f1 += eval::EpisodeF1(enc, fewner.AdaptAndPredict(enc));
  }
  std::cout << "Few-shot slot filling, novel slots, 3-way 1-shot F1 over "
            << episodes << " tasks: " << 100.0 * mean_f1 / episodes << "%\n";

  // Show one adapted utterance.
  data::Episode episode = eval_sampler.Sample(500);
  models::EncodedEpisode enc = encoder.Encode(episode);
  auto predictions = fewner.AdaptAndPredict(enc);
  const auto& utterance = enc.query[0];
  std::cout << "\nParsed: ";
  for (int64_t t = 0; t < utterance.length(); ++t) {
    std::cout << utterance.source->tokens[static_cast<size_t>(t)];
    const int64_t tag = predictions[0][static_cast<size_t>(t)];
    if (tag != text::kOutsideTag) {
      std::cout << "[" << episode.types[static_cast<size_t>(text::SlotOfTag(tag))]
                << "]";
    }
    std::cout << " ";
  }
  std::cout << "\n";
  return 0;
}
