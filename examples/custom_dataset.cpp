// Using the library on YOUR OWN data: build a data::Corpus by hand (as a
// loader for any real annotated dataset would), construct N-way K-shot
// episodes with the greedy-including sampler, meta-train FEWNER, and tag new
// sentences.  This is the template to follow when plugging in real corpora.
//
//   ./build/examples/custom_dataset

#include <iostream>

#include "data/corpus.h"
#include "data/episode_sampler.h"
#include "eval/evaluator.h"
#include "meta/fewner.h"
#include "text/bio.h"
#include "text/hash_embeddings.h"
#include "text/vocab.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace fewner;  // NOLINT: example brevity

namespace {

/// A miniature hand-written corpus: sports / politics / science sentences with
/// PLAYER, TEAM, POLITICIAN, AGENCY, ELEMENT, UNIT mentions.  A real loader
/// would fill the same structures from CoNLL-style files.
data::Corpus BuildCorpus() {
  data::Corpus corpus;
  corpus.name = "handmade";
  corpus.entity_types = {"PLAYER", "TEAM", "POLITICIAN", "AGENCY", "ELEMENT",
                         "UNIT"};

  struct Proto {
    std::vector<std::string> tokens;
    std::vector<text::Span> entities;
  };
  // Small template pool; the corpus repeats them with distinct entity fills so
  // the sampler has enough sentences per type.
  const std::vector<std::vector<std::string>> players = {
      {"Mikel", "Arron"}, {"Devin", "Kolt"}, {"Jorno"}, {"Tavian", "Reed"}};
  const std::vector<std::vector<std::string>> teams = {
      {"Harbor", "Hawks"}, {"Ridge", "United"}, {"Coral", "Nine"}};
  const std::vector<std::vector<std::string>> politicians = {
      {"Senator", "Vale"}, {"Mayor", "Quin"}, {"Chancellor", "Ost"}};
  const std::vector<std::vector<std::string>> agencies = {
      {"Treasury", "Office"}, {"Transit", "Bureau"}, {"Harbor", "Council"}};
  const std::vector<std::vector<std::string>> elements = {
      {"xenolite"}, {"ferrodine"}, {"crystane"}};
  const std::vector<std::vector<std::string>> units = {
      {"megajoule"}, {"kiloquad"}, {"centivolt"}};

  util::Rng rng(404);
  auto pick = [&](const std::vector<std::vector<std::string>>& pool) {
    return pool[rng.UniformInt(pool.size())];
  };
  auto emit = [&](const std::string& type,
                  const std::vector<std::vector<std::string>>& pool,
                  std::vector<std::string> prefix, std::vector<std::string> suffix) {
    data::Sentence sentence;
    sentence.tokens = std::move(prefix);
    const auto mention = pick(pool);
    const int64_t start = static_cast<int64_t>(sentence.tokens.size());
    for (const auto& token : mention) sentence.tokens.push_back(token);
    sentence.entities.push_back(
        text::Span{start, static_cast<int64_t>(sentence.tokens.size()), type});
    for (auto& token : suffix) sentence.tokens.push_back(std::move(token));
    corpus.sentences.push_back(std::move(sentence));
  };

  for (int round = 0; round < 40; ++round) {
    emit("PLAYER", players, {"the", "crowd", "cheered", "as"},
         {"scored", "again", "."});
    emit("TEAM", teams, {"the"}, {"won", "the", "final", "."});
    emit("POLITICIAN", politicians, {"yesterday"},
         {"promised", "new", "funding", "."});
    emit("AGENCY", agencies, {"the"}, {"published", "the", "report", "."});
    emit("ELEMENT", elements, {"traces", "of"}, {"were", "detected", "."});
    emit("UNIT", units, {"the", "probe", "drew", "one"}, {"of", "power", "."});
  }
  return corpus;
}

}  // namespace

int main() {
  util::SetLogLevel(util::LogLevel::kWarning);

  // 1. Your corpus (here: handmade; normally loaded from disk).
  data::Corpus corpus = BuildCorpus();
  std::cout << "Corpus: " << corpus.sentences.size() << " sentences, "
            << corpus.MentionCount() << " mentions, "
            << corpus.entity_types.size() << " types\n";

  // 2. Vocabularies and encoder.
  text::VocabBuilder builder;
  for (const auto& sentence : corpus.sentences) builder.AddSentence(sentence.tokens);
  text::Vocab words = builder.BuildWordVocab();
  text::Vocab chars = builder.BuildCharVocab();
  const int64_t n_way = 3;
  models::EpisodeEncoder encoder(&words, &chars, text::NumTags(n_way));

  // 3. Episode sampler: 3-way 1-shot tasks via the paper's greedy construction.
  data::EpisodeSampler sampler(&corpus, corpus.entity_types, n_way, 1, 4, 99);
  data::Episode preview = sampler.Sample(0);
  std::cout << "Sample task types:";
  for (const auto& type : preview.types) std::cout << " " << type;
  std::cout << " (" << preview.support.size() << " support sentences)\n";

  // 4. Configure FEWNER and meta-train.
  models::BackboneConfig config;
  config.word_vocab_size = words.size();
  config.char_vocab_size = chars.size();
  config.word_dim = 16;
  config.hidden_dim = 24;
  config.context_dim = 16;
  config.max_tags = text::NumTags(n_way);
  text::HashEmbeddings embeddings(config.word_dim);
  auto table = embeddings.TableFor(words);
  config.pretrained_word_vectors = &table;

  util::Rng rng(7);
  meta::Fewner fewner(config, &rng);
  meta::TrainConfig train;
  train.iterations = 40;
  train.meta_lr = 0.004f;  // quick-demo outer LR (paper: 0.0008)
  train.meta_batch = 4;
  fewner.Train(sampler, encoder, train);

  // 5. Evaluate on fresh tasks.
  double mean_f1 = 0;
  const int64_t eval_episodes = 10;
  for (int64_t id = 0; id < eval_episodes; ++id) {
    data::Episode episode = sampler.Sample(1000 + static_cast<uint64_t>(id));
    models::EncodedEpisode enc = encoder.Encode(episode);
    mean_f1 += eval::EpisodeF1(enc, fewner.AdaptAndPredict(enc));
  }
  std::cout << "Mean F1 over " << eval_episodes
            << " unseen 3-way 1-shot tasks: " << 100.0 * mean_f1 / eval_episodes
            << "%\n";

  // 6. Tag one query sentence to show the end-user API.
  data::Episode episode = sampler.Sample(2024);
  models::EncodedEpisode enc = encoder.Encode(episode);
  auto predictions = fewner.AdaptAndPredict(enc);
  const auto& sentence = enc.query[0];
  std::cout << "\nTagged: ";
  for (int64_t t = 0; t < sentence.length(); ++t) {
    std::cout << sentence.source->tokens[static_cast<size_t>(t)];
    const int64_t tag = predictions[0][static_cast<size_t>(t)];
    if (tag != text::kOutsideTag) {
      std::cout << "/" << episode.types[static_cast<size_t>(text::SlotOfTag(tag))];
    }
    std::cout << " ";
  }
  std::cout << "\n";
  return 0;
}
