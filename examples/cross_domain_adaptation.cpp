// Cross-domain adaptation example (the paper's §4.3 scenario): meta-train
// FEWNER on ACE-2005 Broadcast News (BN) and adapt to Conversational
// Telephone Speech (CTS) — same entity types, different domain.  Also runs the
// FineTune baseline on the identical task list to show the adaptation gap.
//
//   ./build/examples/cross_domain_adaptation [--source BN --target CTS] ...

#include <iostream>

#include "data/datasets.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/per_type.h"
#include "eval/reporting.h"
#include "meta/adapted_tagger.h"
#include "meta/fewner.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace fewner;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("source", "BN", "source ACE-2005 domain (BC/BN/CTS/NW/UN/WL)");
  flags.AddString("target", "CTS", "target ACE-2005 domain");
  flags.AddInt("episodes", 15, "held-out evaluation episodes");
  flags.AddInt("iterations", 60, "training outer iterations");
  flags.AddInt("k-shot", 1, "shots per class");
  flags.AddBool("verbose", false, "log training losses");
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  eval::ExperimentConfig config;
  config.k_shot = flags.GetInt("k-shot");
  config.eval_episodes = flags.GetInt("episodes");
  config.train.iterations = flags.GetInt("iterations");
  config.train.meta_lr = 0.004f;  // quick-demo outer LR (paper: 0.0008)
  config.train.verbose = flags.GetBool("verbose");

  eval::Scenario scenario = eval::MakeCrossDomainIntraType(
      flags.GetString("source"), flags.GetString("target"), config.data_scale,
      config.seed);
  std::cout << "Scenario " << scenario.name << ": "
            << scenario.source.sentences.size() << " source sentences, "
            << scenario.target.sentences.size() << " target sentences, "
            << scenario.source_types.size() << " shared entity types\n\n";

  eval::ExperimentRunner runner(std::move(scenario), config);
  eval::Table table({"Method", "5-way " + std::to_string(config.k_shot) + "-shot"});
  std::unique_ptr<meta::FewShotMethod> fewner;
  for (eval::MethodId id : {eval::MethodId::kFineTune, eval::MethodId::kFewner}) {
    auto method = runner.CreateTrained(id);
    eval::EvalResult result =
        eval::EvaluateMethod(method.get(), runner.eval_sampler(), runner.encoder(),
                             config.eval_episodes, config.eval_query_size);
    table.AddRow({result.method, eval::FormatCell(result.f1)});
    if (id == eval::MethodId::kFewner) fewner = std::move(method);
  }
  std::cout << table.Render()
            << "\nFEWNER adapts a low-dimensional context vector per task; "
               "FineTune has no meta-learned adaptation strategy.\n";

  // Per-type breakdown for FEWNER (aggregated by type name across episodes).
  eval::PerTypeScorer scorer;
  for (int64_t id = 0; id < config.eval_episodes; ++id) {
    data::Episode episode = runner.eval_sampler().Sample(static_cast<uint64_t>(id));
    if (static_cast<int64_t>(episode.query.size()) > config.eval_query_size) {
      episode.query.resize(static_cast<size_t>(config.eval_query_size));
    }
    models::EncodedEpisode enc = runner.encoder().Encode(episode);
    scorer.AddEpisode(enc, episode.types, fewner->AdaptAndPredict(enc));
  }
  std::cout << "\nFEWNER per-type breakdown (hardest types first):\n"
            << scorer.Report();

  // Deployment shape: adapt once on the target-domain support set, freeze
  // (θ, φ*) into an AdaptedTagger, and serve every query sentence in one
  // padded batched pass (DESIGN.md §7) — identical tags to tagging them one
  // at a time.
  data::Episode episode = runner.eval_sampler().Sample(0);
  models::EncodedEpisode enc = runner.encoder().Encode(episode);
  meta::AdaptedTagger tagger(static_cast<meta::Fewner*>(fewner.get()), enc);
  size_t entity_tokens = 0, total_tokens = 0;
  for (const auto& tags : tagger.TagAll(enc.query)) {
    for (int64_t tag : tags) {
      total_tokens += 1;
      if (tag != text::kOutsideTag) entity_tokens += 1;
    }
  }
  std::cout << "\nBatched serving on " << flags.GetString("target") << ": "
            << enc.query.size() << " query sentences in one pass, "
            << entity_tokens << "/" << total_tokens
            << " tokens tagged as entities\n";
  return 0;
}
