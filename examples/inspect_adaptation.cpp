// Diagnostic example: shows what FEWNER's inner loop actually does on a task —
// support loss before/after adapting φ, how far φ moves, and how predictions
// change.  Useful for tuning and for understanding the method.
//
//   ./build/examples/inspect_adaptation [--iterations N] [--inner-steps N] ...

#include <cmath>
#include <iostream>

#include "data/datasets.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "meta/fewner.h"
#include "tensor/ops.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace fewner;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt("iterations", 60, "meta-training outer iterations");
  flags.AddInt("inner-steps", 8, "test-time inner steps");
  flags.AddInt("episodes", 10, "episodes to inspect");
  flags.AddDouble("inner-lr", 0.1, "inner learning rate");
  flags.AddInt("k-shot", 1, "shots");
  flags.AddBool("verbose", false, "log training");
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  eval::ExperimentConfig config;
  config.k_shot = flags.GetInt("k-shot");
  config.train.iterations = flags.GetInt("iterations");
  config.train.meta_lr = 0.004f;  // quick-demo outer LR (paper: 0.0008)
  config.train.inner_lr = static_cast<float>(flags.GetDouble("inner-lr"));
  config.train.inner_steps_test = flags.GetInt("inner-steps");
  config.train.verbose = flags.GetBool("verbose");
  config.eval_episodes = flags.GetInt("episodes");

  eval::Scenario scenario = eval::MakeIntraDomainScenario(data::kNne, 0.03, 7);
  eval::ExperimentRunner runner(std::move(scenario), config);
  auto method = runner.CreateTrained(eval::MethodId::kFewner);
  auto* fewner_method = static_cast<meta::Fewner*>(method.get());
  auto* backbone = fewner_method->backbone();
  backbone->SetTraining(false);

  double mean_before = 0, mean_after = 0, mean_phi_norm = 0, mean_f1 = 0;
  int64_t non_o_predictions = 0, total_predictions = 0;
  const int64_t episodes = flags.GetInt("episodes");

  for (int64_t id = 0; id < episodes; ++id) {
    data::Episode episode = runner.eval_sampler().Sample(static_cast<uint64_t>(id));
    if (static_cast<int64_t>(episode.query.size()) > config.eval_query_size) {
      episode.query.resize(static_cast<size_t>(config.eval_query_size));
    }
    models::EncodedEpisode enc = runner.encoder().Encode(episode);

    tensor::Tensor phi0 = backbone->ZeroContext();
    const double before =
        backbone->BatchLoss(enc.support, phi0, enc.valid_tags).item();
    tensor::Tensor phi = fewner_method->AdaptContext(
        enc.support, enc.valid_tags, flags.GetInt("inner-steps"),
        static_cast<float>(flags.GetDouble("inner-lr")), /*create_graph=*/false);
    const double after =
        backbone->BatchLoss(enc.support, phi, enc.valid_tags).item();
    double norm = 0;
    for (float v : phi.data()) norm += static_cast<double>(v) * v;

    auto predictions = method->AdaptAndPredict(enc);
    for (const auto& tags : predictions) {
      for (int64_t tag : tags) {
        ++total_predictions;
        if (tag != text::kOutsideTag) ++non_o_predictions;
      }
    }
    const double f1 = eval::EpisodeF1(enc, predictions);
    mean_before += before;
    mean_after += after;
    mean_phi_norm += std::sqrt(norm);
    mean_f1 += f1;
    std::cout << "episode " << id << ": support loss " << before << " -> " << after
              << "  |phi| " << std::sqrt(norm) << "  F1 " << f1 << "\n";
  }
  std::cout << "\nmeans over " << episodes << " episodes:\n"
            << "  support loss before " << mean_before / episodes << " after "
            << mean_after / episodes << "\n"
            << "  |phi| " << mean_phi_norm / episodes << "\n"
            << "  non-O prediction rate "
            << static_cast<double>(non_o_predictions) /
                   static_cast<double>(total_predictions)
            << "\n"
            << "  F1 " << mean_f1 / episodes << "\n";
  return 0;
}
