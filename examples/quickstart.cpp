// Quickstart: meta-train FEWNER on novel-type episodes from the synthetic NNE
// corpus, adapt to one held-out 5-way 1-shot task, and tag its query
// sentences.  Exercises the whole public API end to end in under a minute.
//
//   ./build/examples/quickstart [--episodes N] [--iterations N] [--verbose]

#include <iostream>

#include "data/datasets.h"
#include "eval/evaluator.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "meta/adapted_tagger.h"
#include "meta/fewner.h"
#include "nn/serialization.h"
#include "text/bio.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace fewner;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt("episodes", 20, "held-out evaluation episodes");
  flags.AddInt("iterations", 30, "meta-training outer iterations");
  flags.AddBool("verbose", false, "log training losses");
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) return 0;
  if (!flags.GetBool("verbose")) util::SetLogLevel(util::LogLevel::kWarning);

  // 1. An intra-domain cross-type scenario on (synthetic) NNE: meta-train on
  //    52 entity types, evaluate on 15 never-seen types.
  eval::Scenario scenario = eval::MakeIntraDomainScenario(data::kNne, 0.03, 7);
  std::cout << "Scenario: " << scenario.name << " — train types "
            << scenario.source_types.size() << ", novel test types "
            << scenario.target_types.size() << ", sentences "
            << scenario.source.sentences.size() << "\n";

  // 2. Configure and run FEWNER.
  eval::ExperimentConfig config;
  config.eval_episodes = flags.GetInt("episodes");
  config.train.iterations = flags.GetInt("iterations");
  // Quick-demo outer LR; the paper's 0.0008 assumes convergence-scale runs.
  config.train.meta_lr = 0.004f;
  config.train.verbose = flags.GetBool("verbose");
  eval::ExperimentRunner runner(std::move(scenario), config);

  auto method = runner.CreateTrained(eval::MethodId::kFewner);
  eval::EvalResult result =
      eval::EvaluateMethod(method.get(), runner.eval_sampler(), runner.encoder(),
                           config.eval_episodes, config.eval_query_size);
  std::cout << "\nFEWNER on " << config.eval_episodes
            << " held-out 5-way 1-shot tasks: F1 = " << eval::FormatCell(result.f1)
            << "\n\n";

  // 3. Show one adapted task in detail: support sentences, then predictions.
  data::Episode episode = runner.eval_sampler().Sample(0);
  models::EncodedEpisode enc = runner.encoder().Encode(episode);
  std::cout << "Task types:";
  for (size_t i = 0; i < episode.types.size(); ++i) {
    std::cout << " [slot " << i << "] " << episode.types[i];
  }
  std::cout << "\n\nPredicted query tags (gold in parentheses where different):\n";
  auto predictions = method->AdaptAndPredict(enc);
  for (size_t q = 0; q < enc.query.size() && q < 3; ++q) {
    const auto& sentence = enc.query[q];
    for (int64_t t = 0; t < sentence.length(); ++t) {
      const int64_t predicted = predictions[q][static_cast<size_t>(t)];
      const int64_t gold = sentence.tags[static_cast<size_t>(t)];
      std::cout << sentence.source->tokens[static_cast<size_t>(t)];
      if (predicted != text::kOutsideTag || gold != text::kOutsideTag) {
        std::cout << "/" << text::TagName(predicted);
        if (gold != predicted) std::cout << "(" << text::TagName(gold) << ")";
      }
      std::cout << " ";
    }
    std::cout << "\n";
  }

  // 4. Serve the adapted model.  AdaptedTagger freezes (θ_Meta, φ*) into a
  //    snapshot whose tagging runs on the graph-free eval fast path: no
  //    autodiff bookkeeping, buffers recycled from a per-thread arena.  This
  //    is the type to hold on to when tagging sentences for one task.
  //    TagAll packs the whole batch into one padded [B, Lmax] pipeline
  //    (DESIGN.md §7) — identical tags to sentence-at-a-time Tag(), one
  //    forward instead of B.
  auto* fewner_method = static_cast<meta::Fewner*>(method.get());
  meta::AdaptedTagger tagger(fewner_method, enc);
  size_t entity_tokens = 0, total_tokens = 0;
  for (const auto& tags : tagger.TagAll(enc.query)) {
    for (int64_t tag : tags) {
      total_tokens += 1;
      if (tag != text::kOutsideTag) entity_tokens += 1;
    }
  }
  std::cout << "\nAdaptedTagger served " << enc.query.size()
            << " query sentences in one batched graph-free pass: "
            << entity_tokens << "/" << total_tokens
            << " tokens tagged as entities\n";

  // 5. Persist θ_Meta (Algorithm 1's training output) for later adaptation.
  const std::string checkpoint = "/tmp/fewner_quickstart.ckpt";
  util::Status save_status =
      nn::SaveParameters(fewner_method->backbone(), checkpoint);
  std::cout << "\nSaved meta-trained parameters to " << checkpoint << " ("
            << save_status.ToString() << ")\n";
  return 0;
}
