file(REMOVE_RECURSE
  "CMakeFiles/table4_cross_both.dir/table4_cross_both.cc.o"
  "CMakeFiles/table4_cross_both.dir/table4_cross_both.cc.o.d"
  "table4_cross_both"
  "table4_cross_both.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cross_both.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
