# Empty compiler generated dependencies file for table4_cross_both.
# This may be replaced when dependencies are built.
