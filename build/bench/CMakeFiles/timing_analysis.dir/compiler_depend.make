# Empty compiler generated dependencies file for timing_analysis.
# This may be replaced when dependencies are built.
