file(REMOVE_RECURSE
  "CMakeFiles/timing_analysis.dir/timing_analysis.cc.o"
  "CMakeFiles/timing_analysis.dir/timing_analysis.cc.o.d"
  "timing_analysis"
  "timing_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
