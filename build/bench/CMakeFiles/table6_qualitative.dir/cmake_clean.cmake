file(REMOVE_RECURSE
  "CMakeFiles/table6_qualitative.dir/table6_qualitative.cc.o"
  "CMakeFiles/table6_qualitative.dir/table6_qualitative.cc.o.d"
  "table6_qualitative"
  "table6_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
