# Empty compiler generated dependencies file for table6_qualitative.
# This may be replaced when dependencies are built.
