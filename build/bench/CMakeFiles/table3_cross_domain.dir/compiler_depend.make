# Empty compiler generated dependencies file for table3_cross_domain.
# This may be replaced when dependencies are built.
