file(REMOVE_RECURSE
  "CMakeFiles/table3_cross_domain.dir/table3_cross_domain.cc.o"
  "CMakeFiles/table3_cross_domain.dir/table3_cross_domain.cc.o.d"
  "table3_cross_domain"
  "table3_cross_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cross_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
