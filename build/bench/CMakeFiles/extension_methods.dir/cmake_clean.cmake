file(REMOVE_RECURSE
  "CMakeFiles/extension_methods.dir/extension_methods.cc.o"
  "CMakeFiles/extension_methods.dir/extension_methods.cc.o.d"
  "extension_methods"
  "extension_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
