# Empty dependencies file for extension_methods.
# This may be replaced when dependencies are built.
