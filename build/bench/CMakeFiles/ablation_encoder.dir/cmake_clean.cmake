file(REMOVE_RECURSE
  "CMakeFiles/ablation_encoder.dir/ablation_encoder.cc.o"
  "CMakeFiles/ablation_encoder.dir/ablation_encoder.cc.o.d"
  "ablation_encoder"
  "ablation_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
