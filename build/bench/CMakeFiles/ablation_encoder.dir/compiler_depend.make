# Empty compiler generated dependencies file for ablation_encoder.
# This may be replaced when dependencies are built.
