# Empty dependencies file for table2_intra_domain.
# This may be replaced when dependencies are built.
