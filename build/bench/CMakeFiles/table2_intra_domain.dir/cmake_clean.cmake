file(REMOVE_RECURSE
  "CMakeFiles/table2_intra_domain.dir/table2_intra_domain.cc.o"
  "CMakeFiles/table2_intra_domain.dir/table2_intra_domain.cc.o.d"
  "table2_intra_domain"
  "table2_intra_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_intra_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
