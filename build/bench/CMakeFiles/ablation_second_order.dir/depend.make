# Empty dependencies file for ablation_second_order.
# This may be replaced when dependencies are built.
