file(REMOVE_RECURSE
  "CMakeFiles/ablation_second_order.dir/ablation_second_order.cc.o"
  "CMakeFiles/ablation_second_order.dir/ablation_second_order.cc.o.d"
  "ablation_second_order"
  "ablation_second_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_second_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
