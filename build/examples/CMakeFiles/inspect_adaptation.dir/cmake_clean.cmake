file(REMOVE_RECURSE
  "CMakeFiles/inspect_adaptation.dir/inspect_adaptation.cpp.o"
  "CMakeFiles/inspect_adaptation.dir/inspect_adaptation.cpp.o.d"
  "inspect_adaptation"
  "inspect_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
