# Empty compiler generated dependencies file for inspect_adaptation.
# This may be replaced when dependencies are built.
