file(REMOVE_RECURSE
  "CMakeFiles/cross_domain_adaptation.dir/cross_domain_adaptation.cpp.o"
  "CMakeFiles/cross_domain_adaptation.dir/cross_domain_adaptation.cpp.o.d"
  "cross_domain_adaptation"
  "cross_domain_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_domain_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
