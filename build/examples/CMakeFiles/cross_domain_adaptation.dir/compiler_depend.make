# Empty compiler generated dependencies file for cross_domain_adaptation.
# This may be replaced when dependencies are built.
