file(REMOVE_RECURSE
  "CMakeFiles/slot_filling.dir/slot_filling.cpp.o"
  "CMakeFiles/slot_filling.dir/slot_filling.cpp.o.d"
  "slot_filling"
  "slot_filling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
