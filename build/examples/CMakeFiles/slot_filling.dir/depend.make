# Empty dependencies file for slot_filling.
# This may be replaced when dependencies are built.
