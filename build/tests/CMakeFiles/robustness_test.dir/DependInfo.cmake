
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/robustness_test.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/robustness_test.dir/robustness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/fewner_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/fewner_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fewner_models.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/fewner_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fewner_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fewner_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fewner_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fewner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fewner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
