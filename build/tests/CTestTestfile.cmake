# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/crf_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
