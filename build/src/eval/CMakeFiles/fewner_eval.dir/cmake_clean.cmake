file(REMOVE_RECURSE
  "CMakeFiles/fewner_eval.dir/error_analysis.cc.o"
  "CMakeFiles/fewner_eval.dir/error_analysis.cc.o.d"
  "CMakeFiles/fewner_eval.dir/evaluator.cc.o"
  "CMakeFiles/fewner_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/fewner_eval.dir/experiment.cc.o"
  "CMakeFiles/fewner_eval.dir/experiment.cc.o.d"
  "CMakeFiles/fewner_eval.dir/model_selection.cc.o"
  "CMakeFiles/fewner_eval.dir/model_selection.cc.o.d"
  "CMakeFiles/fewner_eval.dir/per_type.cc.o"
  "CMakeFiles/fewner_eval.dir/per_type.cc.o.d"
  "CMakeFiles/fewner_eval.dir/reporting.cc.o"
  "CMakeFiles/fewner_eval.dir/reporting.cc.o.d"
  "CMakeFiles/fewner_eval.dir/statistics.cc.o"
  "CMakeFiles/fewner_eval.dir/statistics.cc.o.d"
  "libfewner_eval.a"
  "libfewner_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
