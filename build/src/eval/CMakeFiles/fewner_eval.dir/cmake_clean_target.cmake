file(REMOVE_RECURSE
  "libfewner_eval.a"
)
