# Empty compiler generated dependencies file for fewner_eval.
# This may be replaced when dependencies are built.
