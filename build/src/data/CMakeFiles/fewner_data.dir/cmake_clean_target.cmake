file(REMOVE_RECURSE
  "libfewner_data.a"
)
