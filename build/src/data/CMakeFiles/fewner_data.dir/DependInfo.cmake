
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/conll.cc" "src/data/CMakeFiles/fewner_data.dir/conll.cc.o" "gcc" "src/data/CMakeFiles/fewner_data.dir/conll.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/data/CMakeFiles/fewner_data.dir/datasets.cc.o" "gcc" "src/data/CMakeFiles/fewner_data.dir/datasets.cc.o.d"
  "/root/repo/src/data/episode_sampler.cc" "src/data/CMakeFiles/fewner_data.dir/episode_sampler.cc.o" "gcc" "src/data/CMakeFiles/fewner_data.dir/episode_sampler.cc.o.d"
  "/root/repo/src/data/slot_filling.cc" "src/data/CMakeFiles/fewner_data.dir/slot_filling.cc.o" "gcc" "src/data/CMakeFiles/fewner_data.dir/slot_filling.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/fewner_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/fewner_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/fewner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fewner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
