# Empty dependencies file for fewner_data.
# This may be replaced when dependencies are built.
