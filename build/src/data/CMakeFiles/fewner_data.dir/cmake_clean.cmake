file(REMOVE_RECURSE
  "CMakeFiles/fewner_data.dir/conll.cc.o"
  "CMakeFiles/fewner_data.dir/conll.cc.o.d"
  "CMakeFiles/fewner_data.dir/datasets.cc.o"
  "CMakeFiles/fewner_data.dir/datasets.cc.o.d"
  "CMakeFiles/fewner_data.dir/episode_sampler.cc.o"
  "CMakeFiles/fewner_data.dir/episode_sampler.cc.o.d"
  "CMakeFiles/fewner_data.dir/slot_filling.cc.o"
  "CMakeFiles/fewner_data.dir/slot_filling.cc.o.d"
  "CMakeFiles/fewner_data.dir/synthetic.cc.o"
  "CMakeFiles/fewner_data.dir/synthetic.cc.o.d"
  "libfewner_data.a"
  "libfewner_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
