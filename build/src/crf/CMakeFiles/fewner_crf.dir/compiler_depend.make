# Empty compiler generated dependencies file for fewner_crf.
# This may be replaced when dependencies are built.
