file(REMOVE_RECURSE
  "CMakeFiles/fewner_crf.dir/linear_chain_crf.cc.o"
  "CMakeFiles/fewner_crf.dir/linear_chain_crf.cc.o.d"
  "libfewner_crf.a"
  "libfewner_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
