file(REMOVE_RECURSE
  "libfewner_crf.a"
)
