# Empty dependencies file for fewner_meta.
# This may be replaced when dependencies are built.
