file(REMOVE_RECURSE
  "libfewner_meta.a"
)
