file(REMOVE_RECURSE
  "CMakeFiles/fewner_meta.dir/fewner.cc.o"
  "CMakeFiles/fewner_meta.dir/fewner.cc.o.d"
  "CMakeFiles/fewner_meta.dir/finetune.cc.o"
  "CMakeFiles/fewner_meta.dir/finetune.cc.o.d"
  "CMakeFiles/fewner_meta.dir/lm_tagger.cc.o"
  "CMakeFiles/fewner_meta.dir/lm_tagger.cc.o.d"
  "CMakeFiles/fewner_meta.dir/maml.cc.o"
  "CMakeFiles/fewner_meta.dir/maml.cc.o.d"
  "CMakeFiles/fewner_meta.dir/matching_net.cc.o"
  "CMakeFiles/fewner_meta.dir/matching_net.cc.o.d"
  "CMakeFiles/fewner_meta.dir/protonet.cc.o"
  "CMakeFiles/fewner_meta.dir/protonet.cc.o.d"
  "CMakeFiles/fewner_meta.dir/reptile.cc.o"
  "CMakeFiles/fewner_meta.dir/reptile.cc.o.d"
  "CMakeFiles/fewner_meta.dir/snail.cc.o"
  "CMakeFiles/fewner_meta.dir/snail.cc.o.d"
  "libfewner_meta.a"
  "libfewner_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
