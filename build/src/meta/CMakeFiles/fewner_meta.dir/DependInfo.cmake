
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/fewner.cc" "src/meta/CMakeFiles/fewner_meta.dir/fewner.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/fewner.cc.o.d"
  "/root/repo/src/meta/finetune.cc" "src/meta/CMakeFiles/fewner_meta.dir/finetune.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/finetune.cc.o.d"
  "/root/repo/src/meta/lm_tagger.cc" "src/meta/CMakeFiles/fewner_meta.dir/lm_tagger.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/lm_tagger.cc.o.d"
  "/root/repo/src/meta/maml.cc" "src/meta/CMakeFiles/fewner_meta.dir/maml.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/maml.cc.o.d"
  "/root/repo/src/meta/matching_net.cc" "src/meta/CMakeFiles/fewner_meta.dir/matching_net.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/matching_net.cc.o.d"
  "/root/repo/src/meta/protonet.cc" "src/meta/CMakeFiles/fewner_meta.dir/protonet.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/protonet.cc.o.d"
  "/root/repo/src/meta/reptile.cc" "src/meta/CMakeFiles/fewner_meta.dir/reptile.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/reptile.cc.o.d"
  "/root/repo/src/meta/snail.cc" "src/meta/CMakeFiles/fewner_meta.dir/snail.cc.o" "gcc" "src/meta/CMakeFiles/fewner_meta.dir/snail.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/fewner_models.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/fewner_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fewner_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fewner_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fewner_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fewner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fewner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
