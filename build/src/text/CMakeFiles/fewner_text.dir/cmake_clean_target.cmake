file(REMOVE_RECURSE
  "libfewner_text.a"
)
