file(REMOVE_RECURSE
  "CMakeFiles/fewner_text.dir/bio.cc.o"
  "CMakeFiles/fewner_text.dir/bio.cc.o.d"
  "CMakeFiles/fewner_text.dir/hash_embeddings.cc.o"
  "CMakeFiles/fewner_text.dir/hash_embeddings.cc.o.d"
  "CMakeFiles/fewner_text.dir/vocab.cc.o"
  "CMakeFiles/fewner_text.dir/vocab.cc.o.d"
  "libfewner_text.a"
  "libfewner_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
