# Empty dependencies file for fewner_text.
# This may be replaced when dependencies are built.
