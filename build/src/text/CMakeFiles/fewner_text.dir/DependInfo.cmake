
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bio.cc" "src/text/CMakeFiles/fewner_text.dir/bio.cc.o" "gcc" "src/text/CMakeFiles/fewner_text.dir/bio.cc.o.d"
  "/root/repo/src/text/hash_embeddings.cc" "src/text/CMakeFiles/fewner_text.dir/hash_embeddings.cc.o" "gcc" "src/text/CMakeFiles/fewner_text.dir/hash_embeddings.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/text/CMakeFiles/fewner_text.dir/vocab.cc.o" "gcc" "src/text/CMakeFiles/fewner_text.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fewner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
