# Empty dependencies file for fewner_tensor.
# This may be replaced when dependencies are built.
