file(REMOVE_RECURSE
  "libfewner_tensor.a"
)
