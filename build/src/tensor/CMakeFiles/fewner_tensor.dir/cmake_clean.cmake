file(REMOVE_RECURSE
  "CMakeFiles/fewner_tensor.dir/autodiff.cc.o"
  "CMakeFiles/fewner_tensor.dir/autodiff.cc.o.d"
  "CMakeFiles/fewner_tensor.dir/ops.cc.o"
  "CMakeFiles/fewner_tensor.dir/ops.cc.o.d"
  "CMakeFiles/fewner_tensor.dir/shape.cc.o"
  "CMakeFiles/fewner_tensor.dir/shape.cc.o.d"
  "CMakeFiles/fewner_tensor.dir/tensor.cc.o"
  "CMakeFiles/fewner_tensor.dir/tensor.cc.o.d"
  "libfewner_tensor.a"
  "libfewner_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
