file(REMOVE_RECURSE
  "libfewner_nn.a"
)
