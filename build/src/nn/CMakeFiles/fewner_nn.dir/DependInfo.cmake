
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/fewner_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/char_cnn.cc" "src/nn/CMakeFiles/fewner_nn.dir/char_cnn.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/char_cnn.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/fewner_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/fewner_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/fewner_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/fewner_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/fewner_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/fewner_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/fewner_nn.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fewner_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fewner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
