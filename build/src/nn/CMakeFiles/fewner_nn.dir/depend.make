# Empty dependencies file for fewner_nn.
# This may be replaced when dependencies are built.
