file(REMOVE_RECURSE
  "CMakeFiles/fewner_nn.dir/attention.cc.o"
  "CMakeFiles/fewner_nn.dir/attention.cc.o.d"
  "CMakeFiles/fewner_nn.dir/char_cnn.cc.o"
  "CMakeFiles/fewner_nn.dir/char_cnn.cc.o.d"
  "CMakeFiles/fewner_nn.dir/gru.cc.o"
  "CMakeFiles/fewner_nn.dir/gru.cc.o.d"
  "CMakeFiles/fewner_nn.dir/layers.cc.o"
  "CMakeFiles/fewner_nn.dir/layers.cc.o.d"
  "CMakeFiles/fewner_nn.dir/lstm.cc.o"
  "CMakeFiles/fewner_nn.dir/lstm.cc.o.d"
  "CMakeFiles/fewner_nn.dir/module.cc.o"
  "CMakeFiles/fewner_nn.dir/module.cc.o.d"
  "CMakeFiles/fewner_nn.dir/optim.cc.o"
  "CMakeFiles/fewner_nn.dir/optim.cc.o.d"
  "CMakeFiles/fewner_nn.dir/serialization.cc.o"
  "CMakeFiles/fewner_nn.dir/serialization.cc.o.d"
  "libfewner_nn.a"
  "libfewner_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
