file(REMOVE_RECURSE
  "libfewner_util.a"
)
