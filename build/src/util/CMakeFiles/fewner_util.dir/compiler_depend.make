# Empty compiler generated dependencies file for fewner_util.
# This may be replaced when dependencies are built.
