file(REMOVE_RECURSE
  "CMakeFiles/fewner_util.dir/flags.cc.o"
  "CMakeFiles/fewner_util.dir/flags.cc.o.d"
  "CMakeFiles/fewner_util.dir/logging.cc.o"
  "CMakeFiles/fewner_util.dir/logging.cc.o.d"
  "CMakeFiles/fewner_util.dir/rng.cc.o"
  "CMakeFiles/fewner_util.dir/rng.cc.o.d"
  "CMakeFiles/fewner_util.dir/status.cc.o"
  "CMakeFiles/fewner_util.dir/status.cc.o.d"
  "CMakeFiles/fewner_util.dir/string_util.cc.o"
  "CMakeFiles/fewner_util.dir/string_util.cc.o.d"
  "libfewner_util.a"
  "libfewner_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
