file(REMOVE_RECURSE
  "libfewner_models.a"
)
