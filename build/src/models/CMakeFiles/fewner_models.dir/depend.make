# Empty dependencies file for fewner_models.
# This may be replaced when dependencies are built.
