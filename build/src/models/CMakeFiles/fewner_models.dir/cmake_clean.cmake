file(REMOVE_RECURSE
  "CMakeFiles/fewner_models.dir/backbone.cc.o"
  "CMakeFiles/fewner_models.dir/backbone.cc.o.d"
  "CMakeFiles/fewner_models.dir/encoding.cc.o"
  "CMakeFiles/fewner_models.dir/encoding.cc.o.d"
  "CMakeFiles/fewner_models.dir/lm_encoder.cc.o"
  "CMakeFiles/fewner_models.dir/lm_encoder.cc.o.d"
  "libfewner_models.a"
  "libfewner_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewner_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
